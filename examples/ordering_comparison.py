"""Effect of the variable-ordering heuristics on decision-diagram sizes.

This is a scaled-down interactive version of Tables 2 and 3 of the paper: it
compares the ROMDD size under every multiple-valued variable ordering and the
coded-ROBDD size under the bit-group orderings, on the MS2 benchmark.

Run with ``python examples/ordering_comparison.py``; set
``REPRO_EXAMPLE_FAST=1`` to shrink the workload.
"""

from __future__ import annotations

import os

from repro import YieldAnalyzer
from repro.analysis import format_table
from repro.bdd import ResourceLimitExceeded
from repro.ordering import OrderingSpec
from repro.soc import ms_problem

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

MV_ORDERINGS = ("wv", "wvr", "vw", "vrw", "t", "w", "h")
BIT_ORDERINGS = ("ml", "lm", "w")


def main() -> None:
    problem = ms_problem(2, mean_defects=2.0)
    max_defects = 2 if FAST else 4
    node_limit = 200_000 if FAST else 2_000_000

    # ------------------------------------------------------------------ #
    # Table 2 (scaled down): ROMDD size per multiple-valued ordering
    # ------------------------------------------------------------------ #
    rows = []
    for mv in MV_ORDERINGS:
        bits = "ml" if mv not in ("t", "w", "h") else "ml"
        analyzer = YieldAnalyzer(OrderingSpec(mv, bits), node_limit=node_limit)
        try:
            robdd, romdd = analyzer.diagram_sizes(problem, max_defects=max_defects)
            rows.append([mv, robdd, romdd])
        except ResourceLimitExceeded:
            rows.append([mv, None, None])
    print("MS2, M=%d: diagram sizes per multiple-valued variable ordering" % max_defects)
    print(format_table(["mv ordering", "coded ROBDD", "ROMDD"], rows))
    print("(the paper's Table 2 finds the weight heuristic 'w' best, 'vrw' worst)")
    print()

    # ------------------------------------------------------------------ #
    # Table 3 (scaled down): coded-ROBDD size per bit-group ordering
    # ------------------------------------------------------------------ #
    rows = []
    for bits in BIT_ORDERINGS:
        analyzer = YieldAnalyzer(OrderingSpec("w", bits), node_limit=node_limit)
        robdd, romdd = analyzer.diagram_sizes(problem, max_defects=max_defects)
        rows.append([bits, robdd, romdd])
    print("MS2, M=%d: diagram sizes per bit-group ordering (mv ordering 'w')" % max_defects)
    print(format_table(["bit ordering", "coded ROBDD", "ROMDD"], rows))
    print("(the paper's Table 3 finds 'ml' best; the ROMDD size is unaffected)")


if __name__ == "__main__":
    main()

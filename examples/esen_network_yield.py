"""Yield of the ESEN n x m multistage-network SoC family (Fig. 5 of the paper).

The script prints the reconstructed architecture, shows the two redundant
paths the extra-stage shuffle-exchange network offers between a sample
input/output pair, evaluates the yield of the small ESEN configurations and
compares the effect of the redundant first/last-stage switching elements
(an ablation the paper's architecture motivates but does not isolate).

Run with ``python examples/esen_network_yield.py``; set
``REPRO_EXAMPLE_FAST=1`` to shrink the workload.
"""

from __future__ import annotations

import os

from repro import estimate_yield_montecarlo, evaluate_yield
from repro.analysis import format_table
from repro.soc import esen_architecture_summary, esen_problem
from repro.soc.esen import enumerate_paths

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def show_paths() -> None:
    print("Redundant paths offered by the extra stage (n = 8, input 3 -> output 5):")
    for index, path in enumerate(enumerate_paths(8, 3, 5), start=1):
        described = " -> ".join("SE_%d_%d" % position for position in path)
        print("  path %d: %s" % (index, described))
    print()


def main() -> None:
    print(esen_architecture_summary(8, 2))
    print()
    show_paths()

    # ------------------------------------------------------------------ #
    # Yield of the small ESEN configurations
    # ------------------------------------------------------------------ #
    configurations = [(4, 1)] if FAST else [(4, 1), (4, 2)]
    max_defects = 3 if FAST else None
    rows = []
    for n, m in configurations:
        problem = esen_problem(n, m, mean_defects=2.0)
        result = evaluate_yield(
            problem, epsilon=1e-3, max_defects=max_defects
        )
        rows.append(
            [
                problem.name,
                problem.num_components,
                result.truncation,
                result.coded_robdd_size,
                result.romdd_size,
                round(result.yield_estimate, 4),
            ]
        )
    print("Combinatorial yield evaluation (lambda' = 1):")
    print(format_table(["system", "C", "M", "ROBDD", "ROMDD", "yield"], rows))
    print()

    # ------------------------------------------------------------------ #
    # Monte-Carlo sanity check on the smallest configuration
    # ------------------------------------------------------------------ #
    problem = esen_problem(4, 1, mean_defects=2.0)
    samples = 3_000 if FAST else 100_000
    simulated = estimate_yield_montecarlo(problem, samples, seed=42)
    print("Monte-Carlo cross-check on ESEN4x1 (%d dies):" % samples)
    print("  " + simulated.summary())
    print()

    # ------------------------------------------------------------------ #
    # Ablation: how much do the redundant concentrators buy?
    # ------------------------------------------------------------------ #
    baseline = evaluate_yield(
        esen_problem(4, 2, mean_defects=2.0), max_defects=3
    ).yield_estimate
    fragile = evaluate_yield(
        esen_problem(4, 2, mean_defects=2.0, conc_to_ipa=1.0), max_defects=3
    ).yield_estimate
    print("Sensitivity to concentrator area (P_C / P_IPA):")
    print(format_table(
        ["P_C / P_IPA", "yield"],
        [[0.1, round(baseline, 4)], [1.0, round(fragile, 4)]],
    ))


if __name__ == "__main__":
    main()

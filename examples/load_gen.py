"""Concurrent load generator (and correctness checker) for ``repro serve``.

Fires a mixed burst of sweep and importance requests at a running server
from many client threads — stdlib only (``http.client`` + ``threading``),
so it runs anywhere the package does::

    repro serve --port 8123 --workers 2 &
    python examples/load_gen.py --base-url http://127.0.0.1:8123 \
        --clients 8 --rounds 3 --verify

Every client round issues one ``POST /v1/sweep`` (half the clients with
``"stream": true``, exercising the NDJSON path) and one
``POST /v1/importance``.  All clients request the **same** benchmark and
densities, so the server's per-structure-key request coalescing is under
real concurrent fire; afterwards the script scrapes ``/stats`` and
reports the build/coalesce counters.

``--verify`` additionally computes the same batch in-process through a
serial :class:`repro.engine.service.SweepService` and asserts the HTTP
responses are **bit-for-bit identical** (floats survive the JSON round
trip by shortest-repr) — the acceptance check the CI smoke job runs.

Backpressure is the server doing its job, so a 429 is never a failure
by itself: clients honor the ``Retry-After`` header (capped, with a few
bounded attempts) and re-issue the request.  The exit code is 0 unless
a request hard-fails (non-200/429, connection error) or ``--verify``
finds a drift; ``--fail-on-reject`` additionally fails the run when a
request still gets 429 after exhausting its retries.

Without ``--base-url`` the script is self-contained: it boots an
in-process server on an ephemeral port (the same
:func:`repro.server.serve_in_thread` the test suite uses), fires the
burst at it, and tears it down — so ``python examples/load_gen.py``
demonstrates the whole serving story with no setup.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import threading
import time
from http.client import HTTPConnection
from urllib.parse import urlsplit

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

#: 429 backoff bounds: never sleep longer than this per Retry-After hint,
#: never re-issue one request more than this many times.
MAX_RETRY_AFTER = 2.0
RETRY_ATTEMPTS = 5


def _request(base, method, path, payload=None, timeout=120.0):
    """One HTTP request; returns ``(status, parsed-or-raw body, retry_after)``."""
    parts = urlsplit(base)
    conn = HTTPConnection(parts.hostname, parts.port or 80, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        retry_after = None
        if response.status == 429:
            try:
                retry_after = float(response.getheader("Retry-After") or "")
            except ValueError:
                retry_after = None
        kind = (response.getheader("Content-Type") or "").split(";")[0]
        if kind == "application/json":
            return response.status, json.loads(raw), retry_after
        if kind == "application/x-ndjson":
            return response.status, [
                json.loads(line) for line in raw.splitlines() if line.strip()
            ], retry_after
        return response.status, raw, retry_after
    finally:
        conn.close()


def _request_with_backoff(base, method, path, payload, tally):
    """Issue one request, absorbing 429s by honoring ``Retry-After``.

    Sleeps the server's hint (capped at :data:`MAX_RETRY_AFTER`, doubling
    a small default when the header is missing) and retries up to
    :data:`RETRY_ATTEMPTS` times; the last response is returned whatever
    its status, so a saturated server still surfaces as a 429.
    """
    delay = 0.1
    status, body, retry_after = _request(base, method, path, payload)
    for _ in range(RETRY_ATTEMPTS - 1):
        if status != 429:
            break
        wait = min(retry_after if retry_after is not None else delay, MAX_RETRY_AFTER)
        tally.note_backoff(wait)
        time.sleep(wait)
        delay = min(delay * 2.0, MAX_RETRY_AFTER)
        status, body, retry_after = _request(base, method, path, payload)
    return status, body


class Tally:
    """Thread-safe success/reject/failure accounting."""

    def __init__(self):
        self.lock = threading.Lock()
        self.ok = 0
        self.rejected = 0
        self.failed = 0
        self.retries = 0
        self.backoff_seconds = 0.0
        self.errors = []

    def record(self, status, context):
        with self.lock:
            if status == 200:
                self.ok += 1
            elif status == 429:
                # still rejected after every Retry-After-honoring attempt
                self.rejected += 1
            else:
                self.failed += 1
                self.errors.append("%s -> HTTP %s" % (context, status))

    def note_backoff(self, wait):
        with self.lock:
            self.retries += 1
            self.backoff_seconds += wait

    def crash(self, context, exc):
        with self.lock:
            self.failed += 1
            self.errors.append("%s -> %r" % (context, exc))


def _client(base, client_id, rounds, sweep_payload, importance_payload, tally, responses):
    stream = client_id % 2 == 1
    payload = dict(sweep_payload, stream=stream)
    for round_index in range(rounds):
        context = "client %d round %d" % (client_id, round_index)
        try:
            status, body = _request_with_backoff(base, "POST", "/v1/sweep", payload, tally)
            tally.record(status, context + " sweep")
            if status == 200:
                points = body if stream else body["points"]
                with tally.lock:
                    responses.append(sorted(points, key=lambda p: p["index"]))
        except Exception as exc:
            tally.crash(context + " sweep", exc)
        try:
            status, body = _request_with_backoff(
                base, "POST", "/v1/importance", importance_payload, tally
            )
            tally.record(status, context + " importance")
            if status == 200:
                with tally.lock:
                    responses.append(body["ranking"])
        except Exception as exc:
            tally.crash(context + " importance", exc)


def _verify(args, sweep_responses, importance_responses):
    """Recompute the batch in-process (serial) and demand exact equality."""
    from repro.engine.service import SweepPoint, SweepService
    from repro.soc import benchmark_problem

    service = SweepService()
    try:
        points = [
            SweepPoint(
                benchmark_problem(
                    args.benchmark, mean_defects=mean, clustering=args.clustering
                ),
                max_defects=args.max_defects,
            )
            for mean in args.densities
        ]
        expected = [
            (result.yield_estimate, result.error_bound, result.truncation)
            for result in service.evaluate_batch(points)
        ]
        importance_point = SweepPoint(
            benchmark_problem(
                args.benchmark,
                mean_defects=args.importance_mean,
                clustering=args.clustering,
            ),
            max_defects=args.max_defects,
        )
        gradients = service.gradient_batch([importance_point])[0]
        expected_ranking = [
            (name, value) for name, value in gradients.ranking()
        ]
    finally:
        service.close()

    mismatches = 0
    for response in sweep_responses:
        got = [(p["yield"], p["error_bound"], p["truncation"]) for p in response]
        if got != expected:
            mismatches += 1
    for ranking in importance_responses:
        got = [(entry["component"], entry["sensitivity"]) for entry in ranking]
        if got != expected_ranking:
            mismatches += 1
    return mismatches


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--base-url",
        default=None,
        help="server to fire at; omit to boot an in-process server",
    )
    parser.add_argument("--benchmark", default="MS2")
    parser.add_argument(
        "--densities",
        type=float,
        nargs="+",
        default=[0.5 + 0.25 * i for i in range(4 if FAST else 8)],
        help="mean defect densities each sweep request asks for",
    )
    parser.add_argument("--clustering", type=float, default=4.0)
    parser.add_argument("--max-defects", type=int, default=3 if FAST else None)
    parser.add_argument("--importance-mean", type=float, default=2.0)
    parser.add_argument("--clients", type=int, default=3 if FAST else 8)
    parser.add_argument("--rounds", type=int, default=1 if FAST else 2)
    parser.add_argument(
        "--verify",
        action="store_true",
        help="recompute the batch in-process and demand bit-for-bit equality",
    )
    parser.add_argument(
        "--fail-on-reject",
        action="store_true",
        help="treat 429 backpressure responses as failures",
    )
    args = parser.parse_args(argv)

    service = handle = None
    if args.base_url is None:
        from repro.engine.service import SweepService
        from repro.server import serve_in_thread

        service = SweepService()
        handle = serve_in_thread(service)
        args.base_url = "http://%s:%d" % (handle.host, handle.port)
        print("self-serve: in-process server listening on %s" % args.base_url)
        if not args.verify:
            args.verify = True  # the self-contained demo always checks itself

    try:
        status, _, _ = _request(args.base_url, "GET", "/healthz", timeout=10.0)
        if status != 200:
            print("server at %s is not healthy (HTTP %d)" % (args.base_url, status))
            return 1
        return _run_burst(args)
    finally:
        if handle is not None:
            handle.stop()
        if service is not None:
            service.close()


def _run_burst(args):
    sweep_payload = {
        "benchmark": args.benchmark,
        "densities": args.densities,
        "clustering": args.clustering,
    }
    if args.max_defects is not None:
        sweep_payload["max_defects"] = args.max_defects
    importance_payload = {
        "benchmark": args.benchmark,
        "mean_defects": args.importance_mean,
        "clustering": args.clustering,
    }
    if args.max_defects is not None:
        importance_payload["max_defects"] = args.max_defects

    tally = Tally()
    responses = []
    started = time.perf_counter()
    threads = [
        threading.Thread(
            target=_client,
            args=(
                args.base_url,
                client_id,
                args.rounds,
                sweep_payload,
                importance_payload,
                tally,
                responses,
            ),
        )
        for client_id in range(args.clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started

    total = tally.ok + tally.rejected + tally.failed
    print(
        "%d requests in %.2fs from %d clients: %d ok, %d rejected (429), %d failed"
        % (total, elapsed, args.clients, tally.ok, tally.rejected, tally.failed)
    )
    if tally.retries:
        print(
            "  backpressure: %d retries honoring Retry-After (%.2fs slept)"
            % (tally.retries, tally.backoff_seconds)
        )
    for line in tally.errors[:10]:
        print("  FAIL %s" % line)

    status, raw, _ = _request(args.base_url, "GET", "/stats", timeout=10.0)
    if status == 200:
        text = raw.decode("utf-8") if isinstance(raw, bytes) else str(raw)
        wanted = (
            "repro_service_structures_built",
            "repro_server_builds_started",
            "repro_server_coalesced_joins",
            "repro_server_rejected",
            "repro_server_requests ",
        )
        for line in text.splitlines():
            if any(line.startswith(name) for name in wanted):
                print("  stat %s" % line)

    failed = tally.failed
    if args.fail_on_reject:
        failed += tally.rejected
    if args.verify:
        sweep_responses = [r for r in responses if r and isinstance(r[0], dict) and "yield" in r[0]]
        importance_responses = [
            r for r in responses if r and isinstance(r[0], dict) and "sensitivity" in r[0]
        ]
        mismatches = _verify(args, sweep_responses, importance_responses)
        print(
            "verify: %d sweep + %d importance responses against in-process serial "
            "evaluation -> %d mismatches"
            % (len(sweep_responses), len(importance_responses), mismatches)
        )
        failed += mismatches
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())

"""Designing a custom fault-tolerant SoC and evaluating its yield.

This example shows the workflow a designer would follow for an architecture
that is *not* one of the paper's benchmarks: a chip with a triplicated
compute cluster, four memory banks of which three must survive, and a
duplicated network-on-chip router, each with different layout areas (and
therefore different defect probabilities).  It also exports the ROMDD of the
generalized fault tree to Graphviz for inspection.

Run with ``python examples/custom_fault_tree.py``.
"""

from __future__ import annotations

import os
import tempfile

from repro import (
    ComponentDefectModel,
    FaultTreeBuilder,
    NegativeBinomialDefectDistribution,
    YieldProblem,
    evaluate_yield,
)
from repro.analysis import format_table
from repro.core.gfunction import GeneralizedFaultTree
from repro.mdd import write_mdd_dot
from repro.mdd.direct import build_mdd_from_mvcircuit

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def build_problem(spare_memory_banks: int = 1) -> YieldProblem:
    """A chip that needs 2/3 cores, 3 of (3 + spares) memory banks and 1/2 routers."""
    ft = FaultTreeBuilder("custom-soc")

    cores = ["CORE_%d" % i for i in range(3)]
    banks = ["MEM_%d" % i for i in range(3 + spare_memory_banks)]
    routers = ["NOC_A", "NOC_B"]

    compute_ok = ft.at_least(2, [ft.working(c) for c in cores])
    memory_ok = ft.at_least(3, [ft.working(b) for b in banks])
    noc_ok = ft.or_(ft.working(routers[0]), ft.working(routers[1]))
    ft.set_top_from_functioning(ft.and_(compute_ok, memory_ok, noc_ok))
    circuit = ft.build()

    # relative layout areas: cores are big, banks medium, routers small
    weights = {}
    weights.update({c: 1.0 for c in cores})
    weights.update({b: 0.6 for b in banks})
    weights.update({r: 0.15 for r in routers})
    components = ComponentDefectModel.from_relative_weights(weights, lethality=0.45)

    defects = NegativeBinomialDefectDistribution(mean=2.5, clustering=3.0)
    return YieldProblem(circuit, components, defects, name="custom-soc")


def main() -> None:
    rows = []
    spares = [0, 1] if FAST else [0, 1, 2]
    for spare in spares:
        problem = build_problem(spare_memory_banks=spare)
        result = evaluate_yield(problem, epsilon=1e-3 if not FAST else 1e-2)
        rows.append(
            [
                spare,
                problem.num_components,
                result.truncation,
                result.romdd_size,
                round(result.yield_estimate, 4),
            ]
        )
    print("Yield of the custom SoC vs number of spare memory banks:")
    print(format_table(["spare banks", "C", "M", "ROMDD", "yield"], rows))
    print()

    # export the ROMDD of the smallest configuration for visual inspection
    problem = build_problem(spare_memory_banks=0)
    gfunction = GeneralizedFaultTree(
        problem.fault_tree, problem.component_names, max_defects=2
    )
    order = [gfunction.count_variable] + list(gfunction.location_variables)
    manager, root, _ = build_mdd_from_mvcircuit(gfunction.mv_circuit, order)
    target = os.path.join(tempfile.gettempdir(), "custom_soc_romdd.dot")
    write_mdd_dot(manager, root, target)
    print("ROMDD of G(w, v1, v2) written to %s (%d nodes)" % (target, manager.size(root)))


if __name__ == "__main__":
    main()

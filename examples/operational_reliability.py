"""Operational reliability of a fault-tolerant SoC with manufacturing defects.

The conclusions of the paper announce an extension of the combinatorial
method to operational reliability; this example exercises our implementation
of it (`repro.reliability`).  The scenario: the MS2 benchmark SoC ships after
passing the manufacturing test, its components then fail in the field with
exponential lifetimes whose rates scale with the same relative areas used
for the defect probabilities.  We compute the mission-survival curve, the
reliability conditioned on passing the test, and cross-check one point
against Monte-Carlo simulation.

Run with ``python examples/operational_reliability.py``; set
``REPRO_EXAMPLE_FAST=1`` to shrink the workload.
"""

from __future__ import annotations

import os

from repro.analysis import format_table
from repro.reliability import (
    ExponentialFieldModel,
    ReliabilityAnalyzer,
    estimate_reliability_montecarlo,
)
from repro.soc import ms_problem

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

#: Field failure rates (per year of operation) by component class: IP cores
#: age faster than the small communication modules.
RATES = {"IPM": 0.020, "IPS": 0.020, "CM": 0.004, "CS": 0.004}


def field_model_for(problem):
    rates = {}
    for name in problem.component_names:
        prefix = name.split("_", 1)[0]
        rates[name] = RATES[prefix]
    return ExponentialFieldModel(rates)


def main() -> None:
    problem = ms_problem(2, mean_defects=2.0)
    field = field_model_for(problem)
    max_defects = 2 if FAST else 4
    analyzer = ReliabilityAnalyzer()

    times = [0.0, 1.0, 2.0, 5.0] if FAST else [0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.0, 10.0]
    curve = analyzer.mission_sweep(problem, field, times, max_defects=max_defects)

    rows = [
        [
            r.mission_time,
            round(r.survival_probability, 5),
            round(r.yield_estimate, 5),
            round(r.conditional_reliability, 5),
            r.romdd_size,
        ]
        for r in curve
    ]
    print("MS2 mission-survival curve (defects + exponential field failures):")
    print(
        format_table(
            ["t (years)", "P(operational at t)", "yield", "R(t | passed test)", "ROMDD"],
            rows,
        )
    )
    print()

    check_time = times[-1]
    samples = 3_000 if FAST else 100_000
    simulated = estimate_reliability_montecarlo(problem, field, check_time, samples, seed=7)
    print("Monte-Carlo cross-check at t = %g (%d samples):" % (check_time, samples))
    print("  " + simulated.summary())
    print("  combinatorial value: %.5f" % curve[-1].survival_probability)


if __name__ == "__main__":
    main()

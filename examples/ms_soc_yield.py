"""Yield of the MSn master/slave bus-based SoC family (Fig. 4 of the paper).

The script reproduces the MS2 row of Table 4 (the paper's main operating
point, an expected number of lethal defects of 1), shows how the pessimistic
estimate converges as the truncation level M grows, and sweeps the defect
density to show the yield degradation the designer would trade off against
added redundancy.

Run with ``python examples/ms_soc_yield.py``; set ``REPRO_EXAMPLE_FAST=1`` to
shrink the workload (used by the test-suite).
"""

from __future__ import annotations

import os

from repro import evaluate_yield
from repro.analysis import format_table, truncation_sweep, defect_density_sweep
from repro.soc import ms_architecture_summary, ms_problem

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def main() -> None:
    print(ms_architecture_summary(2))
    print()

    # ------------------------------------------------------------------ #
    # The paper's operating point: lambda' = 1, error budget 1e-3 -> M = 6
    # ------------------------------------------------------------------ #
    problem = ms_problem(2, mean_defects=2.0)
    if FAST:
        result = evaluate_yield(problem, max_defects=3)
    else:
        result = evaluate_yield(problem, epsilon=1e-3, track_peak=True)
    print("MS2 at the paper's operating point (Table 4 row 1):")
    print("  " + result.summary())
    print("  (the paper reports yield 0.944 with a 2,034-node ROMDD)")
    print()

    # ------------------------------------------------------------------ #
    # Convergence of the pessimistic estimate with the truncation level
    # ------------------------------------------------------------------ #
    levels = [0, 1, 2, 3, 4] if FAST else [0, 1, 2, 3, 4, 5, 6, 7, 8]
    rows = truncation_sweep(problem, levels)
    print("Truncation sweep (Y_M is a guaranteed lower bound):")
    print(format_table(["M", "yield >=", "error <="], rows))
    print()

    # ------------------------------------------------------------------ #
    # Yield vs defect density for two MS sizes
    # ------------------------------------------------------------------ #
    densities = [1.0, 2.0] if FAST else [0.5, 1.0, 2.0, 3.0, 4.0]
    table_rows = []
    sizes = [2] if FAST else [2, 4]
    for n in sizes:
        sweep = defect_density_sweep(
            lambda mean, n=n: ms_problem(n, mean_defects=mean),
            densities,
            epsilon=1e-2 if FAST else 1e-3,
        )
        for mean, estimate, truncation in sweep:
            table_rows.append(["MS%d" % n, mean, truncation, round(estimate, 4)])
    print("Yield vs expected number of manufacturing defects:")
    print(format_table(["system", "lambda", "M", "yield"], table_rows))


if __name__ == "__main__":
    main()

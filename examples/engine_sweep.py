"""Density sweeps through the engine's batch service.

Evaluating the yield across defect densities is the bread-and-butter
"what-if" workload of the paper's method: the fault tree and the truncation
level stay fixed while the defect model varies.  The decision-diagram
structure only depends on the former, so the engine's
:class:`repro.engine.service.SweepService` builds the coded ROBDD / ROMDD
once and re-runs only the (cheap) probability traversal per point.

The script sweeps an MS benchmark twice — serial rebuild per point versus
the engine service — and prints both timings, the speedup and the service's
cache statistics.  It also shows dynamic reordering: the same sweep with
``OrderingSpec(sift=True)`` sifts the coded ROBDD before conversion.
"""

import os
import time

from repro.core.method import YieldAnalyzer
from repro.engine.service import SweepService
from repro.ordering import OrderingSpec
from repro.soc import ms_problem

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))

MODULES = 2
MAX_DEFECTS = 4 if FAST else 6
DENSITIES = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0]


def factory(mean_defects):
    return ms_problem(MODULES, mean_defects=mean_defects)


def main():
    print("MS%d density sweep, %d points, M=%d" % (MODULES, len(DENSITIES), MAX_DEFECTS))

    # --- baseline: rebuild the diagrams for every density -------------- #
    analyzer = YieldAnalyzer(OrderingSpec("w", "ml"))
    started = time.perf_counter()
    serial_rows = [
        analyzer.evaluate(factory(mean), max_defects=MAX_DEFECTS) for mean in DENSITIES
    ]
    serial_seconds = time.perf_counter() - started

    # --- engine: one build, many traversals ---------------------------- #
    service = SweepService(ordering=OrderingSpec("w", "ml"))
    started = time.perf_counter()
    engine_rows = service.density_sweep(factory, DENSITIES, max_defects=MAX_DEFECTS)
    engine_seconds = time.perf_counter() - started

    print()
    print("mean defects   yield (serial)   yield (engine)")
    for result, (mean, engine_yield, _) in zip(serial_rows, engine_rows):
        print(
            "%12g   %.12f   %.12f" % (mean, result.yield_estimate, engine_yield)
        )
        assert abs(result.yield_estimate - engine_yield) < 1e-12

    print()
    print("serial rebuild : %.3f s" % serial_seconds)
    print("engine reuse   : %.3f s" % engine_seconds)
    if engine_seconds > 0:
        print("speedup        : %.1fx" % (serial_seconds / engine_seconds))
    stats = service.stats
    print(
        "service stats  : %d structures built, %d points evaluated"
        % (stats.structures_built, stats.points_evaluated)
    )

    # --- dynamic reordering -------------------------------------------- #
    static = analyzer.evaluate(factory(2.0), max_defects=MAX_DEFECTS)
    sifted = YieldAnalyzer(OrderingSpec("w", "ml", sift=True)).evaluate(
        factory(2.0), max_defects=MAX_DEFECTS
    )
    print()
    print("coded ROBDD at lambda=1, static 'w/ml' order : %d nodes" % static.coded_robdd_size)
    print("coded ROBDD after group-preserving sifting   : %d nodes" % sifted.coded_robdd_size)


if __name__ == "__main__":
    main()

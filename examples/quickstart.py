"""Quickstart: evaluate the yield of a small fault-tolerant system-on-chip.

The system is the worked example of the paper (Fig. 2): three components
with fault tree ``F = x1 x2 + x3`` — the chip dies when component 3 is hit or
when both components 1 and 2 are hit.  We attach a clustered defect model,
run the combinatorial method and cross-check against Monte-Carlo simulation
and exact enumeration.

Run with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import os

from repro import (
    ComponentDefectModel,
    FaultTreeBuilder,
    NegativeBinomialDefectDistribution,
    YieldProblem,
    estimate_yield_montecarlo,
    evaluate_yield,
    exact_yield,
)

FAST = bool(os.environ.get("REPRO_EXAMPLE_FAST"))


def build_problem() -> YieldProblem:
    # 1. describe the structure function: F = 1 means "chip not functioning"
    ft = FaultTreeBuilder("quickstart")
    x1, x2, x3 = ft.failed("core_a"), ft.failed("core_b"), ft.failed("interconnect")
    ft.set_top(ft.or_(ft.and_(x1, x2), x3))
    fault_tree = ft.build()

    # 2. per-defect lethal-hit probabilities P_i (sum = P_L = 0.55)
    components = ComponentDefectModel(
        {"core_a": 0.25, "core_b": 0.25, "interconnect": 0.05}
    )

    # 3. clustered defect-count model (negative binomial, lambda = 2, alpha = 4)
    defects = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)

    return YieldProblem(fault_tree, components, defects, name="quickstart")


def main() -> None:
    problem = build_problem()
    print("System:", problem.name)
    print("  components:", ", ".join(problem.component_names))
    print("  P_L = %.3f, expected lethal defects = %.3f" % (
        problem.lethality,
        problem.lethal_defect_distribution().mean(),
    ))
    print()

    # combinatorial method with a guaranteed absolute error of 1e-5
    result = evaluate_yield(problem, epsilon=1e-5, track_peak=True)
    print("Combinatorial method (the paper's approach)")
    print("  " + result.summary())
    print("  guaranteed interval: [%.6f, %.6f]" % (result.yield_estimate, result.yield_upper_bound))
    print("  coded ROBDD: %d nodes (peak %d), ROMDD: %d nodes" % (
        result.coded_robdd_size,
        result.robdd_peak,
        result.romdd_size,
    ))
    print()

    # exact enumeration (feasible because the system is tiny)
    enumerated = exact_yield(problem, epsilon=1e-5)
    print("Exact enumeration cross-check")
    print("  " + enumerated.summary())
    print()

    # Monte-Carlo simulation: no guaranteed bound, only a confidence interval
    samples = 5_000 if FAST else 200_000
    simulated = estimate_yield_montecarlo(problem, samples, seed=2003)
    print("Monte-Carlo simulation baseline (%d dies)" % samples)
    print("  " + simulated.summary())


if __name__ == "__main__":
    main()

"""Unit tests for the compound (mixed) Poisson defect-count distribution."""

import math

import pytest

from repro.distributions import (
    CompoundPoissonDefectDistribution,
    DistributionError,
    PoissonDefectDistribution,
)


class TestConstruction:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            CompoundPoissonDefectDistribution([1.0, 2.0], [1.0])

    def test_rejects_empty_mixture(self):
        with pytest.raises(DistributionError):
            CompoundPoissonDefectDistribution([], [])

    def test_rejects_weights_not_summing_to_one(self):
        with pytest.raises(DistributionError):
            CompoundPoissonDefectDistribution([1.0, 2.0], [0.3, 0.3])

    def test_rejects_negative_rate_or_weight(self):
        with pytest.raises(DistributionError):
            CompoundPoissonDefectDistribution([-1.0], [1.0])
        with pytest.raises(DistributionError):
            CompoundPoissonDefectDistribution([1.0, 2.0], [1.2, -0.2])


class TestBehaviour:
    def test_single_component_equals_poisson(self):
        mixture = CompoundPoissonDefectDistribution([1.7], [1.0])
        poisson = PoissonDefectDistribution(1.7)
        for k in range(10):
            assert mixture.pmf(k) == pytest.approx(poisson.pmf(k), rel=1e-12)

    def test_pmf_is_weighted_sum(self):
        mixture = CompoundPoissonDefectDistribution([0.5, 3.0], [0.25, 0.75])
        for k in range(10):
            expected = 0.25 * math.exp(-0.5) * 0.5 ** k / math.factorial(k)
            expected += 0.75 * math.exp(-3.0) * 3.0 ** k / math.factorial(k)
            assert mixture.pmf(k) == pytest.approx(expected, rel=1e-12)

    def test_mean_is_mixture_mean(self):
        mixture = CompoundPoissonDefectDistribution([1.0, 4.0], [0.5, 0.5])
        assert mixture.mean() == pytest.approx(2.5)

    def test_variance_exceeds_mean_for_true_mixture(self):
        # over-dispersion is the defining property of clustered defect models
        mixture = CompoundPoissonDefectDistribution([0.5, 4.0], [0.5, 0.5])
        assert mixture.variance() > mixture.mean()

    def test_pmf_sums_to_one(self):
        mixture = CompoundPoissonDefectDistribution([0.5, 2.0, 6.0], [0.2, 0.5, 0.3])
        assert sum(mixture.pmf(k) for k in range(200)) == pytest.approx(1.0, abs=1e-10)

    def test_thinning_scales_all_rates(self):
        mixture = CompoundPoissonDefectDistribution([1.0, 2.0], [0.4, 0.6])
        thinned = mixture.thinned(0.5)
        assert isinstance(thinned, CompoundPoissonDefectDistribution)
        assert [rate for rate, _ in thinned.components] == pytest.approx([0.5, 1.0])
        assert [w for _, w in thinned.components] == pytest.approx([0.4, 0.6])
        assert thinned.mean() == pytest.approx(0.5 * mixture.mean())

    def test_thinning_commutes_with_pmf_mixture(self):
        # thinning a mixture = mixture of thinned components
        mixture = CompoundPoissonDefectDistribution([1.0, 3.0], [0.3, 0.7])
        thinned = mixture.thinned(0.4)
        reference = CompoundPoissonDefectDistribution([0.4, 1.2], [0.3, 0.7])
        for k in range(10):
            assert thinned.pmf(k) == pytest.approx(reference.pmf(k), rel=1e-12)

"""Unit tests for the per-component defect model."""

import pytest

from repro.distributions import (
    ComponentDefectModel,
    DistributionError,
    split_weights_by_class,
)


class TestConstruction:
    def test_basic_model(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        assert model.count == 2
        assert model.names == ("A", "B")
        assert model.lethality == pytest.approx(0.5)

    def test_lethal_probabilities_sum_to_one(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3, "C": 0.1})
        assert sum(model.lethal_probabilities()) == pytest.approx(1.0)
        assert model.lethal_probability("A") == pytest.approx(0.2 / 0.6)

    def test_rejects_probabilities_summing_above_one(self):
        with pytest.raises(DistributionError):
            ComponentDefectModel({"A": 0.7, "B": 0.5})

    def test_rejects_non_positive_probability(self):
        with pytest.raises(DistributionError):
            ComponentDefectModel({"A": 0.0})
        with pytest.raises(DistributionError):
            ComponentDefectModel({"A": -0.1})

    def test_rejects_empty_model(self):
        with pytest.raises(DistributionError):
            ComponentDefectModel({})

    def test_from_relative_weights(self):
        model = ComponentDefectModel.from_relative_weights(
            {"big": 2.0, "small": 1.0, "tiny": 1.0}, lethality=0.4
        )
        assert model.lethality == pytest.approx(0.4)
        assert model.raw_probability("big") == pytest.approx(0.2)
        assert model.raw_probability("small") == pytest.approx(0.1)

    def test_from_relative_weights_rejects_bad_lethality(self):
        with pytest.raises(DistributionError):
            ComponentDefectModel.from_relative_weights({"A": 1.0}, lethality=0.0)
        with pytest.raises(DistributionError):
            ComponentDefectModel.from_relative_weights({"A": 1.0}, lethality=1.5)

    def test_uniform(self):
        model = ComponentDefectModel.uniform(["A", "B", "C", "D"], lethality=0.8)
        assert model.raw_probability("C") == pytest.approx(0.2)
        assert model.lethal_probability("C") == pytest.approx(0.25)


class TestAccessors:
    def test_index_of_and_unknown_component(self):
        model = ComponentDefectModel({"A": 0.1, "B": 0.1})
        assert model.index_of("B") == 1
        with pytest.raises(KeyError):
            model.index_of("Z")

    def test_as_dict_preserves_order_and_values(self):
        probabilities = {"x": 0.1, "y": 0.2, "z": 0.05}
        model = ComponentDefectModel(probabilities)
        assert list(model.as_dict()) == ["x", "y", "z"]
        assert model.as_dict()["y"] == pytest.approx(0.2)

    def test_scaled(self):
        model = ComponentDefectModel({"A": 0.1, "B": 0.2})
        scaled = model.scaled(2.0)
        assert scaled.lethality == pytest.approx(0.6)
        # relative weights are preserved
        assert scaled.lethal_probability("A") == pytest.approx(model.lethal_probability("A"))

    def test_scaled_rejects_non_positive_factor(self):
        model = ComponentDefectModel({"A": 0.1})
        with pytest.raises(DistributionError):
            model.scaled(0.0)

    def test_len(self):
        assert len(ComponentDefectModel({"A": 0.1, "B": 0.1, "C": 0.1})) == 3


class TestSplitWeightsByClass:
    def test_expansion(self):
        weights = split_weights_by_class(
            {"IP": 1.0, "COMM": 0.1},
            {"IP": ["IP_1", "IP_2"], "COMM": ["C_1"]},
        )
        assert weights == {"IP_1": 1.0, "IP_2": 1.0, "C_1": 0.1}

    def test_missing_class_weight(self):
        with pytest.raises(DistributionError):
            split_weights_by_class({"IP": 1.0}, {"IP": ["a"], "COMM": ["b"]})

    def test_duplicate_component(self):
        with pytest.raises(DistributionError):
            split_weights_by_class(
                {"X": 1.0, "Y": 2.0}, {"X": ["a"], "Y": ["a"]}
            )

"""Unit tests for the negative-binomial defect-count distribution."""

import math

import pytest

from repro.distributions import DistributionError, NegativeBinomialDefectDistribution


class TestConstruction:
    def test_rejects_non_positive_mean(self):
        with pytest.raises(DistributionError):
            NegativeBinomialDefectDistribution(mean=0.0, clustering=1.0)
        with pytest.raises(DistributionError):
            NegativeBinomialDefectDistribution(mean=-1.0, clustering=1.0)

    def test_rejects_non_positive_clustering(self):
        with pytest.raises(DistributionError):
            NegativeBinomialDefectDistribution(mean=1.0, clustering=0.0)

    def test_rejects_nan_parameters(self):
        with pytest.raises(DistributionError):
            NegativeBinomialDefectDistribution(mean=float("nan"), clustering=1.0)
        with pytest.raises(DistributionError):
            NegativeBinomialDefectDistribution(mean=1.0, clustering=float("inf"))


class TestPmf:
    def test_pmf_matches_closed_form_for_k0(self):
        # Q_0 = (1 + lambda/alpha)^(-alpha)
        dist = NegativeBinomialDefectDistribution(mean=2.0, clustering=0.5)
        expected = (1.0 + 2.0 / 0.5) ** (-0.5)
        assert dist.pmf(0) == pytest.approx(expected, rel=1e-12)

    def test_pmf_matches_paper_formula(self):
        lam, alpha = 1.7, 0.8
        dist = NegativeBinomialDefectDistribution(mean=lam, clustering=alpha)
        for k in range(12):
            expected = (
                math.gamma(alpha + k)
                / (math.factorial(k) * math.gamma(alpha))
                * (lam / alpha) ** k
                / (1.0 + lam / alpha) ** (alpha + k)
            )
            assert dist.pmf(k) == pytest.approx(expected, rel=1e-10)

    def test_pmf_is_zero_for_negative_k(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=1.0)
        assert dist.pmf(-1) == 0.0

    def test_pmf_sums_to_one(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=0.25)
        total = sum(dist.pmf(k) for k in range(4000))
        assert total == pytest.approx(1.0, abs=1e-9)

    def test_mean_and_variance(self):
        dist = NegativeBinomialDefectDistribution(mean=3.0, clustering=2.0)
        mean = sum(k * dist.pmf(k) for k in range(500))
        second = sum(k * k * dist.pmf(k) for k in range(500))
        assert mean == pytest.approx(dist.mean(), rel=1e-6)
        assert second - mean * mean == pytest.approx(dist.variance(), rel=1e-5)

    def test_clustering_increases_zero_defect_probability(self):
        # stronger clustering (smaller alpha) concentrates defects on few dies,
        # so the probability of a defect-free die increases
        weak = NegativeBinomialDefectDistribution(mean=1.0, clustering=10.0)
        strong = NegativeBinomialDefectDistribution(mean=1.0, clustering=0.1)
        assert strong.pmf(0) > weak.pmf(0)


class TestThinning:
    def test_thinning_keeps_family_and_clustering(self):
        dist = NegativeBinomialDefectDistribution(mean=2.0, clustering=0.7)
        thinned = dist.thinned(0.5)
        assert isinstance(thinned, NegativeBinomialDefectDistribution)
        assert thinned.clustering == pytest.approx(0.7)
        assert thinned.mean() == pytest.approx(1.0)

    def test_thinning_matches_binomial_mixture(self):
        # Q'_k = sum_m Q_m C(m,k) p^k (1-p)^(m-k), the generic eq. (1)
        dist = NegativeBinomialDefectDistribution(mean=1.5, clustering=1.2)
        p = 0.4
        thinned = dist.thinned(p)
        for k in range(8):
            expected = sum(
                dist.pmf(m) * math.comb(m, k) * p ** k * (1 - p) ** (m - k)
                for m in range(k, 200)
            )
            assert thinned.pmf(k) == pytest.approx(expected, rel=1e-8)

    def test_thinning_with_probability_one_is_identity(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=2.0)
        thinned = dist.thinned(1.0)
        for k in range(10):
            assert thinned.pmf(k) == pytest.approx(dist.pmf(k))

    def test_thinning_rejects_invalid_probability(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=2.0)
        with pytest.raises(DistributionError):
            dist.thinned(0.0)
        with pytest.raises(DistributionError):
            dist.thinned(1.5)


class TestTruncation:
    def test_truncation_level_meets_error_budget(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=4.0)
        for epsilon in (1e-2, 1e-3, 1e-6):
            level = dist.truncation_level(epsilon)
            assert dist.tail(level) <= epsilon
            if level > 0:
                assert dist.tail(level - 1) > epsilon

    def test_truncation_matches_paper_operating_points(self):
        # the calibration documented in DESIGN.md: alpha=4, eps=1e-3
        assert NegativeBinomialDefectDistribution(1.0, 4.0).truncation_level(1e-3) == 6
        assert NegativeBinomialDefectDistribution(2.0, 4.0).truncation_level(1e-3) == 10

    def test_truncation_rejects_bad_epsilon(self):
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=4.0)
        with pytest.raises(DistributionError):
            dist.truncation_level(0.0)
        with pytest.raises(DistributionError):
            dist.truncation_level(1.5)

    def test_cdf_tail_complementarity(self):
        dist = NegativeBinomialDefectDistribution(mean=2.0, clustering=1.0)
        for k in range(10):
            assert dist.cdf(k) + dist.tail(k) == pytest.approx(1.0, abs=1e-12)


class TestSampling:
    def test_sampling_mean_is_close(self):
        import random

        dist = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
        rng = random.Random(7)
        samples = dist.sample(rng, 4000)
        average = sum(samples) / len(samples)
        assert average == pytest.approx(2.0, abs=0.15)

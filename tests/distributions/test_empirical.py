"""Unit tests for the empirical distribution and the eq. (1) lethal mapping."""

import math

import pytest

from repro.distributions import (
    DistributionError,
    EmpiricalDefectDistribution,
    NegativeBinomialDefectDistribution,
    binomial_thinning,
)


class TestBinomialThinning:
    def test_thinning_of_point_mass(self):
        # all mass at 2 defects, each retained with probability p
        p = 0.3
        out = binomial_thinning([0.0, 0.0, 1.0], p)
        assert out[0] == pytest.approx((1 - p) ** 2)
        assert out[1] == pytest.approx(2 * p * (1 - p))
        assert out[2] == pytest.approx(p * p)

    def test_thinning_preserves_total_mass(self):
        pmf = [0.1, 0.2, 0.3, 0.25, 0.15]
        out = binomial_thinning(pmf, 0.7)
        assert sum(out) == pytest.approx(1.0, abs=1e-12)

    def test_thinning_with_probability_one_is_identity(self):
        pmf = [0.5, 0.25, 0.25]
        assert binomial_thinning(pmf, 1.0) == pytest.approx(pmf)

    def test_thinning_rejects_invalid_probability(self):
        with pytest.raises(DistributionError):
            binomial_thinning([1.0], 0.0)

    def test_matches_negative_binomial_closed_form(self):
        # eq. (1) applied numerically must agree with the closed-form result
        # that the thinned negative binomial keeps the family
        nb = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
        pmf = nb.pmf_vector(120)
        thinned_numeric = binomial_thinning(pmf, 0.5)
        thinned_exact = nb.thinned(0.5)
        for k in range(10):
            assert thinned_numeric[k] == pytest.approx(thinned_exact.pmf(k), rel=1e-6)


class TestEmpiricalDistribution:
    def test_basic_pmf_access(self):
        dist = EmpiricalDefectDistribution([0.5, 0.3, 0.2])
        assert dist.pmf(0) == 0.5
        assert dist.pmf(2) == 0.2
        assert dist.pmf(5) == 0.0
        assert dist.pmf(-1) == 0.0

    def test_missing_mass_is_assigned_conservatively(self):
        dist = EmpiricalDefectDistribution([0.5, 0.3])
        # 0.2 missing mass is placed at k = len(pmf)
        assert dist.pmf(2) == pytest.approx(0.2)
        assert dist.tail(1) == pytest.approx(0.2)

    def test_mean(self):
        dist = EmpiricalDefectDistribution([0.25, 0.5, 0.25])
        assert dist.mean() == pytest.approx(1.0)

    def test_rejects_negative_probabilities(self):
        with pytest.raises(DistributionError):
            EmpiricalDefectDistribution([0.5, -0.1])

    def test_rejects_mass_above_one(self):
        with pytest.raises(DistributionError):
            EmpiricalDefectDistribution([0.9, 0.3])

    def test_thinned_is_empirical_and_matches_manual(self):
        dist = EmpiricalDefectDistribution([0.2, 0.5, 0.3])
        thinned = dist.thinned(0.5)
        assert isinstance(thinned, EmpiricalDefectDistribution)
        manual = binomial_thinning([0.2, 0.5, 0.3], 0.5)
        for k in range(3):
            assert thinned.pmf(k) == pytest.approx(manual[k])

    def test_truncation_level(self):
        dist = EmpiricalDefectDistribution([0.9, 0.05, 0.05])
        assert dist.truncation_level(0.2) == 0
        assert dist.truncation_level(0.06) == 1
        assert dist.truncation_level(0.01) == 2

"""Test package."""

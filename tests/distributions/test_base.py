"""Unit tests for the shared distribution base-class helpers."""

import pytest

from repro.distributions import (
    DistributionError,
    EmpiricalDefectDistribution,
    PoissonDefectDistribution,
    validate_probability_vector,
)


class TestValidateProbabilityVector:
    def test_accepts_valid_vector(self):
        assert validate_probability_vector([0.25, 0.75]) == [0.25, 0.75]

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            validate_probability_vector([])

    def test_rejects_negative(self):
        with pytest.raises(DistributionError):
            validate_probability_vector([0.5, -0.1])

    def test_rejects_sum_above_one(self):
        with pytest.raises(DistributionError):
            validate_probability_vector([0.8, 0.4])


class TestDerivedHelpers:
    def test_cdf_monotone_and_bounded(self):
        dist = PoissonDefectDistribution(1.0)
        previous = 0.0
        for k in range(15):
            value = dist.cdf(k)
            assert previous <= value <= 1.0
            previous = value

    def test_cdf_negative_argument(self):
        assert PoissonDefectDistribution(1.0).cdf(-1) == 0.0

    def test_pmf_vector(self):
        dist = EmpiricalDefectDistribution([0.5, 0.5])
        assert dist.pmf_vector(3) == [0.5, 0.5, 0.0, 0.0]
        with pytest.raises(DistributionError):
            dist.pmf_vector(-1)

    def test_truncation_failure_is_reported(self):
        dist = PoissonDefectDistribution(5.0)
        with pytest.raises(DistributionError):
            dist.truncation_level(1e-12, max_level=2)

    def test_sampling_is_reproducible(self):
        import random

        dist = PoissonDefectDistribution(2.0)
        a = dist.sample(random.Random(3), 50)
        b = dist.sample(random.Random(3), 50)
        assert a == b

"""Unit tests for the Poisson defect-count distribution."""

import math

import pytest

from repro.distributions import (
    DistributionError,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)


class TestPoisson:
    def test_pmf_closed_form(self):
        dist = PoissonDefectDistribution(mean=1.3)
        for k in range(10):
            expected = math.exp(-1.3) * 1.3 ** k / math.factorial(k)
            assert dist.pmf(k) == pytest.approx(expected, rel=1e-12)

    def test_pmf_zero_for_negative_k(self):
        assert PoissonDefectDistribution(2.0).pmf(-3) == 0.0

    def test_rejects_invalid_mean(self):
        with pytest.raises(DistributionError):
            PoissonDefectDistribution(0.0)
        with pytest.raises(DistributionError):
            PoissonDefectDistribution(float("nan"))

    def test_mean_and_variance_equal(self):
        dist = PoissonDefectDistribution(mean=2.5)
        assert dist.mean() == pytest.approx(2.5)
        assert dist.variance() == pytest.approx(2.5)

    def test_thinning_scales_mean(self):
        dist = PoissonDefectDistribution(mean=2.0)
        thinned = dist.thinned(0.25)
        assert isinstance(thinned, PoissonDefectDistribution)
        assert thinned.mean() == pytest.approx(0.5)

    def test_thinning_rejects_invalid_probability(self):
        with pytest.raises(DistributionError):
            PoissonDefectDistribution(1.0).thinned(0.0)

    def test_poisson_is_limit_of_negative_binomial(self):
        poisson = PoissonDefectDistribution(mean=1.0)
        almost_poisson = NegativeBinomialDefectDistribution(mean=1.0, clustering=1e6)
        for k in range(8):
            assert poisson.pmf(k) == pytest.approx(almost_poisson.pmf(k), rel=1e-4)

    def test_truncation_level(self):
        dist = PoissonDefectDistribution(mean=1.0)
        level = dist.truncation_level(1e-6)
        assert dist.tail(level) <= 1e-6
        assert dist.tail(level - 1) > 1e-6

"""Test package."""

"""Unit tests for the paper-table regeneration helpers.

The table functions are exercised on the smallest benchmark (MS2) with a
reduced truncation level so the whole module stays fast; the full paper-scale
runs live in ``benchmarks/``.
"""

import pytest

from repro.analysis import table1, table2, table3, table4
from repro.analysis.tables import _spec_for


class TestTable1:
    def test_reproduces_paper_component_counts(self):
        headers, rows = table1()
        assert headers == ["benchmark", "C", "gates"]
        counts = {row[0]: row[1] for row in rows}
        assert counts["MS2"] == 18
        assert counts["ESEN8x4"] == 72
        assert len(rows) == 11
        # gate counts are positive and grow with the system size
        gates = {row[0]: row[2] for row in rows}
        assert gates["MS10"] > gates["MS2"]
        assert gates["ESEN8x4"] > gates["ESEN4x1"]


class TestSpecFor:
    def test_heuristic_bit_order_only_with_matching_mv(self):
        assert _spec_for("wv", "w").bits == "ml"
        assert _spec_for("w", "w").bits == "w"


class TestTable2:
    def test_small_run(self):
        headers, rows = table2(["MS2"], max_defects=2, orderings=("wv", "wvr", "w"))
        assert headers == ["benchmark", "wv", "wvr", "w"]
        assert len(rows) == 1
        name, *sizes = rows[0]
        assert name == "MS2"
        assert all(isinstance(s, int) and s > 0 for s in sizes)

    def test_node_limit_marks_failures(self):
        headers, rows = table2(
            ["MS2"], max_defects=3, orderings=("vrw",), node_limit=300
        )
        assert rows[0][1] is None


class TestTable3:
    def test_small_run(self):
        headers, rows = table3(["MS2"], max_defects=2, bit_orderings=("ml", "lm"))
        assert headers == ["benchmark", "ml", "lm"]
        assert all(size > 0 for size in rows[0][1:])


class TestTable4:
    def test_small_run(self):
        headers, rows = table4(["MS2"], max_defects=2)
        assert headers == ["benchmark", "cpu_s", "robdd_peak", "robdd", "romdd", "M", "yield"]
        row = rows[0]
        assert row[0] == "MS2"
        assert row[1] >= 0.0
        assert row[2] >= row[3] >= row[4]
        assert row[5] == 2
        assert 0.0 < row[6] <= 1.0

    def test_node_limit_marks_failures(self):
        headers, rows = table4(["MS2"], max_defects=3, node_limit=300)
        assert rows[0][1] is None

"""Unit tests for the parameter sweep helpers."""

import pytest

from repro.analysis import defect_density_sweep, truncation_sweep
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.faulttree import FaultTreeBuilder


def make_problem(mean_defects=1.5):
    ft = FaultTreeBuilder("sweep")
    ft.set_top(ft.k_out_of_n_failed(2, ["A", "B", "C", "D"]))
    model = ComponentDefectModel.uniform(["A", "B", "C", "D"], lethality=0.5)
    dist = NegativeBinomialDefectDistribution(mean=mean_defects, clustering=4.0)
    return YieldProblem(ft.build(), model, dist, name="sweep")


class TestTruncationSweep:
    def test_estimates_increase_and_bounds_decrease(self):
        rows = truncation_sweep(make_problem(), [0, 1, 2, 3, 4])
        estimates = [r[1] for r in rows]
        bounds = [r[2] for r in rows]
        assert estimates == sorted(estimates)
        assert bounds == sorted(bounds, reverse=True)
        assert rows[0][0] == 0 and rows[-1][0] == 4

    def test_estimate_plus_bound_brackets_the_limit(self):
        rows = truncation_sweep(make_problem(), [1, 6])
        best = rows[-1][1]
        for _, estimate, bound in rows:
            assert estimate <= best + 1e-12
            assert best <= estimate + bound + 1e-12


class TestDefectDensitySweep:
    def test_yield_decreases_with_defect_density(self):
        rows = defect_density_sweep(make_problem, [0.5, 1.0, 2.0, 4.0], epsilon=1e-3)
        yields = [r[1] for r in rows]
        assert yields == sorted(yields, reverse=True)
        # truncation level grows with the defect density
        assert rows[-1][2] >= rows[0][2]

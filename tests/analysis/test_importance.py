"""Tests for the component importance measures."""

import pytest

from repro.analysis.importance import (
    class_hardening_potential,
    hardening_potential,
    yield_sensitivity,
)
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.faulttree import FaultTreeBuilder


@pytest.fixture
def series_parallel_problem():
    """SYSTEM fails if S fails, or if both P1 and P2 fail.

    S is a single point of failure, P1/P2 are redundant, and PAD does not
    appear in the structure function at all.
    """
    ft = FaultTreeBuilder("series-parallel")
    ft.set_top(ft.or_(ft.failed("S"), ft.and_(ft.failed("P1"), ft.failed("P2"))))
    model = ComponentDefectModel({"S": 0.15, "P1": 0.15, "P2": 0.15, "PAD": 0.05})
    dist = NegativeBinomialDefectDistribution(mean=1.5, clustering=4.0)
    return YieldProblem(ft.build(), model, dist, name="series-parallel")


class TestHardeningPotential:
    def test_single_point_of_failure_ranks_first(self, series_parallel_problem):
        ranking = hardening_potential(series_parallel_problem, max_defects=3)
        names = [name for name, _ in ranking]
        assert names[0] == "S"
        gains = dict(ranking)
        assert gains["S"] > gains["P1"] > 0.0
        # hardening a component that the structure never reads still helps a
        # little (fewer lethal defects overall), but far less than hardening S
        assert gains["PAD"] >= 0.0
        assert gains["S"] > 5 * gains["PAD"]

    def test_redundant_pair_is_symmetric(self, series_parallel_problem):
        gains = dict(hardening_potential(series_parallel_problem, max_defects=3))
        assert gains["P1"] == pytest.approx(gains["P2"], rel=1e-6)

    def test_component_subset(self, series_parallel_problem):
        ranking = hardening_potential(
            series_parallel_problem, components=["S", "P1"], max_defects=2
        )
        assert [name for name, _ in ranking] == ["S", "P1"]

    def test_unknown_component(self, series_parallel_problem):
        with pytest.raises(KeyError):
            hardening_potential(series_parallel_problem, components=["ZZZ"], max_defects=2)


class TestYieldSensitivity:
    def test_sensitivities_are_negative_for_used_components(self, series_parallel_problem):
        ranking = yield_sensitivity(series_parallel_problem, max_defects=3)
        values = dict(ranking)
        assert values["S"] < 0.0
        # the single point of failure is the most sensitive component
        assert ranking[0][0] == "S"

    def test_invalid_step(self, series_parallel_problem):
        with pytest.raises(ValueError):
            yield_sensitivity(series_parallel_problem, relative_step=0.0)


class TestClassHardening:
    def test_class_measure_orders_series_before_parallel(self, series_parallel_problem):
        ranking = class_hardening_potential(
            series_parallel_problem,
            {"single-point": ["S"], "redundant-pair": ["P1", "P2"], "padding": ["PAD"]},
            max_defects=3,
        )
        labels = [label for label, _ in ranking]
        gains = dict(ranking)
        assert gains["single-point"] > 0.0
        assert gains["redundant-pair"] > 0.0
        assert labels[-1] == "padding"

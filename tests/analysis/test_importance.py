"""Tests for the component importance measures.

Beyond the behavioural checks, the golden-ranking classes pin the analytic
gradient route to the legacy finite-difference route: identical component
rankings on the example fault trees, and — for the hardening measure, whose
immune-component perturbation now runs batched through the sweep service —
bit-for-bit identical yield gains versus the original per-point evaluation.
"""

import pytest

from repro.analysis.importance import (
    _IMMUNE_FACTOR,
    _perturbed_problem,
    class_hardening_potential,
    hardening_potential,
    yield_sensitivity,
)
from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.faulttree import FaultTreeBuilder


@pytest.fixture
def series_parallel_problem():
    """SYSTEM fails if S fails, or if both P1 and P2 fail.

    S is a single point of failure, P1/P2 are redundant, and PAD does not
    appear in the structure function at all.
    """
    ft = FaultTreeBuilder("series-parallel")
    ft.set_top(ft.or_(ft.failed("S"), ft.and_(ft.failed("P1"), ft.failed("P2"))))
    model = ComponentDefectModel({"S": 0.15, "P1": 0.15, "P2": 0.15, "PAD": 0.05})
    dist = NegativeBinomialDefectDistribution(mean=1.5, clustering=4.0)
    return YieldProblem(ft.build(), model, dist, name="series-parallel")


def _distinct_weight_problems():
    """Example fault trees with pairwise-distinct component weights.

    Distinct weights keep every pair of sensitivities separated by far more
    than floating-point noise, so ranking comparisons between the analytic
    and the finite-difference routes are meaningful (symmetric components
    would tie up to the last ulp and rank arbitrarily on either route).
    """
    problems = []

    ft = FaultTreeBuilder("series-parallel-distinct")
    ft.set_top(ft.or_(ft.failed("S"), ft.and_(ft.failed("P1"), ft.failed("P2"))))
    model = ComponentDefectModel({"S": 0.11, "P1": 0.17, "P2": 0.08, "PAD": 0.04})
    dist = NegativeBinomialDefectDistribution(mean=1.5, clustering=4.0)
    problems.append(YieldProblem(ft.build(), model, dist, name="sp-distinct"))

    # two redundant pairs in series with a shared voter component
    ft = FaultTreeBuilder("two-pairs")
    ft.set_top(
        ft.or_(
            ft.or_(
                ft.and_(ft.failed("A1"), ft.failed("A2")),
                ft.and_(ft.failed("B1"), ft.failed("B2")),
            ),
            ft.failed("V"),
        )
    )
    model = ComponentDefectModel(
        {"A1": 0.05, "A2": 0.12, "B1": 0.21, "B2": 0.03, "V": 0.07, "PAD": 0.02}
    )
    dist = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
    problems.append(YieldProblem(ft.build(), model, dist, name="two-pairs"))
    return problems


class TestHardeningPotential:
    def test_single_point_of_failure_ranks_first(self, series_parallel_problem):
        ranking = hardening_potential(series_parallel_problem, max_defects=3)
        names = [name for name, _ in ranking]
        assert names[0] == "S"
        gains = dict(ranking)
        assert gains["S"] > gains["P1"] > 0.0
        # hardening a component that the structure never reads still helps a
        # little (fewer lethal defects overall), but far less than hardening S
        assert gains["PAD"] >= 0.0
        assert gains["S"] > 5 * gains["PAD"]

    def test_redundant_pair_is_symmetric(self, series_parallel_problem):
        gains = dict(hardening_potential(series_parallel_problem, max_defects=3))
        assert gains["P1"] == pytest.approx(gains["P2"], rel=1e-6)

    def test_component_subset(self, series_parallel_problem):
        ranking = hardening_potential(
            series_parallel_problem, components=["S", "P1"], max_defects=2
        )
        assert [name for name, _ in ranking] == ["S", "P1"]

    def test_unknown_component(self, series_parallel_problem):
        with pytest.raises(KeyError):
            hardening_potential(series_parallel_problem, components=["ZZZ"], max_defects=2)


class TestYieldSensitivity:
    def test_sensitivities_are_negative_for_used_components(self, series_parallel_problem):
        ranking = yield_sensitivity(series_parallel_problem, max_defects=3)
        values = dict(ranking)
        assert values["S"] < 0.0
        # the single point of failure is the most sensitive component
        assert ranking[0][0] == "S"

    def test_invalid_step(self, series_parallel_problem):
        with pytest.raises(ValueError):
            yield_sensitivity(
                series_parallel_problem, method="fd", relative_step=0.0
            )


class TestGoldenRankings:
    """Analytic vs legacy finite-difference routes on the example trees."""

    @pytest.mark.parametrize(
        "problem", _distinct_weight_problems(), ids=lambda p: p.name
    )
    def test_analytic_and_fd_rankings_are_identical(self, problem):
        analytic = yield_sensitivity(problem, max_defects=3, method="analytic")
        legacy = yield_sensitivity(
            problem, max_defects=3, method="fd", relative_step=0.05
        )
        assert [name for name, _ in analytic] == [name for name, _ in legacy]
        # the two routes approximate the same derivative: the analytic value
        # must sit within the O(h^2) error of the h=0.05 central difference
        for (name, value), (_, fd_value) in zip(analytic, legacy):
            assert value == pytest.approx(fd_value, rel=5e-3, abs=1e-9), name

    @pytest.mark.parametrize(
        "problem", _distinct_weight_problems(), ids=lambda p: p.name
    )
    def test_analytic_matches_tight_finite_difference(self, problem):
        """With a small step, values (not just ranks) agree closely."""
        analytic = dict(yield_sensitivity(problem, max_defects=3))
        legacy = dict(
            yield_sensitivity(
                problem, max_defects=3, method="fd", relative_step=1e-4
            )
        )
        for name, value in analytic.items():
            assert value == pytest.approx(legacy[name], rel=1e-5, abs=1e-8), name

    @pytest.mark.parametrize(
        "problem", _distinct_weight_problems(), ids=lambda p: p.name
    )
    def test_hardening_gains_bit_for_bit_vs_legacy_route(self, problem):
        """The batched service route preserves the immune-component
        semantics of the original per-point evaluation exactly."""
        batched = dict(hardening_potential(problem, max_defects=3))

        analyzer = YieldAnalyzer(epsilon=1e-4)
        baseline = analyzer.evaluate(problem, max_defects=3).yield_estimate
        for name in problem.component_names:
            perturbed = _perturbed_problem(problem, {name: _IMMUNE_FACTOR})
            legacy_gain = (
                analyzer.evaluate(perturbed, max_defects=3).yield_estimate - baseline
            )
            assert batched[name] == legacy_gain  # bit-for-bit, not approx

    def test_hardening_ranking_order_matches_legacy(self, series_parallel_problem):
        batched = hardening_potential(series_parallel_problem, max_defects=3)

        analyzer = YieldAnalyzer(epsilon=1e-4)
        baseline = analyzer.evaluate(
            series_parallel_problem, max_defects=3
        ).yield_estimate
        legacy = []
        for name in series_parallel_problem.component_names:
            perturbed = _perturbed_problem(series_parallel_problem, {name: _IMMUNE_FACTOR})
            legacy.append(
                (
                    name,
                    analyzer.evaluate(perturbed, max_defects=3).yield_estimate
                    - baseline,
                )
            )
        legacy.sort(key=lambda item: item[1], reverse=True)
        assert batched == legacy


class TestValidation:
    """The epsilon / step guards that replace silent NaN-scale rankings."""

    def test_step_of_one_or_more_is_rejected(self, series_parallel_problem):
        with pytest.raises(ValueError, match="relative_step"):
            yield_sensitivity(
                series_parallel_problem, method="fd", relative_step=1.0
            )

    def test_nan_step_is_rejected(self, series_parallel_problem):
        with pytest.raises(ValueError, match="relative_step"):
            yield_sensitivity(
                series_parallel_problem, method="fd", relative_step=float("nan")
            )

    def test_analytic_route_ignores_the_step(self, series_parallel_problem):
        # the analytic route never perturbs, so the step is not validated
        ranking = yield_sensitivity(
            series_parallel_problem, max_defects=2, relative_step=123.0
        )
        assert ranking[0][0] == "S"

    @pytest.mark.parametrize("epsilon", [0.0, -1e-4, 1.0, float("nan")])
    def test_invalid_epsilon_is_rejected(self, series_parallel_problem, epsilon):
        with pytest.raises(ValueError, match="epsilon"):
            yield_sensitivity(series_parallel_problem, epsilon=epsilon)
        with pytest.raises(ValueError, match="epsilon"):
            hardening_potential(series_parallel_problem, epsilon=epsilon)
        with pytest.raises(ValueError, match="epsilon"):
            class_hardening_potential(
                series_parallel_problem, {"all": ["S"]}, epsilon=epsilon
            )

    def test_perturbation_underflow_raises_instead_of_nan(self):
        """A perturbation that rounds a tiny P_i to zero must raise."""
        ft = FaultTreeBuilder("tiny")
        ft.set_top(ft.or_(ft.failed("S"), ft.failed("T")))
        model = ComponentDefectModel({"S": 0.2, "T": 5e-324})
        dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=4.0)
        problem = YieldProblem(ft.build(), model, dist, name="tiny")
        # 5e-324 is the smallest subnormal: halving it rounds to 0.0
        assert 5e-324 * 0.5 == 0.0
        with pytest.raises(ValueError, match="invalid probability"):
            yield_sensitivity(
                problem, max_defects=2, method="fd", relative_step=0.5
            )
        with pytest.raises(ValueError, match="invalid probability"):
            hardening_potential(problem, components=["T"], max_defects=2)

    def test_unknown_component_analytic_route(self, series_parallel_problem):
        with pytest.raises(KeyError):
            yield_sensitivity(
                series_parallel_problem, components=["ZZZ"], max_defects=2
            )

    def test_analytic_route_is_default_and_rejects_bad_method(
        self, series_parallel_problem
    ):
        with pytest.raises(ValueError, match="method"):
            yield_sensitivity(series_parallel_problem, method="magic")


class TestServiceIntegration:
    def test_shared_service_reuses_one_structure(self, series_parallel_problem):
        from repro.engine.service import SweepService

        service = SweepService()
        try:
            yield_sensitivity(
                series_parallel_problem, max_defects=3, service=service
            )
            hardening_potential(
                series_parallel_problem, max_defects=3, service=service
            )
            # one structure serves the gradient pass and every perturbed model
            assert service.stats.structures_built == 1
            assert service.stats.gradient_passes == 1
            assert service.stats.points_differentiated == 1
            assert service.stats.batched_passes == 1
        finally:
            service.close()

    def test_gradient_batch_groups_by_truncation(self, series_parallel_problem):
        from repro.engine.service import SweepPoint, SweepService

        service = SweepService()
        try:
            points = [
                SweepPoint(series_parallel_problem, max_defects=2),
                SweepPoint(series_parallel_problem, max_defects=3),
                SweepPoint(series_parallel_problem, max_defects=2),
            ]
            gradients = service.gradient_batch(points)
            assert [g.truncation for g in gradients] == [2, 3, 2]
            assert service.stats.gradient_passes == 2  # one per structure group
            assert service.stats.points_differentiated == 3
            # results come back in request order with per-point values
            assert gradients[0].sensitivity == gradients[2].sensitivity
        finally:
            service.close()


class TestClassHardening:
    def test_class_measure_orders_series_before_parallel(self, series_parallel_problem):
        ranking = class_hardening_potential(
            series_parallel_problem,
            {"single-point": ["S"], "redundant-pair": ["P1", "P2"], "padding": ["PAD"]},
            max_defects=3,
        )
        labels = [label for label, _ in ranking]
        gains = dict(ranking)
        assert gains["single-point"] > 0.0
        assert gains["redundant-pair"] > 0.0
        assert labels[-1] == "padding"

"""Unit tests for the table formatting helpers."""

from repro.analysis import format_cell, format_markdown_table, format_table


class TestFormatCell:
    def test_none_is_dash(self):
        assert format_cell(None) == "-"

    def test_integral_float(self):
        assert format_cell(3.0) == "3"

    def test_fractional_float(self):
        assert format_cell(0.123456789) == "0.123457"

    def test_strings_and_ints(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestTables:
    HEADERS = ["name", "value"]
    ROWS = [["alpha", 1], ["beta", None], ["gamma", 2.5]]

    def test_plain_table_alignment(self):
        text = format_table(self.HEADERS, self.ROWS)
        lines = text.splitlines()
        assert len(lines) == 2 + len(self.ROWS)
        assert lines[0].startswith("name")
        # all lines padded to the same column widths
        assert len(set(len(line.rstrip()) for line in lines[2:])) >= 1
        assert "alpha" in lines[2]
        assert "-" in lines[3]

    def test_markdown_table(self):
        text = format_markdown_table(self.HEADERS, self.ROWS)
        lines = text.splitlines()
        assert lines[0] == "| name | value |"
        assert lines[1].startswith("|")
        assert lines[2] == "| alpha | 1 |"

"""Test package."""

"""Unit tests for the generalized fault tree G(w, v_1 .. v_M)."""

import itertools

import pytest

from repro.core.gfunction import GeneralizedFaultTree, GFunctionError
from repro.distributions import EmpiricalDefectDistribution
from repro.faulttree import FaultTreeBuilder


COMPONENTS = ["A", "B", "C"]


def series_tree():
    """System fails when any of A, B fails (C never matters)."""
    ft = FaultTreeBuilder("series")
    ft.set_top(ft.or_(ft.failed("A"), ft.failed("B")))
    return ft.build()


def fig2_tree():
    ft = FaultTreeBuilder("fig2")
    a, b, c = (ft.failed(x) for x in COMPONENTS)
    ft.set_top(ft.or_(ft.and_(a, b), c))
    return ft.build()


class TestConstruction:
    def test_variable_shapes(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=3)
        assert g.count_variable.values == (0, 1, 2, 3, 4)
        assert len(g.location_variables) == 3
        for v in g.location_variables:
            assert v.values == (1, 2, 3)

    def test_zero_max_defects(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=0)
        assert g.location_variables == ()
        # G is 1 exactly when w >= 1 (overflow)
        assert g.evaluate(0, []) is False
        assert g.evaluate(5, []) is True

    def test_negative_max_defects_rejected(self):
        with pytest.raises(GFunctionError):
            GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=-1)

    def test_unknown_fault_tree_input_rejected(self):
        with pytest.raises(GFunctionError):
            GeneralizedFaultTree(fig2_tree(), ["A", "B"], max_defects=2)

    def test_duplicate_component_names_rejected(self):
        with pytest.raises(GFunctionError):
            GeneralizedFaultTree(fig2_tree(), ["A", "B", "C", "A"], max_defects=2)

    def test_extra_components_allowed(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS + ["PAD"], max_defects=2)
        assert g.num_components == 4
        # defects on the extra component never fail the system
        assert g.evaluate(2, [4, 4]) is False


class TestSemantics:
    def test_matches_structure_function(self):
        tree = fig2_tree()
        g = GeneralizedFaultTree(tree, COMPONENTS, max_defects=2)
        for count in range(0, 3):
            for hits in itertools.product((1, 2, 3), repeat=count):
                failed = {COMPONENTS[h - 1] for h in hits}
                assignment = {name: name in failed for name in COMPONENTS}
                expected = tree.evaluate_output(assignment)
                assert g.evaluate(count, list(hits)) is expected

    def test_overflow_is_pessimistic(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=2)
        # more than M defects => counted as failed regardless of locations
        assert g.evaluate(3, [1, 1, 1]) is True

    def test_failed_set(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=3)
        assert g.failed_set(2, [1, 3]) == ["A", "C"]
        assert g.failed_set(1, [2, 3]) == ["B"]
        assert g.failed_set(0, []) == []
        with pytest.raises(GFunctionError):
            g.failed_set(1, [9])

    def test_binary_circuit_equivalence(self):
        g = GeneralizedFaultTree(series_tree(), COMPONENTS, max_defects=2)
        binary = g.binary_circuit()
        # check every multi-valued assignment against the binary expansion
        for w_value in g.count_variable.values:
            for v1 in g.location_variables[0].values:
                for v2 in g.location_variables[1].values:
                    assignment = {}
                    pairs = [
                        (g.count_variable, w_value),
                        (g.location_variables[0], v1),
                        (g.location_variables[1], v2),
                    ]
                    for var, value in pairs:
                        for bit_name, bit in zip(var.bit_names(), var.code.codeword(value)):
                            assignment[bit_name] = bool(bit)
                    expected = g.mv_circuit.evaluate({"w": w_value, "v1": v1, "v2": v2})
                    assert binary.evaluate_output(assignment, "G") is expected

    def test_binary_circuit_is_cached(self):
        g = GeneralizedFaultTree(series_tree(), COMPONENTS, max_defects=1)
        assert g.binary_circuit() is g.binary_circuit()


class TestDistributions:
    def test_variable_distributions_shape(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=2)
        lethal = EmpiricalDefectDistribution([0.6, 0.25, 0.1, 0.05])
        dist = g.variable_distributions(lethal, [0.2, 0.3, 0.5])
        assert set(dist) == {"w", "v1", "v2"}
        assert dist["w"][0] == pytest.approx(0.6)
        assert dist["w"][3] == pytest.approx(0.05)
        assert sum(dist["w"].values()) == pytest.approx(1.0)
        assert dist["v1"] == {1: 0.2, 2: 0.3, 3: 0.5}

    def test_wrong_probability_vector_rejected(self):
        g = GeneralizedFaultTree(fig2_tree(), COMPONENTS, max_defects=1)
        lethal = EmpiricalDefectDistribution([0.9, 0.1])
        with pytest.raises(GFunctionError):
            g.variable_distributions(lethal, [0.5, 0.5])
        with pytest.raises(GFunctionError):
            g.variable_distributions(lethal, [0.5, 0.3, 0.3])

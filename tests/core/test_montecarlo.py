"""Unit tests for the Monte-Carlo yield baseline."""

import pytest

from repro import MonteCarloYieldEstimator, estimate_yield_montecarlo, evaluate_yield


class TestMonteCarlo:
    def test_reproducible_with_seed(self, bridge_problem):
        a = estimate_yield_montecarlo(bridge_problem, 2000, seed=42)
        b = estimate_yield_montecarlo(bridge_problem, 2000, seed=42)
        assert a.yield_estimate == b.yield_estimate

    def test_different_seeds_differ(self, bridge_problem):
        a = estimate_yield_montecarlo(bridge_problem, 2000, seed=1)
        b = estimate_yield_montecarlo(bridge_problem, 2000, seed=2)
        assert a.yield_estimate != b.yield_estimate

    def test_interval_and_fields(self, bridge_problem):
        result = estimate_yield_montecarlo(bridge_problem, 3000, seed=5, confidence=0.99)
        low, high = result.confidence_interval
        assert 0.0 <= low <= result.yield_estimate <= high <= 1.0
        assert result.samples == 3000
        assert result.confidence == 0.99
        assert result.standard_error > 0.0
        assert result.elapsed_seconds > 0.0
        assert "yield" in result.summary()

    def test_agrees_with_combinatorial_method(self, bridge_problem):
        # generous tolerance: MC converges slowly, that is the paper's point
        mc = estimate_yield_montecarlo(bridge_problem, 40000, seed=11)
        exact = evaluate_yield(bridge_problem, epsilon=1e-6)
        assert abs(mc.yield_estimate - exact.yield_estimate) < 5 * mc.standard_error + 1e-6

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            MonteCarloYieldEstimator(0)
        with pytest.raises(ValueError):
            MonteCarloYieldEstimator(100, confidence=0.5)

    def test_certain_failure_and_success_extremes(self, paper_example_problem):
        # with zero samples impossible; instead check bounds stay in [0, 1]
        result = estimate_yield_montecarlo(paper_example_problem, 500, seed=3)
        assert 0.0 <= result.yield_estimate <= 1.0

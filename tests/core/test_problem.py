"""Unit tests for the yield-problem container."""

import pytest

from repro.core.problem import ProblemError, YieldProblem
from repro.distributions import (
    ComponentDefectModel,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)
from repro.faulttree import FaultTreeBuilder


def simple_tree():
    ft = FaultTreeBuilder("pair")
    ft.set_top(ft.and_(ft.failed("A"), ft.failed("B")))
    return ft.build()


class TestConstruction:
    def test_basic(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        assert problem.num_components == 2
        assert problem.lethality == pytest.approx(0.5)
        assert problem.component_names == ("A", "B")

    def test_model_may_contain_extra_components(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.2, "PAD": 0.1})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        assert problem.num_components == 3

    def test_fault_tree_inputs_must_be_components(self):
        model = ComponentDefectModel({"A": 0.2})
        with pytest.raises(ProblemError):
            YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))

    def test_fault_tree_needs_single_output(self):
        from repro.faulttree import Circuit

        circuit = Circuit("no-output")
        circuit.add_input("A")
        model = ComponentDefectModel({"A": 0.2})
        with pytest.raises(ProblemError):
            YieldProblem(circuit, model, PoissonDefectDistribution(1.0))

    def test_default_name_comes_from_circuit(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        assert problem.name == "pair"


class TestLethalModel:
    def test_lethal_distribution_is_thinned(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        raw = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
        problem = YieldProblem(simple_tree(), model, raw)
        lethal = problem.lethal_defect_distribution()
        assert lethal.mean() == pytest.approx(1.0)

    def test_lethal_component_probabilities_sum_to_one(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        assert sum(problem.lethal_component_probabilities()) == pytest.approx(1.0)

    def test_truncation_level_delegates(self):
        model = ComponentDefectModel({"A": 0.25, "B": 0.25})
        raw = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
        problem = YieldProblem(simple_tree(), model, raw)
        assert problem.truncation_level(1e-3) == raw.thinned(0.5).truncation_level(1e-3)


class TestStructureEvaluation:
    def test_system_fails(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        assert problem.system_fails(["A", "B"]) is True
        assert problem.system_fails(["A"]) is False
        assert problem.system_fails([]) is False

    def test_unknown_component_rejected(self):
        model = ComponentDefectModel({"A": 0.2, "B": 0.3})
        problem = YieldProblem(simple_tree(), model, PoissonDefectDistribution(1.0))
        with pytest.raises(ProblemError):
            problem.system_fails(["Z"])

"""Cross-validation of the three yield computation routes.

The combinatorial method (coded ROBDD -> ROMDD -> traversal), the direct
ROMDD construction, the exact enumeration and the Monte-Carlo simulation are
four largely independent implementations of the same quantity.  These tests
pin them against each other on several small systems, which exercises every
layer of the library at once.
"""

import pytest

from repro import YieldAnalyzer, estimate_yield_montecarlo, evaluate_yield, exact_yield
from repro.core.gfunction import GeneralizedFaultTree
from repro.mdd import probability_of_one
from repro.mdd.direct import build_mdd_from_mvcircuit
from repro.ordering import OrderingSpec


def direct_route_yield(problem, max_defects):
    """Yield estimate computed with the direct-MDD construction (no ROBDD)."""
    lethal = problem.lethal_defect_distribution()
    g = GeneralizedFaultTree(problem.fault_tree, problem.component_names, max_defects)
    order = [g.count_variable] + list(g.location_variables)
    manager, root, _ = build_mdd_from_mvcircuit(g.mv_circuit, order)
    distributions = g.variable_distributions(
        lethal, problem.lethal_component_probabilities()
    )
    return 1.0 - probability_of_one(manager, root, distributions)


@pytest.mark.parametrize("fixture_name", ["paper_example_problem", "bridge_problem", "tmr_problem"])
class TestRoutesAgree:
    def test_combinatorial_vs_exact(self, fixture_name, request):
        problem = request.getfixturevalue(fixture_name)
        combinatorial = evaluate_yield(problem, max_defects=4)
        enumerated = exact_yield(problem, max_defects=4)
        assert combinatorial.yield_estimate == pytest.approx(
            enumerated.yield_estimate, rel=1e-10
        )

    def test_combinatorial_vs_direct_mdd(self, fixture_name, request):
        problem = request.getfixturevalue(fixture_name)
        combinatorial = evaluate_yield(problem, max_defects=3)
        direct = direct_route_yield(problem, max_defects=3)
        assert combinatorial.yield_estimate == pytest.approx(direct, rel=1e-10)

    def test_combinatorial_vs_montecarlo(self, fixture_name, request):
        problem = request.getfixturevalue(fixture_name)
        combinatorial = evaluate_yield(problem, epsilon=1e-8)
        simulated = estimate_yield_montecarlo(problem, 30000, seed=123)
        tolerance = 5 * simulated.standard_error + 1e-6
        assert abs(combinatorial.yield_estimate - simulated.yield_estimate) < tolerance


class TestOrderingInvariance:
    def test_yield_is_ordering_invariant_even_with_heuristics(self, bridge_problem):
        results = []
        for mv, bits in (("wv", "ml"), ("vrw", "lm"), ("w", "ml"), ("h", "h"), ("t", "t")):
            analyzer = YieldAnalyzer(OrderingSpec(mv, bits))
            results.append(analyzer.evaluate(bridge_problem, max_defects=3).yield_estimate)
        for value in results[1:]:
            assert value == pytest.approx(results[0], rel=1e-12)

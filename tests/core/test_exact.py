"""Unit tests for the exact enumeration baseline."""

import pytest

from repro.core.exact import exact_conditional_yield, exact_yield
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.faulttree import FaultTreeBuilder


def single_component_problem(p_hit=0.5):
    ft = FaultTreeBuilder("single")
    ft.set_top(ft.failed("X"))
    model = ComponentDefectModel({"X": p_hit, "PAD": p_hit})
    return YieldProblem(ft.build(), model, PoissonDefectDistribution(1.0), name="single")


class TestConditionalYield:
    def test_zero_defects(self, bridge_problem):
        assert exact_conditional_yield(bridge_problem, 0) == 1.0

    def test_single_component_analytic(self):
        # P'_X = 0.5: with k defects the system survives iff none hits X
        problem = single_component_problem()
        for k in range(0, 6):
            assert exact_conditional_yield(problem, k) == pytest.approx(0.5 ** k)

    def test_monotone_in_defect_count(self, bridge_problem):
        values = [exact_conditional_yield(bridge_problem, k) for k in range(5)]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:]))

    def test_negative_defects_rejected(self, bridge_problem):
        with pytest.raises(ValueError):
            exact_conditional_yield(bridge_problem, -1)


class TestExactYield:
    def test_fields(self, bridge_problem):
        result = exact_yield(bridge_problem, max_defects=3)
        assert result.truncation == 3
        assert len(result.conditional_yields) == 4
        assert 0.0 <= result.yield_estimate <= 1.0
        assert result.summary().startswith("bridge")

    def test_epsilon_driven_truncation(self, bridge_problem):
        result = exact_yield(bridge_problem, epsilon=1e-2)
        assert result.error_bound <= 1e-2

    def test_weighted_sum_identity(self, bridge_problem):
        result = exact_yield(bridge_problem, max_defects=3)
        lethal = bridge_problem.lethal_defect_distribution()
        manual = sum(
            lethal.pmf(k) * y for k, y in enumerate(result.conditional_yields)
        )
        assert result.yield_estimate == pytest.approx(manual, rel=1e-12)

"""Unit tests for the result record classes."""

import pytest

from repro.core.results import ExactResult, MonteCarloResult, StageTimings, YieldResult


class TestStageTimings:
    def test_total(self):
        timings = StageTimings(ordering=0.1, robdd_build=0.2, mdd_conversion=0.3, probability=0.4)
        assert timings.total == pytest.approx(1.0)

    def test_defaults(self):
        assert StageTimings().total == 0.0


class TestYieldResult:
    def make(self, estimate=0.9, bound=0.05):
        return YieldResult(
            name="demo",
            yield_estimate=estimate,
            error_bound=bound,
            truncation=4,
            probability_not_functioning=1.0 - estimate,
            coded_robdd_size=100,
            robdd_peak=150,
            romdd_size=10,
            ordering=("w", "ml"),
            variable_order=("w", "v1"),
            timings=StageTimings(0.1, 0.2, 0.0, 0.0),
        )

    def test_upper_bound_is_clamped(self):
        assert self.make(0.98, 0.05).yield_upper_bound == 1.0
        assert self.make(0.9, 0.05).yield_upper_bound == pytest.approx(0.95)

    def test_summary_mentions_key_figures(self):
        text = self.make().summary()
        assert "demo" in text
        assert "M=4" in text

    def test_extra_defaults_to_empty(self):
        assert self.make().extra == {}


class TestOtherResults:
    def test_montecarlo_summary(self):
        result = MonteCarloResult(
            name="mc",
            yield_estimate=0.8,
            standard_error=0.01,
            samples=1000,
            confidence=0.95,
            confidence_interval=(0.78, 0.82),
            elapsed_seconds=0.5,
        )
        assert "mc" in result.summary()
        assert "1000 samples" in result.summary()

    def test_exact_summary(self):
        result = ExactResult(
            name="exact",
            yield_estimate=0.7,
            error_bound=0.01,
            truncation=3,
            conditional_yields=(1.0, 0.9, 0.8, 0.7),
        )
        assert "exact" in result.summary()
        assert "M=3" in result.summary()

"""Unit tests for the end-to-end combinatorial yield method."""

import pytest

from repro import YieldAnalyzer, evaluate_yield
from repro.bdd import ResourceLimitExceeded
from repro.core.exact import exact_yield
from repro.ordering import OrderingSpec


class TestEvaluate:
    def test_result_fields_are_consistent(self, bridge_problem):
        result = evaluate_yield(bridge_problem, epsilon=1e-3, track_peak=True)
        assert 0.0 <= result.yield_estimate <= 1.0
        assert result.probability_not_functioning == pytest.approx(
            1.0 - result.yield_estimate
        )
        assert result.error_bound >= 0.0
        assert result.yield_upper_bound <= 1.0
        assert result.coded_robdd_size > 0
        assert result.romdd_size > 0
        assert result.robdd_peak >= result.coded_robdd_size
        assert result.truncation >= 1
        assert result.timings.total > 0.0
        assert result.ordering == ("w", "ml")
        assert len(result.variable_order) == result.truncation + 1
        assert "comp" not in result.name  # uses the problem's name
        assert result.summary().startswith("bridge")

    def test_error_budget_is_met(self, bridge_problem):
        for epsilon in (1e-2, 1e-3, 1e-4):
            result = evaluate_yield(bridge_problem, epsilon=epsilon)
            assert result.error_bound <= epsilon

    def test_explicit_truncation_overrides_epsilon(self, bridge_problem):
        result = evaluate_yield(bridge_problem, max_defects=2)
        assert result.truncation == 2

    def test_truncation_monotonicity(self, bridge_problem):
        # Y_M is non-decreasing in M and error bound non-increasing
        estimates = []
        bounds = []
        for max_defects in range(0, 6):
            result = evaluate_yield(bridge_problem, max_defects=max_defects)
            estimates.append(result.yield_estimate)
            bounds.append(result.error_bound)
        assert all(a <= b + 1e-12 for a, b in zip(estimates, estimates[1:]))
        assert all(a >= b - 1e-12 for a, b in zip(bounds, bounds[1:]))

    def test_true_yield_within_reported_interval(self, bridge_problem):
        # exact value (large truncation) must lie within [estimate, estimate+bound]
        reference = exact_yield(bridge_problem, max_defects=10).yield_estimate
        result = evaluate_yield(bridge_problem, max_defects=3)
        assert result.yield_estimate <= reference + 1e-12
        assert reference <= result.yield_upper_bound + 1e-12

    def test_matches_exact_enumeration(self, paper_example_problem, tmr_problem):
        for problem in (paper_example_problem, tmr_problem):
            combinatorial = evaluate_yield(problem, max_defects=4)
            enumerated = exact_yield(problem, max_defects=4)
            assert combinatorial.yield_estimate == pytest.approx(
                enumerated.yield_estimate, rel=1e-10
            )

    def test_all_orderings_agree_on_the_yield(self, bridge_problem):
        reference = None
        for mv in ("wv", "wvr", "vw", "vrw", "t", "w", "h"):
            analyzer = YieldAnalyzer(OrderingSpec(mv, "ml"), epsilon=1e-2)
            result = analyzer.evaluate(bridge_problem, max_defects=3)
            if reference is None:
                reference = result.yield_estimate
            else:
                assert result.yield_estimate == pytest.approx(reference, rel=1e-12)

    def test_bit_orderings_agree_on_the_yield(self, bridge_problem):
        reference = None
        for bits in ("ml", "lm", "w"):
            spec = OrderingSpec("w", bits)
            result = YieldAnalyzer(spec).evaluate(bridge_problem, max_defects=3)
            if reference is None:
                reference = result.yield_estimate
            else:
                assert result.yield_estimate == pytest.approx(reference, rel=1e-12)


class TestDiagramSizes:
    def test_sizes_positive_and_robdd_larger(self, bridge_problem):
        analyzer = YieldAnalyzer(OrderingSpec("w", "ml"))
        robdd, romdd = analyzer.diagram_sizes(bridge_problem, max_defects=3)
        assert robdd > 0 and romdd > 0
        assert robdd >= romdd  # coded ROBDD is larger than the ROMDD

    def test_epsilon_driven_sizes(self, bridge_problem):
        analyzer = YieldAnalyzer(OrderingSpec("wv", "ml"), epsilon=1e-2)
        robdd, romdd = analyzer.diagram_sizes(bridge_problem)
        assert robdd > 0 and romdd > 0

    def test_grouped_order_for(self, bridge_problem):
        analyzer = YieldAnalyzer(OrderingSpec("wv", "ml"))
        order = analyzer.grouped_order_for(bridge_problem, max_defects=2)
        assert order.variable_names == ("w", "v1", "v2")


class TestResourceLimit:
    def test_node_limit_propagates(self, bridge_problem):
        analyzer = YieldAnalyzer(OrderingSpec("w", "ml"), node_limit=16)
        with pytest.raises(ResourceLimitExceeded):
            analyzer.evaluate(bridge_problem, max_defects=4)

"""Tests for the operational-reliability extension."""

import itertools
import math

import pytest

from repro import evaluate_yield
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.faulttree import FaultTreeBuilder
from repro.ordering import OrderingSpec
from repro.reliability import (
    ExponentialFieldModel,
    ReliabilityAnalyzer,
    ReliabilityFaultTree,
    TabularFieldModel,
    estimate_reliability_montecarlo,
    evaluate_reliability,
)


@pytest.fixture
def duplex_problem():
    ft = FaultTreeBuilder("duplex")
    ft.set_top(ft.and_(ft.failed("A"), ft.failed("B")))
    model = ComponentDefectModel({"A": 0.25, "B": 0.25})
    dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=4.0)
    return YieldProblem(ft.build(), model, dist, name="duplex")


@pytest.fixture
def tmr_problem():
    ft = FaultTreeBuilder("tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.6)
    dist = NegativeBinomialDefectDistribution(mean=1.0, clustering=4.0)
    return YieldProblem(ft.build(), model, dist, name="tmr")


class TestReliabilityFaultTree:
    def test_variables(self, duplex_problem):
        g = ReliabilityFaultTree(duplex_problem.fault_tree, duplex_problem.component_names, 2)
        names = [v.name for v in g.variables]
        assert names == ["w", "v1", "v2", "y[A]", "y[B]"]
        assert g.field_variable("A").values == (0, 1)

    def test_semantics_mixed_failures(self, duplex_problem):
        g = ReliabilityFaultTree(duplex_problem.fault_tree, duplex_problem.component_names, 2)
        # no defect, no field failure: operational
        assert g.evaluate(0, [], []) is False
        # defect kills A, field kills B: duplex fails
        assert g.evaluate(1, [1], ["B"]) is True
        # defect kills A only: still operational
        assert g.evaluate(1, [1], []) is False
        # field kills both: fails even without defects
        assert g.evaluate(0, [], ["A", "B"]) is True
        # overflow is pessimistic
        assert g.evaluate(3, [1, 1, 1], []) is True

    def test_unknown_field_component(self, duplex_problem):
        g = ReliabilityFaultTree(duplex_problem.fault_tree, duplex_problem.component_names, 1)
        with pytest.raises(Exception):
            g.field_variable("Z")


class TestAnalyzer:
    def test_zero_mission_time_recovers_the_yield(self, duplex_problem):
        field = ExponentialFieldModel({}, default_rate=0.05)
        result = evaluate_reliability(duplex_problem, field, 0.0, max_defects=3)
        plain_yield = evaluate_yield(duplex_problem, max_defects=3)
        assert result.survival_probability == pytest.approx(
            plain_yield.yield_estimate, rel=1e-10
        )
        assert result.conditional_reliability == pytest.approx(1.0, rel=1e-9)

    def test_survival_decreases_with_mission_time(self, tmr_problem):
        field = ExponentialFieldModel({}, default_rate=0.02)
        analyzer = ReliabilityAnalyzer(OrderingSpec("w", "ml"))
        curve = analyzer.mission_sweep(tmr_problem, field, [0.0, 1.0, 5.0, 20.0], max_defects=2)
        survivals = [r.survival_probability for r in curve]
        assert survivals == sorted(survivals, reverse=True)
        conditionals = [r.conditional_reliability for r in curve]
        assert conditionals == sorted(conditionals, reverse=True)
        assert all(0.0 <= value <= 1.0 for value in survivals)

    def test_matches_exact_enumeration_on_duplex(self, duplex_problem):
        # closed form: duplex with independent defect/field failures
        field = TabularFieldModel({"A": 0.3, "B": 0.1})
        result = evaluate_reliability(duplex_problem, field, 1.0, max_defects=4)

        lethal = duplex_problem.lethal_defect_distribution()
        p_a, p_b = duplex_problem.lethal_component_probabilities()
        expected = 0.0
        for k in range(0, 5):
            q_k = lethal.pmf(k)
            # P(A not hit by any of k defects) etc.; defects hit A or B only
            survive = 0.0
            for hits in itertools.product((0, 1), repeat=k):
                prob = 1.0
                a_hit = b_hit = False
                for h in hits:
                    if h == 0:
                        prob *= p_a
                        a_hit = True
                    else:
                        prob *= p_b
                        b_hit = True
                a_failed = 1.0 if a_hit else 0.3
                b_failed = 1.0 if b_hit else 0.1
                # duplex works unless both failed
                survive += prob * (1.0 - a_failed * b_failed)
            expected += q_k * survive
        assert result.survival_probability == pytest.approx(expected, rel=1e-9)

    def test_matches_montecarlo(self, tmr_problem):
        field = ExponentialFieldModel({}, default_rate=0.05)
        combinatorial = evaluate_reliability(tmr_problem, field, 2.0, epsilon=1e-6)
        simulated = estimate_reliability_montecarlo(tmr_problem, field, 2.0, 20_000, seed=5)
        tolerance = 5 * simulated.standard_error + 1e-5
        assert abs(combinatorial.survival_probability - simulated.yield_estimate) < tolerance

    def test_result_fields_and_summary(self, duplex_problem):
        field = ExponentialFieldModel({"A": 0.1, "B": 0.1})
        result = evaluate_reliability(duplex_problem, field, 3.0, max_defects=2)
        assert 0.0 <= result.survival_probability <= result.yield_estimate + 1e-12
        assert result.coded_robdd_size > 0 and result.romdd_size > 0
        assert result.truncation == 2
        assert "duplex" in result.summary()
        assert result.extra["field_variables"] == 2.0

    def test_heuristic_ordering_also_works(self, tmr_problem):
        field = ExponentialFieldModel({}, default_rate=0.05)
        reference = evaluate_reliability(
            tmr_problem, field, 1.0, max_defects=2, ordering=OrderingSpec("wv", "ml")
        )
        heuristic = evaluate_reliability(
            tmr_problem, field, 1.0, max_defects=2, ordering=OrderingSpec("w", "ml")
        )
        assert heuristic.survival_probability == pytest.approx(
            reference.survival_probability, rel=1e-10
        )

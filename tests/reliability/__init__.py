"""Test package."""

"""Unit tests for the field-failure models."""

import math

import pytest

from repro.distributions import DistributionError
from repro.reliability import (
    ExponentialFieldModel,
    TabularFieldModel,
    WeibullFieldModel,
)


class TestExponential:
    def test_unreliability_formula(self):
        model = ExponentialFieldModel({"A": 0.01, "B": 0.1})
        assert model.unreliability("A", 10.0) == pytest.approx(1 - math.exp(-0.1))
        assert model.unreliability("B", 0.0) == 0.0

    def test_default_rate(self):
        model = ExponentialFieldModel({"A": 0.01}, default_rate=0.5)
        assert model.unreliability("Z", 1.0) == pytest.approx(1 - math.exp(-0.5))

    def test_missing_component_without_default(self):
        model = ExponentialFieldModel({"A": 0.01})
        with pytest.raises(DistributionError):
            model.unreliability("Z", 1.0)

    def test_negative_rate_and_time_rejected(self):
        with pytest.raises(DistributionError):
            ExponentialFieldModel({"A": -0.1})
        model = ExponentialFieldModel({"A": 0.1})
        with pytest.raises(DistributionError):
            model.unreliability("A", -1.0)

    def test_unreliabilities_bulk(self):
        model = ExponentialFieldModel({"A": 0.1, "B": 0.2})
        out = model.unreliabilities(["A", "B"], 2.0)
        assert set(out) == {"A", "B"}
        assert out["B"] > out["A"]


class TestWeibull:
    def test_shape_one_is_exponential(self):
        weibull = WeibullFieldModel({"A": 10.0}, shape=1.0)
        exponential = ExponentialFieldModel({"A": 0.1})
        for t in (0.0, 1.0, 5.0, 20.0):
            assert weibull.unreliability("A", t) == pytest.approx(
                exponential.unreliability("A", t)
            )

    def test_unreliability_monotone_in_time(self):
        model = WeibullFieldModel({"A": 5.0}, shape=2.0)
        values = [model.unreliability("A", t) for t in (0.0, 1.0, 2.0, 5.0, 10.0)]
        assert values == sorted(values)
        assert values[0] == 0.0

    def test_default_scale(self):
        model = WeibullFieldModel({}, shape=1.5, default_scale=3.0)
        assert 0.0 < model.unreliability("anything", 1.0) < 1.0

    def test_invalid_parameters(self):
        with pytest.raises(DistributionError):
            WeibullFieldModel({"A": 0.0})
        with pytest.raises(DistributionError):
            WeibullFieldModel({"A": 1.0}, shape=0.0)


class TestTabular:
    def test_lookup_and_default(self):
        model = TabularFieldModel({"A": 0.2}, default=0.05)
        assert model.unreliability("A", 123.0) == 0.2
        assert model.unreliability("B", 0.0) == 0.05

    def test_missing_without_default(self):
        with pytest.raises(DistributionError):
            TabularFieldModel({"A": 0.2}).unreliability("B", 1.0)

    def test_invalid_probability(self):
        with pytest.raises(DistributionError):
            TabularFieldModel({"A": 1.2})

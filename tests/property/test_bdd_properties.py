"""Property-based tests of the ROBDD engine (hypothesis).

Random boolean expressions are generated as nested tuples, built both as a
BDD and as a direct Python evaluation; canonicity and boolean algebra
properties must hold for every sample.
"""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import BDDManager, FALSE, TRUE

VARIABLES = ["a", "b", "c", "d", "e"]


def expressions(max_depth=4):
    leaves = st.sampled_from(VARIABLES + ["0", "1"])

    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("xor"), children, children),
        )

    return st.recursive(leaves, extend, max_leaves=12)


def build_bdd(manager, expr):
    if isinstance(expr, str):
        if expr == "0":
            return FALSE
        if expr == "1":
            return TRUE
        return manager.var(expr)
    op = expr[0]
    if op == "not":
        return manager.not_(build_bdd(manager, expr[1]))
    left = build_bdd(manager, expr[1])
    right = build_bdd(manager, expr[2])
    if op == "and":
        return manager.and_(left, right)
    if op == "or":
        return manager.or_(left, right)
    return manager.xor_(left, right)


def evaluate(expr, assignment):
    if isinstance(expr, str):
        if expr == "0":
            return False
        if expr == "1":
            return True
        return assignment[expr]
    op = expr[0]
    if op == "not":
        return not evaluate(expr[1], assignment)
    left = evaluate(expr[1], assignment)
    right = evaluate(expr[2], assignment)
    if op == "and":
        return left and right
    if op == "or":
        return left or right
    return left != right


@settings(max_examples=120, deadline=None)
@given(expressions())
def test_bdd_matches_direct_evaluation(expr):
    manager = BDDManager(VARIABLES)
    node = build_bdd(manager, expr)
    for values in itertools.product((False, True), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, values))
        assert manager.evaluate(node, assignment) == evaluate(expr, assignment)


@settings(max_examples=100, deadline=None)
@given(expressions(), expressions())
def test_canonicity_equal_functions_get_equal_handles(expr_a, expr_b):
    manager = BDDManager(VARIABLES)
    node_a = build_bdd(manager, expr_a)
    node_b = build_bdd(manager, expr_b)
    equal_semantics = True
    for values in itertools.product((False, True), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, values))
        if manager.evaluate(node_a, assignment) != manager.evaluate(node_b, assignment):
            equal_semantics = False
            break
    assert (node_a == node_b) == equal_semantics


@settings(max_examples=100, deadline=None)
@given(expressions())
def test_complement_is_involutive_and_disjoint(expr):
    manager = BDDManager(VARIABLES)
    node = build_bdd(manager, expr)
    complement = manager.not_(node)
    assert manager.not_(complement) == node
    assert manager.and_(node, complement) == FALSE
    assert manager.or_(node, complement) == TRUE


@settings(max_examples=100, deadline=None)
@given(expressions())
def test_sat_count_matches_truth_table(expr):
    manager = BDDManager(VARIABLES)
    node = build_bdd(manager, expr)
    expected = 0
    for values in itertools.product((False, True), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, values))
        if manager.evaluate(node, assignment):
            expected += 1
    assert manager.sat_count(node) == expected


@settings(max_examples=80, deadline=None)
@given(expressions(), st.sampled_from(VARIABLES), st.booleans())
def test_restrict_is_cofactor(expr, name, value):
    manager = BDDManager(VARIABLES)
    node = build_bdd(manager, expr)
    restricted = manager.restrict(node, name, value)
    assert name not in manager.support(restricted)
    for values in itertools.product((False, True), repeat=len(VARIABLES)):
        assignment = dict(zip(VARIABLES, values))
        forced = dict(assignment)
        forced[name] = value
        assert manager.evaluate(restricted, assignment) == manager.evaluate(node, forced)

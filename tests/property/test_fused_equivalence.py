"""Property tests: native IS the fused kernel IS the layered kernel.

The fused CSR schedule (blocked workspace accumulation plus model-uniform
level collapse) and the native compiled backend behind it must not change
a single bit of any result: for every diagram shape the engine produces —
pipeline ROMDDs compiled through the full method, sifted multi-valued
layouts, chains far deeper than the recursion limit, degenerate 0/1
probability columns — the fused and native kernels' ``evaluate`` *and*
``backward`` outputs are compared ``==`` (never approx) against the
layered numpy kernel, the pure-Python kernel and the original recursive
traversal.  On hosts without a working C compiler ``kernel="native"``
degrades to the fused kernel, so the native leg still runs (and still
compares ``==``) — it just exercises the fallback instead.  The store
round-trip leg additionally pins format v2 (and the v1 compatibility
reader) to the same bit-for-bit bar.
"""

import json
import os

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import (
    ComponentDefectModel,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)
from repro.engine import native as native_backend
from repro.engine.batch import HAVE_NUMPY, LinearizedDiagram
from repro.engine.service import structure_key
from repro.engine.store import StructureStore, digest_of
from repro.faulttree import FaultTreeBuilder
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd.manager import FALSE, TRUE, MDDManager
from repro.mdd.probability import (
    VariableDistributions,
    level_columns_for,
    probability_of_one_reference,
)
from repro.ordering import OrderingSpec

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the fused kernel requires numpy"
)

COMPONENTS = ["C0", "C1", "C2", "C3", "C4"]


def structure_expressions():
    leaves = st.sampled_from(COMPONENTS)

    def extend(children):
        return st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("k2"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=7)


def build_problem(expr, weights, mean, clustering):
    ft = FaultTreeBuilder("random")

    def build(node):
        if isinstance(node, str):
            return ft.failed(node)
        if node[0] == "and":
            return ft.and_(build(node[1]), build(node[2]))
        if node[0] == "or":
            return ft.or_(build(node[1]), build(node[2]))
        return ft.at_least(2, [build(node[1]), build(node[2]), build(node[3])])

    ft.set_top(build(expr))
    circuit = ft.build()
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=mean, clustering=clustering)
    return YieldProblem(circuit, model, distribution, name="random")


def model_columns(compiled, problems):
    """Tuple-row columns consumable by every kernel."""
    lethal = [p.lethal_defect_distribution() for p in problems]
    distributions = [
        compiled.gfunction.variable_distributions(
            dist, p.lethal_component_probabilities()
        )
        for dist, p in zip(lethal, problems)
    ]
    linearized = compiled.linearized()
    validated = [
        VariableDistributions(compiled.mdd_manager, d) for d in distributions
    ]
    return linearized, level_columns_for(linearized, validated), distributions


def assert_kernels_agree(linearized, columns, num_models, expected=None):
    """Evaluate + backward on all four kernels, compared ``==``.

    Probabilities are bit-for-bit identical across every kernel (and the
    recursive reference, when given).  Gradients are bit-for-bit identical
    between the native, fused and layered kernels — the guarantee the
    compiled backend must uphold; the pure-Python backward accumulates
    shared-child adjoints in node order rather than child-position order,
    so its gradients agree to the last ulp only, as before.  The native
    leg runs even where the library cannot load: it then exercises the
    documented fused fallback, whose results are the fused results.
    """
    results = {}
    for kernel in ("python", "layered", "fused", "native"):
        probabilities = linearized.evaluate(columns, num_models, kernel=kernel)
        grad_probabilities, gradients = linearized.backward(
            columns, num_models, kernel=kernel
        )
        assert grad_probabilities == probabilities  # forward == backward forward
        results[kernel] = (probabilities, gradients)
    python = results["python"]
    assert results["layered"][0] == python[0]  # bit-for-bit, not approx
    assert results["fused"] == results["layered"]  # bit-for-bit, not approx
    assert results["native"] == results["fused"]  # bit-for-bit, not approx
    for level, python_rows in python[1].items():
        layered_rows = results["layered"][1][level]
        for python_row, layered_row in zip(python_rows, layered_rows):
            for a, b in zip(python_row, layered_row):
                assert b == pytest.approx(a, rel=1e-12, abs=1e-300)
    if expected is not None:
        assert python[0] == expected
    return results["fused"]


@settings(max_examples=20, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.lists(st.floats(min_value=0.2, max_value=3.0), min_size=2, max_size=5),
    st.floats(min_value=0.5, max_value=8.0),
    st.integers(min_value=1, max_value=4),
)
def test_fused_matches_reference_on_pipeline_romdds(
    expr, weights, means, clustering, truncation
):
    problems = [build_problem(expr, weights, mean, clustering) for mean in means]
    compiled = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
        problems[0], max_defects=truncation
    )
    linearized, columns, distributions = model_columns(compiled, problems)
    expected = [
        probability_of_one_reference(compiled.mdd_manager, compiled.mdd_root, d)
        for d in distributions
    ]
    assert_kernels_agree(linearized, columns, len(problems), expected)


@settings(max_examples=10, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.floats(min_value=0.2, max_value=3.0),
    st.integers(min_value=1, max_value=3),
)
def test_fused_matches_reference_on_sifted_layouts(expr, weights, mean, truncation):
    """Sifting permutes the multi-valued layout; the kernels must not care."""
    problem = build_problem(expr, weights, mean, 4.0)
    compiled = YieldAnalyzer(
        OrderingSpec("w", "ml", sift_converge=True)
    ).compile(problem, max_defects=truncation)
    # a small density batch over the sifted structure: uniform location
    # columns, so the fused kernel's model collapse engages
    problems = [
        build_problem(expr, weights, m, 4.0) for m in (mean, mean + 0.3, mean + 0.7)
    ]
    linearized, columns, distributions = model_columns(compiled, problems)
    expected = [
        probability_of_one_reference(compiled.mdd_manager, compiled.mdd_root, d)
        for d in distributions
    ]
    fused_before = linearized.fused_passes
    native_before = linearized.native_passes
    collapsed_before = linearized.collapsed_layers
    assert_kernels_agree(linearized, columns, len(problems), expected)
    # evaluate + backward per kernel; the native legs either ran natively
    # or (no compiler on this host) degraded into two more fused passes
    native_delta = linearized.native_passes - native_before
    fused_delta = linearized.fused_passes - fused_before
    if native_backend.available():
        assert native_delta == 2 and fused_delta == 2
    else:
        assert native_delta == 0 and fused_delta == 4
    # the deepest layer's children are terminals, so when its columns are
    # model-uniform (every location level of this density-style batch) the
    # fused passes must have collapsed it to a width-1 evaluation
    deepest = tuple(zip(*columns[linearized.levels[0]]))
    if all(model_column == deepest[0] for model_column in deepest):
        assert linearized.collapsed_layers > collapsed_before


class TestDeepChains:
    DEPTH = 1500

    @pytest.fixture(scope="class")
    def chain(self):
        variables = [
            MultiValuedVariable("x%d" % i, range(2)) for i in range(self.DEPTH)
        ]
        manager = MDDManager(variables)
        node = TRUE
        for level in reversed(range(self.DEPTH)):
            node = manager.mk(level, (FALSE, node))
        return manager, node

    def test_fused_kernel_on_1500_deep_chain(self, chain):
        manager, root = chain
        linearized = LinearizedDiagram.from_mdd(manager, root)
        models = [0.999, 0.9995, 0.5, 1.0]
        columns = {
            level: tuple(
                zip(*[[1.0 - p, p] for p in models])
            )
            for level in range(self.DEPTH)
        }
        probabilities = assert_kernels_agree(linearized, columns, len(models))[0]
        assert probabilities[0] == pytest.approx(0.999 ** self.DEPTH, rel=1e-9)
        assert probabilities[3] == 1.0  # exact: every level contributes 1.0

    def test_chain_through_store_v2_round_trip(self, chain, tmp_path):
        """Fused arrays of a deep chain survive the v2 store bit-for-bit."""
        manager, root = chain
        linearized = LinearizedDiagram.from_mdd(manager, root)
        schedule = linearized.fused()
        restored = LinearizedDiagram.from_fused_arrays(
            linearized.root_slot,
            linearized.num_slots,
            schedule.kids,
            schedule.seg,
            schedule.slot_levels,
            schedule.bounds,
        )
        assert restored.layers == linearized.layers
        columns = {
            level: ((0.001, 0.3), (0.999, 0.7)) for level in range(self.DEPTH)
        }
        assert restored.evaluate(columns, 2, kernel="fused") == linearized.evaluate(
            columns, 2, kernel="python"
        )


class TestDegenerateColumns:
    """Exact 0/1 probabilities must flow through every kernel unchanged."""

    def build(self):
        ft = FaultTreeBuilder("degenerate")
        ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
        model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
        # extreme Poisson means underflow the pmf to exact 0/1 columns
        problems = [
            YieldProblem(ft.build(), model, PoissonDefectDistribution(mean=mean))
            for mean in (1e5, 1e-18, 1.0)
        ]
        return problems

    def test_kernels_agree_on_underflowed_columns(self):
        problems = self.build()
        compiled = YieldAnalyzer().compile(problems[0], max_defects=3)
        linearized, columns, distributions = model_columns(compiled, problems)
        expected = [
            probability_of_one_reference(compiled.mdd_manager, compiled.mdd_root, d)
            for d in distributions
        ]
        probabilities = assert_kernels_agree(
            linearized, columns, len(problems), expected
        )[0]
        assert probabilities[0] == 1.0  # certain failure at mean 1e5


class TestStoreMigration:
    """v1 entries stay readable; v2 round-trips are bit-for-bit."""

    def compile_one(self):
        ft = FaultTreeBuilder("migrate")
        ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
        tree = ft.build()
        model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)

        def make(mean):
            return YieldProblem(
                tree, model, PoissonDefectDistribution(mean=mean), name="migrate"
            )

        problem = make(1.0)
        ordering = OrderingSpec("w", "ml")
        compiled = YieldAnalyzer(ordering).compile_for_truncation(problem, 3)
        skey = structure_key(problem, 3, ordering)
        return make, compiled, skey

    def write_v1_entry(self, store, skey, compiled):
        """Write an entry in the legacy v1 layout (npz layer arrays)."""
        import numpy as np

        digest = digest_of(skey)
        store.save(skey, compiled)  # v2 files + correct metadata to start from
        json_path = store._json_path(digest)
        with open(json_path) as handle:
            meta = json.load(handle)
        linearized = compiled.linearized()
        arrays = {}
        for index, (_, slots, kid_rows) in enumerate(linearized.layers):
            arrays["slots_%d" % index] = np.asarray(slots, dtype=np.int64)
            arrays["kids_%d" % index] = np.asarray(kid_rows, dtype=np.int64)
        np.savez(store._sidecar(digest, ".npz"), **arrays)
        for suffix in (".kids.npy", ".seg.npy", ".levels.npy", ".bounds.npy"):
            os.unlink(store._sidecar(digest, suffix))
        meta["version"] = 1
        meta["linearized"]["encoding"] = "npz"
        with open(json_path, "w") as handle:
            json.dump(meta, handle)

    def test_v1_entry_loads_and_matches_v2(self, tmp_path):
        make, compiled, skey = self.compile_one()
        problems = [make(m) for m in (0.5, 1.0, 1.5, 2.0)]
        fresh = [r.yield_estimate for r in compiled.evaluate_many(problems)]

        v1_store = StructureStore(str(tmp_path / "v1"))
        self.write_v1_entry(v1_store, skey, compiled)
        restored_v1, _ = v1_store.load(skey, mmap=True)
        assert restored_v1.from_store and not restored_v1.store_mmapped
        v1_rows = [r.yield_estimate for r in restored_v1.evaluate_many(problems)]
        assert v1_rows == fresh  # bit-for-bit

        v2_store = StructureStore(str(tmp_path / "v2"))
        v2_store.save(skey, compiled)
        restored_v2, _ = v2_store.load(skey, mmap=True)
        assert restored_v2.from_store and restored_v2.store_mmapped
        v2_rows = [r.yield_estimate for r in restored_v2.evaluate_many(problems)]
        assert v2_rows == fresh  # bit-for-bit
        assert restored_v2.linearized().layers == compiled.linearized().layers

    def test_v1_entry_migrates_to_v2_on_save(self, tmp_path):
        """Re-saving over a v1 entry leaves a clean v2 entry, nothing stale."""
        make, compiled, skey = self.compile_one()
        store = StructureStore(str(tmp_path / "store"))
        self.write_v1_entry(store, skey, compiled)
        digest = digest_of(skey)
        assert os.path.exists(store._sidecar(digest, ".npz"))

        store.save(skey, compiled)
        assert not os.path.exists(store._sidecar(digest, ".npz"))
        for suffix in (".kids.npy", ".seg.npy", ".levels.npy", ".bounds.npy"):
            assert os.path.exists(store._sidecar(digest, suffix))
        restored, _ = store.load(skey, mmap=True)
        problems = [make(m) for m in (0.7, 1.3)]
        assert [r.yield_estimate for r in restored.evaluate_many(problems)] == [
            r.yield_estimate for r in compiled.evaluate_many(problems)
        ]

    def test_truncated_v2_array_is_a_miss(self, tmp_path):
        make, compiled, skey = self.compile_one()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        digest = digest_of(skey)
        bounds_path = store._sidecar(digest, ".bounds.npy")
        with open(bounds_path, "r+b") as handle:
            handle.truncate(16)
        assert store.load(skey, mmap=True) is None

    def test_bit_rotted_kids_array_is_a_miss(self, tmp_path):
        """Out-of-range children must never load as a silently-wrong hit."""
        import numpy as np

        make, compiled, skey = self.compile_one()
        store = StructureStore(str(tmp_path / "store"))
        digest = digest_of(skey)
        kids_path = store._sidecar(digest, ".kids.npy")
        for rotten in (-1, 10 ** 6):
            store.save(skey, compiled)
            kids = np.load(kids_path)
            kids[len(kids) // 2] = rotten
            np.save(kids_path, kids)
            assert store.load(skey, mmap=True) is None

"""Property tests: the batched probability kernel is the recursive traversal.

Random fault trees, random truncation levels and random defect models are
compiled through the full pipeline; the batched evaluation (pure-Python and
numpy paths) must match the original recursive traversal **bit for bit** —
both kernels accumulate each node's children in the same IEEE order, so even
the floating-point rounding is identical.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.engine.batch import HAVE_NUMPY
from repro.faulttree import FaultTreeBuilder
from repro.mdd.probability import probability_of_many, probability_of_one_reference
from repro.ordering import OrderingSpec

COMPONENTS = ["C0", "C1", "C2", "C3", "C4"]


def structure_expressions():
    leaves = st.sampled_from(COMPONENTS)

    def extend(children):
        return st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("k2"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=7)


def build_problem(expr, weights, mean, clustering):
    ft = FaultTreeBuilder("random")

    def build(node):
        if isinstance(node, str):
            return ft.failed(node)
        if node[0] == "and":
            return ft.and_(build(node[1]), build(node[2]))
        if node[0] == "or":
            return ft.or_(build(node[1]), build(node[2]))
        return ft.at_least(2, [build(node[1]), build(node[2]), build(node[3])])

    ft.set_top(build(expr))
    circuit = ft.build()
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=mean, clustering=clustering)
    return YieldProblem(circuit, model, distribution, name="random")


def model_distributions(compiled, problem):
    lethal = problem.lethal_defect_distribution()
    return compiled.gfunction.variable_distributions(
        lethal, problem.lethal_component_probabilities()
    )


@settings(max_examples=20, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.lists(st.floats(min_value=0.2, max_value=3.0), min_size=2, max_size=5),
    st.floats(min_value=0.5, max_value=8.0),
    st.integers(min_value=1, max_value=4),
)
def test_batched_kernel_matches_recursive_traversal(
    expr, weights, means, clustering, truncation
):
    problems = [build_problem(expr, weights, mean, clustering) for mean in means]
    compiled = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
        problems[0], max_defects=truncation
    )
    distributions = [model_distributions(compiled, p) for p in problems]
    expected = [
        probability_of_one_reference(compiled.mdd_manager, compiled.mdd_root, d)
        for d in distributions
    ]

    python_path = probability_of_many(
        compiled.mdd_manager, compiled.mdd_root, distributions, use_numpy=False
    )
    assert python_path == expected  # bit-for-bit, not approx

    if HAVE_NUMPY:
        numpy_path = probability_of_many(
            compiled.mdd_manager, compiled.mdd_root, distributions, use_numpy=True
        )
        assert numpy_path == expected  # bit-for-bit, not approx

    batched_results = compiled.evaluate_many(problems)
    for result, probability in zip(batched_results, expected):
        assert result.yield_estimate == 1.0 - probability


@settings(max_examples=10, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.floats(min_value=0.2, max_value=3.0),
    st.integers(min_value=1, max_value=3),
)
def test_sift_converge_preserves_the_function(expr, weights, mean, truncation):
    problem = build_problem(expr, weights, mean, 4.0)
    plain = YieldAnalyzer(OrderingSpec("w", "ml")).evaluate(
        problem, max_defects=truncation
    )
    converged = YieldAnalyzer(OrderingSpec("w", "ml", sift_converge=True)).evaluate(
        problem, max_defects=truncation
    )
    assert converged.yield_estimate == pytest.approx(plain.yield_estimate, abs=1e-12)
    assert converged.coded_robdd_size <= plain.coded_robdd_size

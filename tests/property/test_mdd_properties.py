"""Property-based tests of the ROMDD engine and the ROBDD -> ROMDD conversion."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.bdd import build_circuit_bdd
from repro.faulttree import GateOp, MVCircuit, MultiValuedVariable
from repro.mdd import MDDManager, convert_bdd_to_mdd, probability_of_one
from repro.mdd.direct import build_mdd_from_mvcircuit

# three multiple-valued variables with deliberately awkward domain sizes
DOMAINS = {"x": list(range(0, 3)), "y": list(range(1, 6)), "z": list(range(0, 2))}
VARIABLE_NAMES = list(DOMAINS)


def filter_leaf():
    return st.one_of(
        st.tuples(st.just("eq"), st.sampled_from(VARIABLE_NAMES)).flatmap(
            lambda t: st.tuples(st.just(t[0]), st.just(t[1]), st.sampled_from(DOMAINS[t[1]]))
        ),
        st.tuples(st.just("geq"), st.sampled_from(VARIABLE_NAMES)).flatmap(
            lambda t: st.tuples(st.just(t[0]), st.just(t[1]), st.sampled_from(DOMAINS[t[1]]))
        ),
    )


def mv_expressions():
    def extend(children):
        return st.one_of(
            st.tuples(st.just("not"), children),
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
        )

    return st.recursive(filter_leaf(), extend, max_leaves=8)


def build_mv_circuit(expr):
    mv = MVCircuit("prop")
    variables = {name: mv.add_variable(MultiValuedVariable(name, DOMAINS[name])) for name in DOMAINS}

    def build(node):
        if node[0] in ("eq", "geq"):
            _, name, constant = node
            if node[0] == "eq":
                return mv.filter_eq(variables[name], constant)
            return mv.filter_geq(variables[name], constant)
        if node[0] == "not":
            return mv.gate(GateOp.NOT, [build(node[1])])
        op = GateOp.AND if node[0] == "and" else GateOp.OR
        return mv.gate(op, [build(node[1]), build(node[2])])

    mv.set_top(build(expr))
    return mv


def evaluate_expr(expr, assignment):
    if expr[0] == "eq":
        return assignment[expr[1]] == expr[2]
    if expr[0] == "geq":
        return assignment[expr[1]] >= expr[2]
    if expr[0] == "not":
        return not evaluate_expr(expr[1], assignment)
    left = evaluate_expr(expr[1], assignment)
    right = evaluate_expr(expr[2], assignment)
    return (left and right) if expr[0] == "and" else (left or right)


def all_assignments():
    for combo in itertools.product(*(DOMAINS[name] for name in VARIABLE_NAMES)):
        yield dict(zip(VARIABLE_NAMES, combo))


@settings(max_examples=60, deadline=None)
@given(mv_expressions())
def test_direct_mdd_matches_semantics(expr):
    mv = build_mv_circuit(expr)
    manager, root, _ = build_mdd_from_mvcircuit(mv, list(mv.variables))
    for assignment in all_assignments():
        assert manager.evaluate(root, assignment) == evaluate_expr(expr, assignment)


@settings(max_examples=40, deadline=None)
@given(mv_expressions(), st.permutations(VARIABLE_NAMES))
def test_conversion_route_equals_direct_route(expr, order_names):
    mv = build_mv_circuit(expr)
    ordered_variables = [mv.variable(name) for name in order_names]
    groups = [(v, list(v.bit_names())) for v in ordered_variables]
    flat = [bit for _, bits in groups for bit in bits]
    binary = mv.binary_encode()
    bdd_manager, bdd_root, _ = build_circuit_bdd(binary, flat)
    converted_manager, converted_root = convert_bdd_to_mdd(bdd_manager, bdd_root, groups)

    direct_manager, direct_root, _ = build_mdd_from_mvcircuit(mv, ordered_variables)

    # same canonical diagram size and same semantics
    assert converted_manager.size(converted_root) == direct_manager.size(direct_root)
    for assignment in all_assignments():
        expected = evaluate_expr(expr, assignment)
        assert converted_manager.evaluate(converted_root, assignment) == expected
        assert direct_manager.evaluate(direct_root, assignment) == expected


@settings(max_examples=40, deadline=None)
@given(
    mv_expressions(),
    st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=10, max_size=10),
)
def test_probability_matches_brute_force(expr, raw_weights):
    mv = build_mv_circuit(expr)
    manager, root, _ = build_mdd_from_mvcircuit(mv, list(mv.variables))

    # build normalized per-variable distributions from the raw weights
    distributions = {}
    cursor = 0
    for name in VARIABLE_NAMES:
        values = DOMAINS[name]
        weights = raw_weights[cursor : cursor + len(values)]
        if len(weights) < len(values):
            weights = weights + [1.0] * (len(values) - len(weights))
        cursor += len(values)
        total = sum(weights)
        distributions[name] = {v: w / total for v, w in zip(values, weights)}

    expected = 0.0
    for assignment in all_assignments():
        if evaluate_expr(expr, assignment):
            p = 1.0
            for name in VARIABLE_NAMES:
                p *= distributions[name][assignment[name]]
            expected += p
    computed = probability_of_one(manager, root, distributions)
    assert abs(computed - expected) < 1e-9

"""Property-based tests of the fault-tree builder and threshold gates."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.faulttree import FaultTreeBuilder


@settings(max_examples=80, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=7))
def test_at_least_matches_counting(n, k):
    ft = FaultTreeBuilder()
    names = ["C%d" % i for i in range(n)]
    ft.set_top(ft.at_least(k, [ft.failed(name) for name in names]))
    circuit = ft.build()
    for values in itertools.product((False, True), repeat=n):
        assignment = dict(zip(names, values))
        assert circuit.evaluate_output(assignment) is (sum(values) >= k)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=1, max_value=6), st.integers(min_value=0, max_value=6))
def test_exactly_partitions_the_space(n, k):
    ft = FaultTreeBuilder()
    names = ["C%d" % i for i in range(n)]
    exprs = [ft.failed(name) for name in names]
    ft.set_top(ft.exactly(k, exprs))
    circuit = ft.build()
    count = 0
    for values in itertools.product((False, True), repeat=n):
        if circuit.evaluate_output(dict(zip(names, values))):
            count += 1
    import math

    assert count == (math.comb(n, k) if k <= n else 0)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.booleans(), min_size=1, max_size=8))
def test_series_parallel_duality(values):
    names = ["C%d" % i for i in range(len(values))]
    ft = FaultTreeBuilder()
    ft.set_top(ft.series_fails(names))
    series = ft.build()
    ft2 = FaultTreeBuilder()
    ft2.set_top(ft2.parallel_fails(names))
    parallel = ft2.build()
    assignment = dict(zip(names, values))
    assert series.evaluate_output(assignment) is any(values)
    assert parallel.evaluate_output(assignment) is all(values)

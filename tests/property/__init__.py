"""Test package."""

"""Differential tests: analytic gradients vs finite differences.

The reverse-mode pass of :meth:`repro.engine.batch.LinearizedDiagram.backward`
claims the *exact* derivative of the root probability with respect to every
per-level value-probability entry.  Because the root probability is
multilinear in those entries (a root-to-terminal path crosses each level at
most once), a central finite difference of the original recursive traversal
:func:`repro.mdd.probability.probability_of_one_reference` has **no**
truncation error — only floating-point roundoff — so the two must agree to
roundoff precision (pinned at 1e-8 relative).

Covered shapes: randomized ROMDDs from the full pipeline (grouped variables
``w``/``v_l`` with shared location distributions), hand-built ungrouped
diagrams, chains far deeper than the interpreter recursion limit, and
degenerate distributions with exact 0/1 probabilities.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.engine.batch import BatchEvalError, HAVE_NUMPY, LinearizedDiagram
from repro.faulttree import FaultTreeBuilder
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd.manager import FALSE, TRUE, MDDManager
from repro.mdd.probability import gradient_of_many, probability_of_one_reference
from repro.ordering import OrderingSpec

#: Perturbation step of the finite differences.  Small enough that a
#: perturbed distribution still passes the sum-to-one validation (tolerance
#: 1e-6) of ``VariableDistributions``; since the function is multilinear in
#: each entry, *any* step gives the exact derivative up to roundoff.
FD_STEP = 2.0 ** -21

#: The acceptance tolerance of the differential suite (plus an absolute
#: floor for derivatives at the roundoff noise level of the differences).
REL_TOL = 1e-8
ABS_TOL = 5e-9

COMPONENTS = ["C0", "C1", "C2", "C3", "C4"]


def structure_expressions():
    leaves = st.sampled_from(COMPONENTS)

    def extend(children):
        return st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("k2"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=7)


def build_problem(expr, weights, mean, clustering):
    ft = FaultTreeBuilder("random")

    def build(node):
        if isinstance(node, str):
            return ft.failed(node)
        if node[0] == "and":
            return ft.and_(build(node[1]), build(node[2]))
        if node[0] == "or":
            return ft.or_(build(node[1]), build(node[2]))
        return ft.at_least(2, [build(node[1]), build(node[2]), build(node[3])])

    ft.set_top(build(expr))
    circuit = ft.build()
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=mean, clustering=clustering)
    return YieldProblem(circuit, model, distribution, name="random")


def fd_gradient(manager, root, distributions, variable, value):
    """Central finite difference of the reference traversal, exact for the
    multilinear root probability (forward difference at the 0 boundary so the
    perturbed entry stays a valid non-negative probability)."""
    base = distributions[variable][value]
    step = FD_STEP

    def evaluate_at(entry):
        perturbed = {
            name: dict(values) for name, values in distributions.items()
        }
        perturbed[variable][value] = entry
        return probability_of_one_reference(manager, root, perturbed)

    if base >= step:
        return (evaluate_at(base + step) - evaluate_at(base - step)) / (2.0 * step)
    return (evaluate_at(base + step) - evaluate_at(base)) / step


def assert_gradients_match_fd(manager, root, distributions_list, *, use_numpy=None):
    """Assert the analytic gradients equal FD of the reference traversal."""
    probabilities, gradients = gradient_of_many(
        manager, root, distributions_list, use_numpy=use_numpy
    )
    for distributions, probability, grads in zip(
        distributions_list, probabilities, gradients
    ):
        assert probability == probability_of_one_reference(
            manager, root, distributions
        )
        for variable, per_value in grads.items():
            for value, analytic in per_value.items():
                fd = fd_gradient(manager, root, distributions, variable, value)
                assert analytic == pytest.approx(fd, rel=REL_TOL, abs=ABS_TOL), (
                    "d/dP(%s=%s)" % (variable, value)
                )


def model_distributions(compiled, problem):
    lethal = problem.lethal_defect_distribution()
    return compiled.gfunction.variable_distributions(
        lethal, problem.lethal_component_probabilities()
    )


@settings(max_examples=15, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.lists(st.floats(min_value=0.2, max_value=3.0), min_size=2, max_size=4),
    st.floats(min_value=0.5, max_value=8.0),
    st.integers(min_value=1, max_value=3),
)
def test_pipeline_romdd_gradients_match_finite_differences(
    expr, weights, means, clustering, truncation
):
    """Grouped-variable ROMDDs from the full pipeline, K models per pass."""
    problems = [build_problem(expr, weights, mean, clustering) for mean in means]
    compiled = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
        problems[0], max_defects=truncation
    )
    distributions = [model_distributions(compiled, p) for p in problems]
    assert_gradients_match_fd(
        compiled.mdd_manager, compiled.mdd_root, distributions, use_numpy=False
    )
    if HAVE_NUMPY:
        assert_gradients_match_fd(
            compiled.mdd_manager, compiled.mdd_root, distributions, use_numpy=True
        )


@settings(max_examples=10, deadline=None)
@given(
    st.lists(
        st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=3, max_size=3),
        min_size=2,
        max_size=5,
    ),
    st.randoms(use_true_random=False),
)
def test_ungrouped_mdd_gradients_match_finite_differences(rows, rng):
    """Hand-built multi-valued diagrams, including degenerate 0/1 entries."""
    variables = [
        MultiValuedVariable("x%d" % i, range(3)) for i in range(len(rows))
    ]
    manager = MDDManager(variables)
    # random three-valued structure: each variable accepts a random value
    # subset, combined with alternating AND/OR
    root = None
    for level, _ in enumerate(rows):
        accepted = [value for value in range(3) if rng.random() < 0.6] or [1]
        literal = manager.literal("x%d" % level, accepted)
        if root is None:
            root = literal
        elif level % 2:
            root = manager.or_(root, literal)
        else:
            root = manager.and_(root, literal)

    distributions = {}
    for variable, row in zip(variables, rows):
        total = sum(row)
        if total <= 0.0:
            # degenerate: all mass on one value (exact 0/1 probabilities)
            values = [1.0, 0.0, 0.0]
        else:
            values = [value / total for value in row]
            # repair the rounding drift so the sum is exactly 1.0
            values[2] = 1.0 - values[0] - values[1]
            if values[2] < 0.0:
                values[1] += values[2]
                values[2] = 0.0
        distributions[variable.name] = dict(enumerate(values))

    assert_gradients_match_fd(manager, root, [distributions], use_numpy=False)
    if HAVE_NUMPY:
        assert_gradients_match_fd(manager, root, [distributions], use_numpy=True)


class TestDeepChains:
    """Chains several times deeper than the default recursion limit."""

    DEPTH = 1500

    @pytest.fixture(scope="class")
    def chain(self):
        variables = [
            MultiValuedVariable("x%d" % i, range(2)) for i in range(self.DEPTH)
        ]
        manager = MDDManager(variables)
        # AND chain built bottom-up with mk(): one node per level
        node = TRUE
        for level in reversed(range(self.DEPTH)):
            node = manager.mk(level, (FALSE, node))
        return manager, node

    def test_backward_is_iterative_and_exact(self, chain):
        manager, root = chain
        probability = 0.999
        distributions = {
            "x%d" % i: {0: 1.0 - probability, 1: probability}
            for i in range(self.DEPTH)
        }
        probabilities, gradients = gradient_of_many(manager, root, [distributions])
        expected_root = probability ** self.DEPTH
        assert probabilities[0] == pytest.approx(expected_root, rel=1e-9)
        # d/dp(x_i = 1) = prod_{j != i} p_j, identical at every level
        [grads] = gradients
        expected = probability ** (self.DEPTH - 1)
        for level in (0, 1, self.DEPTH // 2, self.DEPTH - 1):
            assert grads["x%d" % level][1] == pytest.approx(expected, rel=1e-9)
            assert grads["x%d" % level][0] == 0.0

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy unavailable")
    def test_numpy_path_matches_python_path(self, chain):
        manager, root = chain
        distributions = [
            {
                "x%d" % i: {0: 1.0 - p, 1: p}
                for i in range(self.DEPTH)
            }
            for p in (0.999, 0.9995)
        ]
        py_probs, py_grads = gradient_of_many(
            manager, root, distributions, use_numpy=False
        )
        np_probs, np_grads = gradient_of_many(
            manager, root, distributions, use_numpy=True
        )
        assert np_probs == py_probs
        for py_model, np_model in zip(py_grads, np_grads):
            for variable in ("x0", "x750", "x1499"):
                for value in (0, 1):
                    assert np_model[variable][value] == pytest.approx(
                        py_model[variable][value], rel=1e-12, abs=1e-300
                    )


class TestBackwardEdgeCases:
    def test_terminal_root_has_zero_gradients(self):
        linearized = LinearizedDiagram(TRUE, 2, ())
        probabilities, gradients = linearized.backward({}, 3)
        assert probabilities == [1.0, 1.0, 1.0]
        assert gradients == {}

    def test_zero_models_short_circuit(self):
        linearized = LinearizedDiagram(TRUE, 2, ())
        assert linearized.backward({}, 0) == ([], {})
        with pytest.raises(BatchEvalError):
            linearized.backward({}, -1)

    def test_missing_level_columns_raise(self):
        variables = [MultiValuedVariable("x", range(2))]
        manager = MDDManager(variables)
        root = manager.mk(0, (FALSE, TRUE))
        linearized = LinearizedDiagram.from_mdd(manager, root)
        with pytest.raises(BatchEvalError):
            linearized.backward({}, 1)

    def test_gradient_counters_advance(self):
        variables = [MultiValuedVariable("x", range(2))]
        manager = MDDManager(variables)
        root = manager.mk(0, (FALSE, TRUE))
        linearized = LinearizedDiagram.from_mdd(manager, root)
        columns = {0: ((0.25, 0.5), (0.75, 0.5))}
        linearized.backward(columns, 2, use_numpy=False)
        assert linearized.gradient_passes == 1
        assert linearized.models_differentiated == 2
        # probability counters belong to evaluate(), not backward()
        assert linearized.models_evaluated == 0

"""Property tests: store → load round-trips are bit-for-bit transparent.

Random fault trees are compiled through the full pipeline (ordering, coded
ROBDD, multi-valued ROMDD conversion), persisted to a temporary structure
store, loaded back, and driven through both the batched evaluation and the
reverse-mode gradient pass.  The restored structure must reproduce the
fresh build **bit for bit** — same yields, same error bounds, same
gradients — on the python and numpy kernels alike, including degenerate
defect models whose probabilities collapse to 0/1.
"""

import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import (
    ComponentDefectModel,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)
from repro.engine.batch import HAVE_NUMPY
from repro.engine.service import structure_key
from repro.engine.store import StructureStore
from repro.faulttree import FaultTreeBuilder
from repro.ordering import OrderingSpec

COMPONENTS = ["C0", "C1", "C2", "C3", "C4"]


def structure_expressions():
    leaves = st.sampled_from(COMPONENTS)

    def extend(children):
        return st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("k2"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=7)


def build_circuit(expr):
    ft = FaultTreeBuilder("random")

    def build(node):
        if isinstance(node, str):
            return ft.failed(node)
        if node[0] == "and":
            return ft.and_(build(node[1]), build(node[2]))
        if node[0] == "or":
            return ft.or_(build(node[1]), build(node[2]))
        return ft.at_least(2, [build(node[1]), build(node[2]), build(node[3])])

    ft.set_top(build(expr))
    return ft.build()


def build_problem(circuit, weights, mean, clustering):
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=mean, clustering=clustering)
    return YieldProblem(circuit, model, distribution, name="random")


def roundtrip(compiled, skey):
    """Persist ``compiled`` into a throwaway store and load it back."""
    with tempfile.TemporaryDirectory() as root:
        store = StructureStore(root)
        store.save(skey, compiled)
        loaded = store.load(skey)
        assert loaded is not None
        return loaded[0]


def assert_equivalent(compiled, restored, problems):
    kernels = [False, True] if HAVE_NUMPY else [False]
    for use_numpy in kernels:
        fresh_results = compiled.evaluate_many(problems, use_numpy=use_numpy)
        restored_results = restored.evaluate_many(problems, use_numpy=use_numpy)
        for fresh, loaded in zip(fresh_results, restored_results):
            assert loaded.yield_estimate == fresh.yield_estimate  # bit-for-bit
            assert loaded.error_bound == fresh.error_bound
            assert loaded.truncation == fresh.truncation
            assert loaded.romdd_size == fresh.romdd_size
            assert loaded.variable_order == fresh.variable_order

        fresh_gradients = compiled.gradients_many(problems, use_numpy=use_numpy)
        restored_gradients = restored.gradients_many(problems, use_numpy=use_numpy)
        for fresh, loaded in zip(fresh_gradients, restored_gradients):
            assert loaded.yield_estimate == fresh.yield_estimate
            assert loaded.d_yield_d_raw == fresh.d_yield_d_raw  # bit-for-bit
            assert loaded.sensitivity == fresh.sensitivity
            assert loaded.d_failure_d_count == fresh.d_failure_d_count
            assert loaded.d_failure_d_location == fresh.d_failure_d_location


@settings(max_examples=15, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.lists(st.floats(min_value=0.2, max_value=3.0), min_size=2, max_size=4),
    st.floats(min_value=0.5, max_value=8.0),
    st.integers(min_value=0, max_value=4),
)
def test_roundtrip_is_bit_for_bit_on_pipeline_romdds(
    expr, weights, means, clustering, truncation
):
    circuit = build_circuit(expr)
    problems = [
        build_problem(circuit, weights, mean, clustering) for mean in means
    ]
    compiled = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
        problems[0], max_defects=truncation
    )
    skey = structure_key(problems[0], truncation, OrderingSpec("w", "ml"))
    restored = roundtrip(compiled, skey)
    assert restored.level_profile == compiled.level_profile
    assert restored.linearized().layers == compiled.linearized().layers
    assert_equivalent(compiled, restored, problems)


@settings(max_examples=10, deadline=None)
@given(
    structure_expressions(),
    st.integers(min_value=0, max_value=4),
    st.integers(min_value=1, max_value=3),
)
def test_roundtrip_survives_degenerate_probabilities(expr, hot, truncation):
    """Defect models whose probability columns collapse to exact 0/1.

    Nearly all the location mass sits on one component (the model forbids
    exact zeros, so the cold components get denormal-range weights), and
    the count distributions underflow to exactly degenerate columns: a
    Poisson with mean 1e5 has ``pmf(k) == 0.0`` for every small ``k``, so
    the ``w`` column is exactly ``[0, ..., 0, 1]`` (all mass in the
    saturated overflow entry), while a mean of 1e-18 rounds ``Q'_0`` to
    exactly 1.0.
    """
    circuit = build_circuit(expr)
    weights = [1e-300] * len(COMPONENTS)
    weights[hot] = 1.0
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=1.0
    )
    problems = [
        YieldProblem(
            circuit, model, PoissonDefectDistribution(mean=mean), name="degenerate"
        )
        for mean in (1e-18, 1.0, 1e5)
    ]
    compiled = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
        problems[0], max_defects=truncation
    )
    skey = structure_key(problems[0], truncation, OrderingSpec("w", "ml"))
    restored = roundtrip(compiled, skey)
    assert_equivalent(compiled, restored, problems)


def test_roundtrip_of_a_sifted_multi_valued_structure():
    """Dynamic reordering changes the level layout; the profile must track it."""
    circuit = build_circuit(("k2", "C0", ("or", "C1", "C2"), ("and", "C3", "C4")))
    weights = [1.0, 2.0, 0.5, 1.5, 1.0]
    ordering = OrderingSpec("vrw", "ml", sift=True)
    problems = [
        build_problem(circuit, weights, mean, 4.0) for mean in (0.5, 1.5, 2.5)
    ]
    compiled = YieldAnalyzer(ordering).compile(problems[0], max_defects=3)
    skey = structure_key(problems[0], 3, ordering)
    restored = roundtrip(compiled, skey)
    assert restored.ordering.key() == ordering.key()
    assert_equivalent(compiled, restored, problems)

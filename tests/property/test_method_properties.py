"""Property-based tests of the end-to-end yield method on random fault trees.

Every sample builds a random coherent fault tree over a handful of
components, assigns random defect probabilities and checks the combinatorial
method against the exact enumeration baseline — the strongest invariant the
library has, because it crosses every subsystem.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exact import exact_yield
from repro.core.method import evaluate_yield
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, NegativeBinomialDefectDistribution
from repro.faulttree import FaultTreeBuilder
from repro.ordering import OrderingSpec

COMPONENTS = ["C0", "C1", "C2", "C3", "C4"]


def structure_expressions():
    leaves = st.sampled_from(COMPONENTS)

    def extend(children):
        return st.one_of(
            st.tuples(st.just("and"), children, children),
            st.tuples(st.just("or"), children, children),
            st.tuples(st.just("k2"), children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=7)


def build_problem(expr, weights, mean, clustering):
    ft = FaultTreeBuilder("random")

    def build(node):
        if isinstance(node, str):
            return ft.failed(node)
        if node[0] == "and":
            return ft.and_(build(node[1]), build(node[2]))
        if node[0] == "or":
            return ft.or_(build(node[1]), build(node[2]))
        return ft.at_least(2, [build(node[1]), build(node[2]), build(node[3])])

    ft.set_top(build(expr))
    circuit = ft.build()
    model = ComponentDefectModel.from_relative_weights(
        dict(zip(COMPONENTS, weights)), lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=mean, clustering=clustering)
    return YieldProblem(circuit, model, distribution, name="random")


@settings(max_examples=25, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
    st.floats(min_value=0.2, max_value=3.0),
    st.floats(min_value=0.5, max_value=8.0),
    st.sampled_from(["wv", "w", "vrw"]),
)
def test_method_matches_exact_enumeration(expr, weights, mean, clustering, ordering):
    problem = build_problem(expr, weights, mean, clustering)
    from repro.core.method import YieldAnalyzer

    analyzer = YieldAnalyzer(OrderingSpec(ordering, "ml"))
    result = analyzer.evaluate(problem, max_defects=3)
    reference = exact_yield(problem, max_defects=3)
    assert result.yield_estimate == pytest.approx(reference.yield_estimate, rel=1e-9)
    assert 0.0 <= result.yield_estimate <= 1.0


@settings(max_examples=15, deadline=None)
@given(
    structure_expressions(),
    st.lists(st.floats(min_value=0.1, max_value=3.0), min_size=5, max_size=5),
)
def test_truncation_estimates_are_monotone(expr, weights):
    problem = build_problem(expr, weights, 1.0, 4.0)
    previous = -1.0
    for max_defects in (0, 1, 2, 3):
        estimate = evaluate_yield(problem, max_defects=max_defects).yield_estimate
        assert estimate >= previous - 1e-12
        previous = estimate

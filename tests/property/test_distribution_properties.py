"""Property-based tests of the defect-count distributions and eq. (1)."""

import math

from hypothesis import given, settings, strategies as st

from repro.distributions import (
    CompoundPoissonDefectDistribution,
    EmpiricalDefectDistribution,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
    binomial_thinning,
)

means = st.floats(min_value=0.05, max_value=8.0)
clusterings = st.floats(min_value=0.1, max_value=20.0)
retains = st.floats(min_value=0.05, max_value=1.0)


@settings(max_examples=60, deadline=None)
@given(means, clusterings)
def test_negative_binomial_pmf_is_a_distribution(mean, clustering):
    dist = NegativeBinomialDefectDistribution(mean, clustering)
    values = [dist.pmf(k) for k in range(400)]
    assert all(v >= 0.0 for v in values)
    assert sum(values) <= 1.0 + 1e-9


@settings(max_examples=60, deadline=None)
@given(means, clusterings, retains)
def test_thinning_preserves_family_and_scales_mean(mean, clustering, retain):
    dist = NegativeBinomialDefectDistribution(mean, clustering)
    thinned = dist.thinned(retain)
    assert isinstance(thinned, NegativeBinomialDefectDistribution)
    assert math.isclose(thinned.mean(), mean * retain, rel_tol=1e-9)
    assert math.isclose(thinned.clustering, clustering, rel_tol=1e-12)


@settings(max_examples=40, deadline=None)
@given(means, clusterings, retains)
def test_generic_thinning_agrees_with_closed_form(mean, clustering, retain):
    dist = NegativeBinomialDefectDistribution(mean, clustering)
    support = dist.truncation_level(1e-10, max_level=100_000)
    numeric = binomial_thinning(dist.pmf_vector(support), retain)
    closed = dist.thinned(retain)
    for k in range(min(10, len(numeric))):
        assert math.isclose(numeric[k], closed.pmf(k), rel_tol=1e-5, abs_tol=1e-9)


@settings(max_examples=60, deadline=None)
@given(means, st.floats(min_value=0.0001, max_value=0.2))
def test_truncation_level_is_tight(mean, epsilon):
    dist = PoissonDefectDistribution(mean)
    level = dist.truncation_level(epsilon)
    assert dist.tail(level) <= epsilon
    assert level == 0 or dist.tail(level - 1) > epsilon


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(min_value=0.05, max_value=6.0), min_size=1, max_size=4),
    st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=4),
    retains,
)
def test_compound_poisson_thinning_commutes(rates, weights, retain):
    size = min(len(rates), len(weights))
    rates, weights = rates[:size], weights[:size]
    total = sum(weights)
    weights = [w / total for w in weights]
    mixture = CompoundPoissonDefectDistribution(rates, weights)
    thinned = mixture.thinned(retain)
    reference = CompoundPoissonDefectDistribution([r * retain for r in rates], weights)
    for k in range(8):
        assert math.isclose(thinned.pmf(k), reference.pmf(k), rel_tol=1e-9, abs_tol=1e-12)


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8), retains)
def test_empirical_thinning_preserves_mass(raw, retain):
    total = sum(raw)
    if total <= 0:
        raw = [1.0]
        total = 1.0
    pmf = [value / total for value in raw]
    dist = EmpiricalDefectDistribution(pmf)
    thinned = dist.thinned(retain)
    mass = sum(thinned.pmf(k) for k in range(len(pmf) + 2))
    assert math.isclose(mass, 1.0, rel_tol=1e-9)
    # thinning can only shift mass towards smaller counts
    assert thinned.mean() <= dist.mean() + 1e-9

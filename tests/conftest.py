"""Shared fixtures: small reference systems used across the test-suite."""

from __future__ import annotations

import pytest

from repro.core.problem import YieldProblem
from repro.distributions import (
    ComponentDefectModel,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)
from repro.faulttree import FaultTreeBuilder


def build_paper_example_tree():
    """The fault tree of Fig. 2 of the paper: ``F = x1 x2 + x3``."""
    ft = FaultTreeBuilder("paper-fig2")
    x1, x2, x3 = ft.failed("comp1"), ft.failed("comp2"), ft.failed("comp3")
    ft.set_top(ft.or_(ft.and_(x1, x2), x3))
    return ft.build()


def build_duplex_tree():
    """A duplex system: fails only when both modules fail."""
    ft = FaultTreeBuilder("duplex")
    ft.set_top(ft.and_(ft.failed("A"), ft.failed("B")))
    return ft.build()


def build_two_of_three_tree():
    """A triplicated (TMR-style) system: fails when 2 of 3 modules fail."""
    ft = FaultTreeBuilder("tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


def build_bridge_tree():
    """A non-series-parallel bridge structure on five components.

    The system works when a path of working components connects source to
    sink: paths {A, B}, {C, D}, {A, E, D}, {C, E, B}.
    """
    ft = FaultTreeBuilder("bridge")
    a, b, c, d, e = (ft.working(x) for x in ("A", "B", "C", "D", "E"))
    functioning = ft.or_(
        ft.and_(a, b),
        ft.and_(c, d),
        ft.and_(a, e, d),
        ft.and_(c, e, b),
    )
    ft.set_top_from_functioning(functioning)
    return ft.build()


@pytest.fixture
def paper_example_tree():
    return build_paper_example_tree()


@pytest.fixture
def duplex_tree():
    return build_duplex_tree()


@pytest.fixture
def two_of_three_tree():
    return build_two_of_three_tree()


@pytest.fixture
def bridge_tree():
    return build_bridge_tree()


@pytest.fixture
def paper_example_problem(paper_example_tree):
    """Fig. 2 system with uniform component probabilities and a Poisson defect count."""
    model = ComponentDefectModel.uniform(["comp1", "comp2", "comp3"], lethality=0.6)
    distribution = PoissonDefectDistribution(mean=1.0)
    return YieldProblem(paper_example_tree, model, distribution, name="paper-fig2")


@pytest.fixture
def bridge_problem(bridge_tree):
    """Bridge system with non-uniform probabilities and a clustered defect count."""
    model = ComponentDefectModel.from_relative_weights(
        {"A": 2.0, "B": 1.0, "C": 1.0, "D": 1.0, "E": 0.5}, lethality=0.5
    )
    distribution = NegativeBinomialDefectDistribution(mean=1.5, clustering=2.0)
    return YieldProblem(bridge_tree, model, distribution, name="bridge")


@pytest.fixture
def tmr_problem(two_of_three_tree):
    """2-of-3 system with uniform probabilities and a negative-binomial defect count."""
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = NegativeBinomialDefectDistribution(mean=2.0, clustering=4.0)
    return YieldProblem(two_of_three_tree, model, distribution, name="tmr")

"""Test-suite package."""

"""Tests for hierarchical span tracing and Chrome trace export."""

import json
import os
import threading

import pytest

from repro.obs import trace
from repro.obs.trace import NULL_SPAN, Tracer, tree_from_chrome


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert trace.active() is None
    yield
    trace.stop()


class TestSpanRecording:
    def test_disabled_tracing_returns_the_shared_null_span(self):
        span = trace.span("anything", key="value")
        assert span is NULL_SPAN
        with span as inner:
            inner.set(more=1)  # no-op, must not raise

    def test_spans_record_nesting_via_parent_ids(self):
        tracer = trace.start()
        with trace.span("outer", a=1):
            with trace.span("inner"):
                pass
        trace.stop()
        spans = {s["name"]: s for s in tracer.spans()}
        assert spans["outer"]["parent"] is None
        assert spans["inner"]["parent"] == spans["outer"]["id"]
        assert spans["outer"]["args"] == {"a": 1}
        assert spans["outer"]["pid"] == os.getpid()
        # inner closes before outer, and both have non-negative durations
        assert spans["inner"]["dur"] >= 0.0
        assert spans["outer"]["dur"] >= spans["inner"]["dur"]

    def test_set_updates_span_args_mid_flight(self):
        tracer = trace.start()
        with trace.span("build") as span:
            span.set(nodes=42)
        trace.stop()
        assert tracer.spans()[0]["args"]["nodes"] == 42

    def test_non_json_args_are_coerced_to_repr(self):
        tracer = trace.start()
        with trace.span("s", payload=[1, 2]):
            pass
        trace.stop()
        assert tracer.spans()[0]["args"]["payload"] == "[1, 2]"

    def test_span_stacks_are_thread_local(self):
        tracer = trace.start()
        barrier = threading.Barrier(2)

        def work(name):
            with trace.span(name):
                barrier.wait(timeout=5)

        threads = [
            threading.Thread(target=work, args=("t%d" % i,)) for i in range(2)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trace.stop()
        spans = tracer.spans()
        assert len(spans) == 2
        # concurrent roots: neither span is the other's parent
        assert all(s["parent"] is None for s in spans)
        assert spans[0]["tid"] != spans[1]["tid"]

    def test_adopt_folds_worker_spans(self):
        tracer = trace.start()
        with trace.span("parent"):
            pass
        trace.stop()
        worker = Tracer()
        with worker.span("worker.shard"):
            pass
        tracer.adopt(worker.spans())
        tracer.adopt(None)  # no-op
        assert {s["name"] for s in tracer.spans()} == {"parent", "worker.shard"}

    def test_aggregate_totals_by_name(self):
        tracer = trace.start()
        for _ in range(3):
            with trace.span("pass"):
                pass
        trace.stop()
        aggregate = tracer.aggregate()
        assert aggregate["pass"]["count"] == 3
        assert aggregate["pass"]["seconds"] >= 0.0


class TestChromeExport:
    def _sample_tracer(self):
        tracer = trace.start()
        with trace.span("root", benchmark="MS2"):
            with trace.span("child"):
                pass
            with trace.span("child"):
                pass
        trace.stop()
        return tracer

    def test_schema(self):
        data = self._sample_tracer().chrome_trace()
        assert data["displayTimeUnit"] == "ms"
        events = data["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        assert len(meta) == 1 and meta[0]["name"] == "process_name"
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == 3
        for event in xs:
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        # sorted by start time
        stamps = [e["ts"] for e in xs]
        assert stamps == sorted(stamps)

    def test_write_chrome_roundtrip(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "trace.json"
        assert tracer.write_chrome(str(path)) == 3
        data = json.loads(path.read_text())
        assert {e["name"] for e in data["traceEvents"] if e["ph"] == "X"} == {
            "root",
            "child",
        }

    def test_tree_rebuilds_nesting_by_containment(self):
        rendered = self._sample_tracer().tree()
        lines = rendered.splitlines()
        assert lines[0].startswith("root")
        assert "[benchmark=MS2]" in lines[0]
        assert lines[1].startswith("  child")
        assert lines[2].startswith("  child")

    def test_tree_from_chrome_min_us_filters_short_spans(self):
        trace_json = {
            "traceEvents": [
                {"name": "long", "ph": "X", "ts": 0.0, "dur": 5000.0, "pid": 1, "tid": 1},
                {"name": "blip", "ph": "X", "ts": 10.0, "dur": 1.0, "pid": 1, "tid": 1},
            ]
        }
        full = tree_from_chrome(trace_json)
        assert "blip" in full and "long" in full
        filtered = tree_from_chrome(trace_json, min_us=100.0)
        assert "blip" not in filtered and "long" in filtered

    def test_tree_separates_process_lanes(self):
        trace_json = {
            "traceEvents": [
                {"name": "a", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 1, "tid": 1},
                {"name": "b", "ph": "X", "ts": 0.0, "dur": 10.0, "pid": 2, "tid": 7},
            ]
        }
        rendered = tree_from_chrome(trace_json)
        assert "[pid 1 tid 1]" in rendered
        assert "[pid 2 tid 7]" in rendered

"""Tests for the unified metrics registry."""

import pickle
import threading

from repro.obs.metrics import HISTOGRAM_BOUNDS, MetricsRegistry


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("service.points.evaluated")
        registry.inc("service.points.evaluated", 5)
        assert registry.counter("service.points.evaluated") == 6
        assert registry.counter("missing") == 0

    def test_set_counter_overwrites(self):
        registry = MetricsRegistry()
        registry.inc("store.bytes", 100)
        registry.set_counter("store.bytes", 42)
        assert registry.counter("store.bytes") == 42

    def test_thread_safety(self):
        registry = MetricsRegistry()

        def work():
            for _ in range(1000):
                registry.inc("n")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter("n") == 4000


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("workers", 2)
        registry.set_gauge("workers", 4)
        assert registry.gauge("workers") == 4
        assert registry.gauge("missing", default=-1) == -1


class TestHistograms:
    def test_observe_accumulates(self):
        registry = MetricsRegistry()
        registry.observe("phase.build_seconds", 0.5)
        registry.observe("phase.build_seconds", 1.5)
        assert registry.histogram_count("phase.build_seconds") == 2
        assert registry.histogram_sum("phase.build_seconds") == 2.0
        assert registry.histogram_sum("missing") == 0.0
        assert registry.histogram_count("missing") == 0

    def test_bucketing(self):
        registry = MetricsRegistry()
        # one observation per bucket, plus one overflow
        for value in (0.0005, 0.005, 0.05, 0.5, 5.0, 50.0):
            registry.observe("t", value)
        hist = registry.snapshot()["histograms"]["t"]
        assert hist["buckets"] == [1] * (len(HISTOGRAM_BOUNDS) + 1)
        assert hist["min"] == 0.0005
        assert hist["max"] == 50.0


class TestSnapshotDiffMerge:
    def test_snapshot_is_plain_and_picklable(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.set_gauge("g", 1.5)
        registry.observe("h", 0.1)
        snap = pickle.loads(pickle.dumps(registry.snapshot()))
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert snap["histograms"]["h"]["count"] == 1

    def test_diff_subtracts_an_older_snapshot(self):
        registry = MetricsRegistry()
        registry.inc("a", 2)
        registry.observe("h", 0.1)
        older = registry.snapshot()
        registry.inc("a", 3)
        registry.inc("b")
        registry.observe("h", 0.2)
        delta = registry.diff(older)
        assert delta["counters"] == {"a": 3, "b": 1}
        assert delta["histograms"]["h"]["count"] == 1
        assert abs(delta["histograms"]["h"]["sum"] - 0.2) < 1e-12
        # unchanged metrics do not appear in the delta
        registry2 = MetricsRegistry()
        registry2.inc("a", 2)
        assert registry2.diff(registry2.snapshot()) == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }

    def test_merge_snapshot_folds_a_worker_delta(self):
        parent = MetricsRegistry()
        parent.inc("kernel.fused_passes", 1)
        parent.observe("phase.worker_evaluate_seconds", 0.5)
        worker = MetricsRegistry()
        worker.inc("kernel.fused_passes", 2)
        worker.inc("store.hits")
        worker.set_gauge("workers", 2)
        worker.observe("phase.worker_evaluate_seconds", 1.5)
        parent.merge_snapshot(worker.snapshot())
        assert parent.counter("kernel.fused_passes") == 3
        assert parent.counter("store.hits") == 1
        assert parent.gauge("workers") == 2
        assert parent.histogram_count("phase.worker_evaluate_seconds") == 2
        assert parent.histogram_sum("phase.worker_evaluate_seconds") == 2.0

    def test_merge_none_is_a_no_op(self):
        parent = MetricsRegistry()
        parent.merge_snapshot(None)
        parent.merge_snapshot({})
        assert parent.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_clear(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.observe("h", 1.0)
        registry.clear()
        assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestExposition:
    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.inc("service.points.evaluated", 19)
        registry.set_gauge("dispatch.workers", 2)
        registry.observe("phase.build_seconds", 0.05)
        registry.observe("phase.build_seconds", 5.0)
        text = registry.expose_text()
        assert "# TYPE repro_service_points_evaluated counter" in text
        assert "repro_service_points_evaluated 19" in text
        assert "# TYPE repro_dispatch_workers gauge" in text
        assert "# TYPE repro_phase_build_seconds histogram" in text
        assert 'repro_phase_build_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_phase_build_seconds_bucket{le="+Inf"} 2' in text
        assert "repro_phase_build_seconds_count 2" in text
        assert "repro_phase_build_seconds_sum 5.05" in text
        assert text.endswith("\n")

    def test_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.0005, 0.005, 0.05):
            registry.observe("t", value)
        text = registry.expose_text()
        assert 'repro_t_bucket{le="0.001"} 1' in text
        assert 'repro_t_bucket{le="0.01"} 2' in text
        assert 'repro_t_bucket{le="0.1"} 3' in text
        assert 'repro_t_bucket{le="+Inf"} 3' in text


class TestServiceStatsFacade:
    def test_attribute_reads_and_writes_map_to_metrics(self):
        from repro.engine.service import SweepServiceStats

        stats = SweepServiceStats()
        assert stats.points_evaluated == 0
        stats.points_evaluated += 19
        assert stats.points_evaluated == 19
        assert stats.registry.counter("service.points.evaluated") == 19

    def test_timer_attributes_observe_deltas(self):
        from repro.engine.service import SweepServiceStats

        stats = SweepServiceStats()
        stats.build_seconds += 0.5
        stats.build_seconds += 1.5
        assert stats.build_seconds == 2.0
        assert stats.registry.histogram_count("phase.build_seconds") == 2
        assert stats.registry.histogram_sum("phase.build_seconds") == 2.0

    def test_unknown_attribute_raises(self):
        import pytest

        from repro.engine.service import SweepServiceStats

        stats = SweepServiceStats()
        with pytest.raises(AttributeError):
            stats.nonexistent_counter
        with pytest.raises(AttributeError):
            stats.nonexistent_counter = 1

    def test_as_dict_covers_every_field(self):
        from repro.engine.service import (
            _COUNTER_METRICS,
            _TIMER_METRICS,
            SweepServiceStats,
        )

        stats = SweepServiceStats()
        stats.fused_passes += 3
        stats.evaluate_seconds += 0.25
        data = stats.as_dict()
        assert set(data) == set(_COUNTER_METRICS) | set(_TIMER_METRICS)
        assert data["fused_passes"] == 3
        assert data["evaluate_seconds"] == 0.25

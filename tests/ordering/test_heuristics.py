"""Unit tests for the topology, weight and H4 ordering heuristics."""

import pytest

from repro.faulttree import Circuit, GateOp
from repro.ordering import h4_order, topology_order, weight_order


def build_asymmetric_circuit():
    """out = OR( AND(a, b, c, d), e )  — a heavy branch and a light branch.

    The heavy AND gate is the *left* fanin of the OR, the single input ``e``
    the right one.
    """
    circuit = Circuit("asym")
    a, b, c, d, e = (circuit.add_input(x) for x in "abcde")
    heavy = circuit.add_gate(GateOp.AND, [a, b, c, d])
    out = circuit.add_gate(GateOp.OR, [heavy, e])
    circuit.set_output(out, "out")
    return circuit


def build_shared_cone_circuit():
    """out = AND( OR(a, b), OR(b, c) ) — b is shared by both cones."""
    circuit = Circuit("shared")
    a, b, c = (circuit.add_input(x) for x in "abc")
    left = circuit.add_gate(GateOp.OR, [a, b])
    right = circuit.add_gate(GateOp.OR, [b, c])
    out = circuit.add_gate(GateOp.AND, [left, right])
    circuit.set_output(out, "out")
    return circuit


class TestOrderValidity:
    @pytest.mark.parametrize("heuristic", [topology_order, weight_order, h4_order])
    def test_returns_permutation_of_inputs(self, heuristic):
        for circuit in (build_asymmetric_circuit(), build_shared_cone_circuit()):
            order = heuristic(circuit)
            assert sorted(order) == sorted(circuit.input_names)

    @pytest.mark.parametrize("heuristic", [topology_order, weight_order, h4_order])
    def test_inputs_outside_cone_are_appended(self, heuristic):
        circuit = Circuit("extra")
        a, b = circuit.add_input("a"), circuit.add_input("b")
        circuit.add_input("unused")
        out = circuit.add_gate(GateOp.AND, [a, b])
        circuit.set_output(out, "out")
        order = heuristic(circuit)
        assert order[-1] == "unused"


class TestTopology:
    def test_follows_leftmost_traversal(self):
        circuit = build_asymmetric_circuit()
        assert topology_order(circuit) == ["a", "b", "c", "d", "e"]

    def test_shared_input_listed_once(self):
        circuit = build_shared_cone_circuit()
        assert topology_order(circuit) == ["a", "b", "c"]


class TestWeight:
    def test_light_branch_is_promoted(self):
        # the weight heuristic reorders the OR's fanins by weight, so the
        # single-input branch (weight 1) comes before the 4-input AND (weight 4)
        circuit = build_asymmetric_circuit()
        assert weight_order(circuit) == ["e", "a", "b", "c", "d"]

    def test_tie_preserves_original_order(self):
        circuit = build_shared_cone_circuit()
        # both OR branches weigh 2: original order kept
        assert weight_order(circuit) == ["a", "b", "c"]


class TestH4:
    def test_prefers_fanins_with_fewer_unvisited_inputs(self):
        circuit = build_asymmetric_circuit()
        # at the OR gate nothing is visited yet: e has 1 unvisited input,
        # the AND branch has 4, so e is ordered first
        assert h4_order(circuit) == ["e", "a", "b", "c", "d"]

    def test_visited_inputs_guide_later_choices(self):
        # out = OR( AND(a, b), AND(b, c), AND(c, d) )
        circuit = Circuit("chain")
        a, b, c, d = (circuit.add_input(x) for x in "abcd")
        g1 = circuit.add_gate(GateOp.AND, [a, b])
        g2 = circuit.add_gate(GateOp.AND, [b, c])
        g3 = circuit.add_gate(GateOp.AND, [c, d])
        out = circuit.add_gate(GateOp.OR, [g3, g2, g1])
        circuit.set_output(out, "out")
        order = h4_order(circuit)
        assert sorted(order) == ["a", "b", "c", "d"]
        # all three fanins tie on unvisited counts (2 each) and visited sums
        # (0 each) at the first decision, so the original fanin order is kept
        # and g3's inputs come first
        assert order[0] == "c" and order[1] == "d"

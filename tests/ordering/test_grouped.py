"""Unit tests for grouped variable orders."""

import pytest

from repro.faulttree import MultiValuedVariable
from repro.ordering import GroupedVariableOrder, OrderingError


@pytest.fixture
def variables():
    return (
        MultiValuedVariable("w", range(0, 8)),
        MultiValuedVariable("v1", range(1, 19)),
    )


class TestGroupedVariableOrder:
    def test_flat_order_concatenates_groups(self, variables):
        w, v1 = variables
        order = GroupedVariableOrder([(w, w.bit_names()), (v1, v1.bit_names())])
        assert order.flat_bit_order() == list(w.bit_names()) + list(v1.bit_names())
        assert order.variable_names == ("w", "v1")
        assert len(order) == 2

    def test_bits_can_be_permuted_within_group(self, variables):
        w, v1 = variables
        reversed_bits = tuple(reversed(w.bit_names()))
        order = GroupedVariableOrder([(w, reversed_bits), (v1, v1.bit_names())])
        assert order.bits_of("w") == reversed_bits

    def test_unknown_variable_lookup(self, variables):
        w, v1 = variables
        order = GroupedVariableOrder([(w, w.bit_names()), (v1, v1.bit_names())])
        with pytest.raises(OrderingError):
            order.bits_of("nope")

    def test_rejects_incomplete_bit_group(self, variables):
        w, v1 = variables
        with pytest.raises(OrderingError):
            GroupedVariableOrder([(w, w.bit_names()[:-1]), (v1, v1.bit_names())])

    def test_rejects_foreign_bits(self, variables):
        w, v1 = variables
        with pytest.raises(OrderingError):
            GroupedVariableOrder([(w, v1.bit_names()[: w.width]), (v1, v1.bit_names())])

    def test_rejects_duplicate_variable(self, variables):
        w, _ = variables
        with pytest.raises(OrderingError):
            GroupedVariableOrder([(w, w.bit_names()), (w, w.bit_names())])

    def test_rejects_empty(self):
        with pytest.raises(OrderingError):
            GroupedVariableOrder([])

"""Test package."""

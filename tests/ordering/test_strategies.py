"""Unit tests for the paper's ordering strategy matrix (mv x bit orders)."""

import pytest

from repro.core.gfunction import GeneralizedFaultTree
from repro.faulttree import FaultTreeBuilder
from repro.ordering import (
    BIT_ORDERINGS,
    MV_ORDERINGS,
    OrderingError,
    OrderingSpec,
    compute_grouped_order,
)


def make_gfunction(num_components=5, max_defects=3):
    ft = FaultTreeBuilder("strategies")
    names = ["K%d" % i for i in range(num_components)]
    ft.set_top(ft.k_out_of_n_failed(2, names))
    return GeneralizedFaultTree(ft.build(), names, max_defects)


class TestOrderingSpec:
    def test_defaults(self):
        spec = OrderingSpec()
        assert spec.mv == "w" and spec.bits == "ml"

    def test_unknown_names_rejected(self):
        with pytest.raises(OrderingError):
            OrderingSpec("zz", "ml")
        with pytest.raises(OrderingError):
            OrderingSpec("wv", "zz")

    def test_paper_combination_rule(self):
        # heuristic bit orders only with the matching heuristic mv order
        with pytest.raises(OrderingError):
            OrderingSpec("wv", "t")
        with pytest.raises(OrderingError):
            OrderingSpec("t", "w")
        OrderingSpec("t", "t")
        OrderingSpec("w", "w")
        OrderingSpec("h", "h")
        OrderingSpec("wv", "t", strict=False)  # allowed when not strict

    def test_needs_circuit(self):
        assert not OrderingSpec("wv", "ml").needs_circuit()
        assert OrderingSpec("w", "ml").needs_circuit()
        assert OrderingSpec("w", "w").needs_circuit()


class TestStaticOrders:
    def test_wv_and_wvr(self):
        g = make_gfunction()
        order = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("wv", "ml")
        )
        assert order.variable_names == ("w", "v1", "v2", "v3")
        order = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("wvr", "ml")
        )
        assert order.variable_names == ("w", "v3", "v2", "v1")

    def test_vw_and_vrw(self):
        g = make_gfunction()
        order = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("vw", "ml")
        )
        assert order.variable_names == ("v1", "v2", "v3", "w")
        order = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("vrw", "ml")
        )
        assert order.variable_names == ("v3", "v2", "v1", "w")

    def test_bit_orders_ml_lm(self):
        g = make_gfunction()
        ml = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("wv", "ml")
        )
        lm = compute_grouped_order(
            g.count_variable, g.location_variables, OrderingSpec("wv", "lm")
        )
        assert ml.bits_of("w") == g.count_variable.bit_names()
        assert lm.bits_of("w") == tuple(reversed(g.count_variable.bit_names()))


class TestHeuristicOrders:
    @pytest.mark.parametrize("mv", ["t", "w", "h"])
    def test_heuristic_orders_cover_all_variables(self, mv):
        g = make_gfunction()
        spec = OrderingSpec(mv, "ml")
        order = compute_grouped_order(
            g.count_variable, g.location_variables, spec, g.binary_circuit()
        )
        assert sorted(order.variable_names) == ["v1", "v2", "v3", "w"]
        flat = order.flat_bit_order()
        expected_bits = {b for v in g.variables for b in v.bit_names()}
        assert set(flat) == expected_bits

    @pytest.mark.parametrize("mv", ["t", "w", "h"])
    def test_matching_bit_heuristic_is_accepted(self, mv):
        g = make_gfunction()
        spec = OrderingSpec(mv, mv)
        order = compute_grouped_order(
            g.count_variable, g.location_variables, spec, g.binary_circuit()
        )
        for variable in g.variables:
            assert sorted(order.bits_of(variable.name)) == sorted(variable.bit_names())

    def test_missing_circuit_rejected(self):
        g = make_gfunction()
        with pytest.raises(OrderingError):
            compute_grouped_order(
                g.count_variable, g.location_variables, OrderingSpec("w", "ml")
            )

    def test_all_registered_orderings_are_buildable(self):
        g = make_gfunction(num_components=4, max_defects=2)
        circuit = g.binary_circuit()
        for mv in MV_ORDERINGS:
            for bits in BIT_ORDERINGS:
                if bits in ("t", "w", "h") and bits != mv:
                    continue
                spec = OrderingSpec(mv, bits)
                order = compute_grouped_order(
                    g.count_variable, g.location_variables, spec, circuit
                )
                assert len(order.flat_bit_order()) == sum(v.width for v in g.variables)

"""Dynamic-reordering invariants: swaps and sifting preserve the functions."""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.core.method import YieldAnalyzer
from repro.engine.reorder import ReorderStats, sift, sift_grouped
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd import MDDManager
from repro.ordering import OrderingSpec
from repro.ordering.grouped import GroupedVariableOrder
from repro.soc import benchmark_problem

NAMES = ["a", "b", "c", "d", "e", "f"]


def truth_table(manager, node, names):
    return tuple(
        manager.evaluate(node, dict(zip(names, values)))
        for values in itertools.product((False, True), repeat=len(names))
    )


def interleaved_function(manager):
    """a.d + b.e + c.f — the classic order-sensitive function."""
    pairs = [("a", "d"), ("b", "e"), ("c", "f")]
    return manager.or_many(
        manager.and_(manager.var(x), manager.var(y)) for x, y in pairs
    )


class TestAdjacentSwap:
    def test_swap_preserves_truth_table_and_swaps_names(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        reference = truth_table(manager, f, NAMES)
        manager.swap_adjacent_levels(2)
        assert manager.variable_order == ("a", "b", "d", "c", "e", "f")
        assert truth_table(manager, f, NAMES) == reference

    def test_swap_round_trip_restores_the_order(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        size_before = manager.size(f)
        manager.swap_adjacent_levels(1)
        manager.swap_adjacent_levels(1)
        assert manager.variable_order == tuple(NAMES)
        assert manager.size(f) == size_before

    def test_swap_keeps_canonicity(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        manager.swap_adjacent_levels(0)
        # rebuilding the same function must land on the same handle
        g = interleaved_function(manager)
        assert f == g

    def test_swap_rejects_bad_levels(self):
        manager = BDDManager(NAMES)
        with pytest.raises(ValueError):
            manager.swap_adjacent_levels(len(NAMES) - 1)
        with pytest.raises(ValueError):
            manager.swap_adjacent_levels(-1)

    def test_mdd_swap_preserves_semantics(self):
        variables = [MultiValuedVariable("v%d" % i, [0, 1, 2]) for i in range(3)]
        manager = MDDManager(variables)
        f = manager.or_(
            manager.and_(manager.literal("v0", [1]), manager.literal("v2", [0, 2])),
            manager.literal("v1", [2]),
        )
        assignments = list(itertools.product([0, 1, 2], repeat=3))
        reference = [
            manager.evaluate(f, {"v0": a, "v1": b, "v2": c}) for a, b, c in assignments
        ]
        manager.swap_adjacent_levels(0)
        manager.swap_adjacent_levels(1)
        assert [v.name for v in manager.variables] == ["v1", "v2", "v0"]
        assert [
            manager.evaluate(f, {"v0": a, "v1": b, "v2": c}) for a, b, c in assignments
        ] == reference


class TestSifting:
    def test_sift_reduces_the_interleaved_order(self):
        # with the order a,d,b,e,c,f the function is linear; starting from
        # the interleaved order a,b,c,d,e,f sifting must shrink the diagram
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        reference = truth_table(manager, f, NAMES)
        size_before = manager.size(f)

        stats = manager.reorder(roots=[f])

        assert isinstance(stats, ReorderStats)
        assert stats.final_size <= stats.initial_size
        assert manager.size(f) < size_before
        assert truth_table(manager, f, NAMES) == reference

    def test_sift_never_grows_the_diagram(self):
        manager = BDDManager(["a", "d", "b", "e", "c", "f"])
        f = interleaved_function(manager)
        size_before = manager.size(f)  # already optimally ordered
        manager.reorder(roots=[f])
        assert manager.size(f) <= size_before

    def test_sift_protects_multiple_roots(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        g = manager.xor_(manager.var("a"), manager.var("f"))
        tf, tg = truth_table(manager, f, NAMES), truth_table(manager, g, NAMES)
        manager.reorder(roots=[f, g])
        assert truth_table(manager, f, NAMES) == tf
        assert truth_table(manager, g, NAMES) == tg

    def test_sift_range_restricts_positions(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        manager.ref(f)
        sift(manager, lower=0, upper=2, variables=["a", "b", "c"])
        # the restricted variables may only permute within levels 0..2
        assert sorted(manager.variable_order[:3]) == ["a", "b", "c"]
        assert manager.variable_order[3:] == ("d", "e", "f")

    def test_mdd_sift_preserves_semantics(self):
        variables = [MultiValuedVariable("v%d" % i, [0, 1, 2]) for i in range(4)]
        manager = MDDManager(variables)
        f = manager.or_(
            manager.and_(manager.literal("v0", [1, 2]), manager.literal("v2", [2])),
            manager.and_(manager.literal("v1", [0]), manager.literal("v3", [1, 2])),
        )
        assignments = list(itertools.product([0, 1, 2], repeat=4))
        reference = [
            manager.evaluate(f, dict(zip(("v0", "v1", "v2", "v3"), values)))
            for values in assignments
        ]
        stats = manager.reorder(roots=[f])
        assert stats.final_size <= stats.initial_size
        assert [
            manager.evaluate(f, dict(zip(("v0", "v1", "v2", "v3"), values)))
            for values in assignments
        ] == reference


class TestGroupedSifting:
    def _compiled_order(self, problem, spec, max_defects):
        analyzer = YieldAnalyzer(spec)
        return analyzer.compile(problem, max_defects=max_defects)

    def test_groups_stay_contiguous_and_order_is_valid(self):
        problem = benchmark_problem("MS2", mean_defects=2.0)
        analyzer = YieldAnalyzer(OrderingSpec("w", "ml"))
        compiled = analyzer.compile(problem, max_defects=3)
        grouped = compiled.grouped_order

        # rebuild the coded ROBDD and sift it through the public API
        from repro.bdd.builder import build_circuit_bdd
        from repro.core.gfunction import GeneralizedFaultTree

        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, 3
        )
        manager, root, _ = build_circuit_bdd(
            gfunction.binary_circuit(), grouped.flat_bit_order()
        )
        manager.ref(root)
        new_groups, stats = sift_grouped(manager, grouped.groups)

        # must be constructible: contiguity and permutation checks built in
        new_order = GroupedVariableOrder(new_groups)
        assert new_order.flat_bit_order() == list(manager.variable_order)
        assert sorted(new_order.variable_names) == sorted(grouped.variable_names)
        assert stats.final_size <= stats.initial_size

    def test_pipeline_probability_is_preserved_by_sifting(self):
        problem = benchmark_problem("MS2", mean_defects=2.0)
        static = YieldAnalyzer(OrderingSpec("w", "ml")).evaluate(
            problem, max_defects=3
        )
        sifted = YieldAnalyzer(OrderingSpec("w", "ml", sift=True)).evaluate(
            problem, max_defects=3
        )
        assert sifted.yield_estimate == pytest.approx(
            static.yield_estimate, abs=1e-12
        )
        assert sifted.error_bound == pytest.approx(static.error_bound, abs=1e-15)
        assert sifted.extra["sift_swaps"] >= 0

    def test_sifting_beats_or_matches_the_worst_static_ordering(self):
        # acceptance bar: on a Table 2 circuit, dynamic reordering must not
        # end up above the worst static ordering it started from
        problem = benchmark_problem("MS2", mean_defects=2.0)
        sizes = {}
        for mv in ("wv", "wvr", "vw", "vrw"):
            analyzer = YieldAnalyzer(OrderingSpec(mv, "ml"))
            robdd, _ = analyzer.diagram_sizes(problem, max_defects=3)
            sizes[mv] = robdd
        worst_mv = max(sizes, key=sizes.get)

        sifting = YieldAnalyzer(OrderingSpec(worst_mv, "ml", sift=True))
        sifted_robdd, _ = sifting.diagram_sizes(problem, max_defects=3)
        assert sifted_robdd <= sizes[worst_mv]

    def test_ordering_spec_sift_flag(self):
        spec = OrderingSpec("w", "ml", sift=True)
        assert spec.sift is True
        assert spec.key() == ("w", "ml", True)
        assert OrderingSpec("w", "ml").key() == ("w", "ml", False)


class TestSiftToConvergence:
    def test_convergence_never_worse_than_single_pass(self):
        from repro.engine.reorder import sift_to_convergence

        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        reference = truth_table(manager, f, NAMES)
        manager.ref(f)
        stats = sift_to_convergence(manager)
        assert stats.passes >= 1
        assert stats.final_size <= stats.initial_size
        assert truth_table(manager, f, NAMES) == reference

    def test_single_pass_stats_report_one_pass(self):
        manager = BDDManager(NAMES)
        f = interleaved_function(manager)
        manager.ref(f)
        stats = sift(manager)
        assert stats.passes == 1

    def test_max_passes_validation(self):
        from repro.engine.reorder import sift_to_convergence

        manager = BDDManager(NAMES)
        with pytest.raises(ValueError):
            sift_to_convergence(manager, max_passes=0)


class TestGroupedConvergenceAndWindow:
    def test_grouped_converge_with_window_preserves_probability(self):
        problem = benchmark_problem("MS2", mean_defects=2.0)
        grouped = YieldAnalyzer(OrderingSpec("vrw", "ml")).compile(
            problem, max_defects=3
        ).grouped_order

        from repro.bdd.builder import build_circuit_bdd
        from repro.core.gfunction import GeneralizedFaultTree

        gfunction = GeneralizedFaultTree(problem.fault_tree, problem.component_names, 3)
        manager, root, _ = build_circuit_bdd(
            gfunction.binary_circuit(), grouped.flat_bit_order()
        )
        manager.ref(root)
        single_groups, single = sift_grouped(manager, grouped.groups)

        manager2, root2, _ = build_circuit_bdd(
            gfunction.binary_circuit(), grouped.flat_bit_order()
        )
        manager2.ref(root2)
        converged_groups, converged = sift_grouped(
            manager2, grouped.groups, converge=True, window=3
        )
        assert converged.passes >= 1
        assert converged.final_size <= single.final_size
        # the reordered groups must still form a valid grouped order
        order = GroupedVariableOrder(converged_groups)
        assert order.flat_bit_order() == list(manager2.variable_order)

    def test_window_validation(self):
        problem = benchmark_problem("MS2", mean_defects=2.0)
        grouped = YieldAnalyzer(OrderingSpec("w", "ml")).compile(
            problem, max_defects=2
        ).grouped_order

        from repro.bdd.builder import build_circuit_bdd
        from repro.core.gfunction import GeneralizedFaultTree

        gfunction = GeneralizedFaultTree(problem.fault_tree, problem.component_names, 2)
        manager, root, _ = build_circuit_bdd(
            gfunction.binary_circuit(), grouped.flat_bit_order()
        )
        with pytest.raises(ValueError):
            sift_grouped(manager, grouped.groups, window=5)

"""Engine-kernel invariants: GC safety, slot reuse, cache statistics."""

import itertools

import pytest

from repro.bdd import BDDManager
from repro.engine.kernel import BoundedComputedTable, CacheStats
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd import MDDManager


def truth_table(manager, node, names):
    return tuple(
        manager.evaluate(node, dict(zip(names, values)))
        for values in itertools.product((False, True), repeat=len(names))
    )


NAMES = ["a", "b", "c", "d", "e"]


def build_functions(manager):
    a, b, c, d, e = (manager.var(n) for n in NAMES)
    f1 = manager.or_(manager.and_(a, d), manager.and_(b, e))
    f2 = manager.xor_(c, manager.and_(a, e))
    f3 = manager.ite(f1, f2, manager.not_(c))
    return [f1, f2, f3]


class TestBoundedComputedTable:
    def test_get_put_and_stats(self):
        table = BoundedComputedTable(bound=8)
        assert table.get("missing") is None
        table.put("k", 42)
        assert table.get("k") == 42
        assert table.stats.hits == 1
        assert table.stats.misses == 1
        assert table.stats.insertions == 1

    def test_zero_valued_entries_are_hits(self):
        # FALSE is handle 0; a cached 0 must not be mistaken for a miss
        table = BoundedComputedTable(bound=8)
        table.put("k", 0)
        assert table.get("k") == 0
        assert table.stats.hits == 1

    def test_eviction_keeps_size_bounded(self):
        table = BoundedComputedTable(bound=10)
        for i in range(50):
            table.put(i, i)
        assert len(table) <= 10
        assert table.stats.evictions > 0
        # the most recent insertion always survives
        assert table.get(49) == 49

    def test_clear_counts(self):
        table = BoundedComputedTable(bound=8)
        table.put("k", 1)
        table.clear()
        assert len(table) == 0
        assert table.stats.clears == 1
        assert table.get("k") is None

    def test_rejects_tiny_bound(self):
        with pytest.raises(ValueError):
            BoundedComputedTable(bound=1)

    def test_unbounded_table_never_evicts(self):
        table = BoundedComputedTable(bound=None)
        for i in range(5000):
            table.put(i, i)
        assert len(table) == 5000
        assert table.stats.evictions == 0


class TestCacheStatistics:
    def test_counters_are_monotone_across_operations(self):
        manager = BDDManager(NAMES)
        previous = CacheStats().as_dict()
        for _ in range(5):
            build_functions(manager)
            current = manager.kernel_stats().caches["ite"]
            for key in ("hits", "misses", "insertions", "evictions"):
                assert current[key] >= previous[key]
            previous = current
        assert previous["hits"] > 0  # rebuilt functions hit the cache

    def test_hit_rate(self):
        stats = CacheStats()
        assert stats.hit_rate == 0.0
        stats.hits = 3
        stats.misses = 1
        assert stats.hit_rate == pytest.approx(0.75)


class TestGarbageCollection:
    def test_gc_never_frees_nodes_reachable_from_live_roots(self):
        manager = BDDManager(NAMES)
        functions = build_functions(manager)
        tables = [truth_table(manager, f, NAMES) for f in functions]
        for f in functions:
            manager.ref(f)
        protected = set()
        for f in functions:
            protected |= manager.reachable(f)

        manager.garbage_collect()

        for handle in protected:
            assert manager.level(handle) != -1 or manager.is_terminal(handle)
        for f, table in zip(functions, tables):
            assert truth_table(manager, f, NAMES) == table

    def test_gc_reclaims_unreferenced_diagrams(self):
        manager = BDDManager(NAMES)
        keep, drop, _ = build_functions(manager)
        manager.ref(keep)
        live_before = manager.num_live_nodes
        freed = manager.garbage_collect()
        assert freed > 0
        assert manager.num_live_nodes == live_before - freed
        # the kept function still evaluates
        truth_table(manager, keep, NAMES)

    def test_deref_then_gc_frees_and_slots_are_reused(self):
        manager = BDDManager(NAMES)
        f1, f2, f3 = build_functions(manager)
        for f in (f1, f2, f3):
            manager.ref(f)
        manager.garbage_collect()
        live_with_all = manager.num_live_nodes

        manager.deref(f3)
        manager.garbage_collect()
        assert manager.num_live_nodes < live_with_all
        assert manager.num_free_slots > 0

        free_before = manager.num_free_slots
        manager.and_(f1, f2)  # allocates through the free list first
        assert manager.num_free_slots < free_before

    def test_created_count_is_monotone_despite_reuse(self):
        manager = BDDManager(NAMES)
        f1, _, _ = build_functions(manager)
        manager.ref(f1)
        created = manager.num_nodes_allocated
        manager.garbage_collect()
        assert manager.num_nodes_allocated == created
        build_functions(manager)
        assert manager.num_nodes_allocated > created

    def test_deref_without_ref_raises(self):
        manager = BDDManager(NAMES)
        f = manager.and_(manager.var("a"), manager.var("b"))
        with pytest.raises(ValueError):
            manager.deref(f)

    def test_checkpoint_runs_gc_once_threshold_is_passed(self):
        manager = BDDManager(NAMES, gc_threshold=4)
        build_functions(manager)  # garbage: nothing is referenced
        freed = manager.checkpoint()
        assert freed > 0
        assert manager.kernel_stats().gc_runs >= 1

    def test_mdd_gc_mirrors_bdd_gc(self):
        variables = [MultiValuedVariable("v%d" % i, [0, 1, 2]) for i in range(3)]
        manager = MDDManager(variables)
        keep = manager.and_(
            manager.literal("v0", [1, 2]), manager.literal("v2", [0, 2])
        )
        manager.or_(manager.literal("v1", [0]), manager.literal("v2", [1]))  # garbage
        manager.ref(keep)
        assignments = list(itertools.product([0, 1, 2], repeat=3))
        before = [
            manager.evaluate(keep, {"v0": a, "v1": b, "v2": c})
            for a, b, c in assignments
        ]
        freed = manager.garbage_collect()
        assert freed > 0
        after = [
            manager.evaluate(keep, {"v0": a, "v1": b, "v2": c})
            for a, b, c in assignments
        ]
        assert before == after

    def test_kernel_stats_snapshot(self):
        manager = BDDManager(NAMES)
        build_functions(manager)
        stats = manager.kernel_stats()
        assert stats.nodes_created == manager.num_nodes_allocated
        assert stats.live_nodes == manager.num_live_nodes
        assert "ite" in stats.caches

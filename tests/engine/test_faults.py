"""Fault-tolerant dispatch: every injected fault class must be absorbed.

The deterministic fault harness (:mod:`repro.engine.faults`) fires at
well-known sites; the supervision layer (:mod:`repro.engine.supervise`)
must turn every fault into retries, degradations or in-parent
quarantine — the sweep results stay **bit-for-bit identical** to a clean
run, and every transition is visible in the ``fault.*`` / ``retry.*`` /
``supervise.*`` metrics.
"""

import os

import pytest

from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine import faults
from repro.engine.faults import PLAN_ENV, FaultPlan, InjectedFault
from repro.engine.service import SweepService
from repro.engine.supervise import (
    Backoff,
    DegradationLadder,
    ShardSupervisor,
    ShmJanitor,
)
from repro.faulttree import FaultTreeBuilder


def build_tree():
    ft = FaultTreeBuilder("faults-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="faults-tmr")


DENSITIES = [0.2 + 0.05 * index for index in range(48)]


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    """Fault plans are process-global state: never leak one across tests."""
    monkeypatch.delenv(PLAN_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


# --------------------------------------------------------------------- #
# The harness itself
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_spec_forms_int_list_and_dict(self):
        plan = FaultPlan.from_spec(
            {
                "worker.kill": 2,
                "shard.unpickle": [1, 3],
                "worker.hang": {"at": [1], "delay": 0.5},
                "store.corrupt": {"every": 2},
            }
        )
        assert plan.check("worker.kill") is None  # occurrence 1
        assert plan.check("worker.kill") is not None  # occurrence 2
        assert plan.check("shard.unpickle") is not None  # 1
        assert plan.check("shard.unpickle") is None  # 2
        assert plan.check("shard.unpickle") is not None  # 3
        assert plan.check("worker.hang").delay == 0.5
        assert plan.check("store.corrupt") is None  # 1
        assert plan.check("store.corrupt") is not None  # every 2nd

    def test_unknown_site_is_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultPlan.from_spec({"worker.explode": 1})

    def test_json_round_trip(self):
        plan = FaultPlan.from_spec(
            {"worker.kill": [1], "worker.hang": {"at": [2], "delay": 3.0}}
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_json() == plan.to_json()

    def test_reset_restarts_the_occurrence_counters(self):
        plan = FaultPlan.from_spec({"shm.create": 1})
        assert plan.check("shm.create") is not None
        assert plan.check("shm.create") is None
        plan.reset()
        assert plan.check("shm.create") is not None

    def test_env_var_installs_a_plan(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, '{"shm.create": {"at": [1]}}')
        faults.clear()  # force re-resolution of the env var
        plan = faults.active()
        assert plan is not None
        with pytest.raises(InjectedFault):
            faults.fire("shm.create")

    def test_malformed_env_var_is_ignored(self, monkeypatch):
        monkeypatch.setenv(PLAN_ENV, "{not json")
        faults.clear()
        assert faults.active() is None

    def test_fire_without_a_plan_is_free_and_false(self):
        faults.install(None)
        assert faults.fire("store.corrupt") is False

    def test_injected_fault_survives_pickling(self):
        # a worker->parent exception that cannot unpickle kills the
        # pool's result-handler thread; InjectedFault must round-trip
        import pickle

        exc = pickle.loads(pickle.dumps(InjectedFault("shm.create", 3)))
        assert exc.site == "shm.create"
        assert exc.occurrence == 3


class TestNetworkFaultSites:
    """The four ``net.*`` sites the remote fabric is chaos-tested through."""

    def test_refuse_and_drop_raise_injected_faults(self):
        faults.install(FaultPlan.from_spec({"net.refuse": 1, "net.drop": 1}))
        with pytest.raises(InjectedFault) as info:
            faults.fire("net.refuse")
        assert info.value.site == "net.refuse"
        with pytest.raises(InjectedFault):
            faults.fire("net.drop")

    def test_delay_sleeps_then_reports_not_fired(self):
        import time

        faults.install(FaultPlan.from_spec({"net.delay": {"at": [1], "delay": 0.2}}))
        started = time.perf_counter()
        assert faults.fire("net.delay") is False  # caller proceeds normally
        assert time.perf_counter() - started >= 0.2

    def test_garbage_returns_true_for_caller_side_corruption(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        faults.install(FaultPlan.from_spec({"net.garbage": 1}))
        assert faults.fire("net.garbage", registry) is True
        assert registry.counter("fault.injected.net.garbage") == 1
        assert faults.fire("net.garbage", registry) is False  # occurrence 2

    def test_remote_is_the_first_ladder_rung(self):
        ladder = DegradationLadder(cooldown=2)
        assert ladder.preferred("remote") == "remote"
        ladder.note_failure("remote")
        assert ladder.blocked_routes() == ["remote"]
        assert ladder.preferred("remote") == "shm"
        # local successes pay the remote block down again
        ladder.note_success("shm")
        ladder.note_success("shm")
        assert ladder.blocked_routes() == []
        assert ladder.allows("remote")


class TestBackoff:
    def test_delays_grow_exponentially_and_cap(self):
        backoff = Backoff(base=0.1, factor=2.0, cap=0.5, seed=7)
        delays = [backoff.delay(attempt) for attempt in range(1, 6)]
        # jitter is in [0.5, 1.0] x the full delay
        assert 0.05 <= delays[0] <= 0.1
        assert 0.1 <= delays[1] <= 0.2
        assert all(delay <= 0.5 for delay in delays)

    def test_same_seed_reproduces_the_sequence(self):
        a = [Backoff(seed=3).delay(n) for n in range(1, 6)]
        b = [Backoff(seed=3).delay(n) for n in range(1, 6)]
        assert a == b
        c = [Backoff(seed=4).delay(n) for n in range(1, 6)]
        assert a != c

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            Backoff(base=-1)
        with pytest.raises(ValueError):
            Backoff(factor=0.5)


class TestDegradationLadder:
    def test_failure_blocks_and_successes_restore(self):
        ladder = DegradationLadder(cooldown=2)
        assert ladder.allows("shm")
        ladder.note_failure("shm")
        assert not ladder.allows("shm")
        assert ladder.preferred() == "pickled"
        ladder.note_success("pickled")
        assert not ladder.allows("shm")  # one success paid one of two down
        ladder.note_success("pickled")
        assert ladder.allows("shm")  # cascade steps back up
        assert ladder.preferred() == "shm"

    def test_parent_route_is_never_blocked(self):
        ladder = DegradationLadder(cooldown=1)
        ladder.note_failure("shm")
        ladder.note_failure("pickled")
        assert ladder.preferred() == "parent"

    def test_disabled_ladder_keeps_no_state(self):
        ladder = DegradationLadder(enabled=False)
        ladder.note_failure("shm")
        assert ladder.allows("shm")

    def test_restore_transition_is_counted(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        ladder = DegradationLadder(cooldown=1)
        ladder.note_failure("shm", registry)
        ladder.note_success("pickled", registry)
        assert registry.counter("fault.degrade.shm") == 1
        assert registry.counter("fault.restore.shm") == 1


class TestShmJanitor:
    def test_sweep_unlinks_adopted_blocks(self):
        shared_memory = pytest.importorskip("multiprocessing.shared_memory")
        janitor = ShmJanitor()
        block = shared_memory.SharedMemory(create=True, size=64)
        name = block.name
        janitor.adopt(block)
        assert janitor.orphans() == [name]
        assert janitor.sweep() == 1
        assert janitor.orphans() == []
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_release_is_idempotent_and_removes_from_orphans(self):
        shared_memory = pytest.importorskip("multiprocessing.shared_memory")
        janitor = ShmJanitor()
        block = shared_memory.SharedMemory(create=True, size=64)
        janitor.adopt(block)
        janitor.release(block, unlink=True)
        assert janitor.orphans() == []
        janitor.release(block, unlink=True)  # second release must not raise
        assert janitor.sweep() == 0

    def test_sweep_reclaims_a_segment_leaked_by_a_dead_process(self, tmp_path):
        """A child leaks a real segment; the parent's sweep returns it.

        This is the janitor's actual production scenario — a SIGKILLed
        worker never runs its cleanup — so the test crosses a real
        process boundary instead of simulating the leak in-process.
        """
        shared_memory = pytest.importorskip("multiprocessing.shared_memory")
        import subprocess
        import sys

        child = (
            "import os, sys\n"
            "from multiprocessing import resource_tracker, shared_memory\n"
            "block = shared_memory.SharedMemory(create=True, size=128)\n"
            "block.buf[:4] = b'leak'\n"
            # stop the child's resource tracker from reclaiming the block
            # at exit: the leak must be real, the parent's job to sweep
            "try:\n"
            "    resource_tracker.unregister(block._name, 'shared_memory')\n"
            "except Exception:\n"
            "    pass\n"
            "print(block.name, flush=True)\n"
            "os._exit(0)\n"  # no cleanup, like a killed worker
        )
        result = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 0, result.stderr
        name = result.stdout.strip()
        assert name

        # the leak outlived its creator: the parent can still attach
        leaked = shared_memory.SharedMemory(name=name)
        assert bytes(leaked.buf[:4]) == b"leak"

        janitor = ShmJanitor()
        janitor.adopt(leaked)
        assert janitor.orphans() == [name]
        assert janitor.sweep() == 1
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)


# --------------------------------------------------------------------- #
# End-to-end: every fault class yields bit-identical sweep results
# --------------------------------------------------------------------- #


def run_sweep(tmp_path, name, fault_plan=None, **kwargs):
    faults.clear()
    service = SweepService(
        workers=2,
        shard_size=8,
        store_dir=str(tmp_path / name),
        fault_plan=fault_plan,
        **kwargs,
    )
    try:
        rows = service.density_sweep(make_problem, DENSITIES, max_defects=3)
        counters = service.registry.snapshot()["counters"]
        dispatched = service.stats.shards_dispatched
    finally:
        service.close()
        faults.clear()
    return rows, counters, dispatched


class TestFaultInjectionEndToEnd:
    """One test per fault class: identical results, nonzero fault metrics."""

    @pytest.fixture(scope="class")
    def clean(self, tmp_path_factory):
        rows, counters, dispatched = run_sweep(
            tmp_path_factory.mktemp("clean"), "clean"
        )
        return rows, dispatched

    def _run_faulted(self, tmp_path, clean, spec, **kwargs):
        clean_rows, dispatched = clean
        if dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        rows, counters, _ = run_sweep(
            tmp_path, "faulted", fault_plan=FaultPlan.from_spec(spec), **kwargs
        )
        assert rows == clean_rows  # bit-for-bit despite the faults
        return counters

    def test_killed_worker_does_not_abort_the_sweep(self, tmp_path, clean):
        counters = self._run_faulted(tmp_path, clean, {"worker.kill": {"at": [1]}})
        assert counters.get("fault.worker_lost", 0) >= 1
        assert counters.get("supervise.respawns", 0) >= 1

    def test_hung_worker_trips_the_deadline_watchdog(self, tmp_path, clean):
        counters = self._run_faulted(
            tmp_path,
            clean,
            {"worker.hang": {"at": [1], "delay": 30}},
            shard_timeout=0.75,
            max_retries=1,
        )
        assert counters.get("fault.shard_timeout", 0) >= 1
        assert counters.get("supervise.respawns", 0) >= 1

    def test_unpicklable_shard_is_retried_with_backoff(self, tmp_path, clean):
        counters = self._run_faulted(
            tmp_path, clean, {"shard.unpickle": {"at": [1]}}
        )
        assert counters.get("fault.shard_error", 0) >= 1
        assert counters.get("retry.attempts", 0) >= 1

    def test_shm_creation_failure_degrades_to_pickled(self, tmp_path, clean):
        counters = self._run_faulted(tmp_path, clean, {"shm.create": {"at": [1]}})
        assert counters.get("fault.shm_create", 0) >= 1
        assert counters.get("fault.degrade.shm", 0) >= 1
        assert counters.get("fault.injected.shm.create", 0) >= 1

    def test_corrupt_store_entry_is_quarantined_and_survived(self, tmp_path, clean):
        # the pool forks before the parent's first store load, so each
        # worker's occurrence counter starts at 0: occurrence 1 fires on
        # every worker's first read and damages the committed entry (the
        # parent's own occurrence-1 firing hits a not-yet-committed entry,
        # a no-op)
        counters = self._run_faulted(
            tmp_path, clean, {"store.corrupt": {"at": [1]}}
        )
        assert counters.get("fault.store_corrupt", 0) >= 1
        assert counters.get("fault.injected.store.corrupt", 0) >= 1

    def test_quarantined_store_entry_lands_in_the_quarantine_dir(self, tmp_path, clean):
        _, dispatched = clean
        if dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        run_sweep(
            tmp_path,
            "quarantine",
            fault_plan=FaultPlan.from_spec({"store.corrupt": {"at": [1]}}),
        )
        quarantine = tmp_path / "quarantine" / "quarantine"
        assert quarantine.is_dir()
        assert any(quarantine.iterdir())


class TestMidSweepDegradation:
    def test_shm_failure_mid_sweep_falls_back_per_group(self, tmp_path):
        """First group dispatches over shm, the second falls back to pickled."""
        from repro.engine.service import SweepPoint

        def run(name, fault_plan=None):
            faults.clear()
            service = SweepService(
                workers=2,
                shard_size=4,
                store_dir=str(tmp_path / name),
                fault_plan=fault_plan,
            )
            try:
                # two structure groups (different truncations), each sharded
                points = [
                    SweepPoint(make_problem(m), max_defects=3) for m in DENSITIES[:16]
                ] + [
                    SweepPoint(make_problem(m), max_defects=4) for m in DENSITIES[:16]
                ]
                results = [r.yield_estimate for r in service.evaluate_batch(points)]
                counters = service.registry.snapshot()["counters"]
                dispatched = service.stats.shards_dispatched
                shm_bytes = service.stats.shm_bytes
            finally:
                service.close()
                faults.clear()
            return results, counters, dispatched, shm_bytes

        clean, _, dispatched, clean_shm = run("clean")
        if dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        rows, counters, _, shm_bytes = run(
            "faulted", FaultPlan.from_spec({"shm.create": {"at": [2]}})
        )
        assert rows == clean
        assert counters.get("fault.shm_create", 0) >= 1
        # the first group still used the zero-copy route...
        assert 0 < shm_bytes < clean_shm
        # ...and the clean run used it for both groups
        assert counters.get("fault.degrade.shm", 0) >= 1


class TestPoolTeardown:
    def test_dispatch_error_terminates_the_pool_exactly_once(
        self, tmp_path, monkeypatch
    ):
        """An exception while draining results must not double-terminate."""
        service = SweepService(workers=2, shard_size=8, store_dir=str(tmp_path))
        pool = service.ensure_workers()
        if pool is None:
            pytest.skip("platform cannot spawn worker processes")
        calls = {"terminate": 0}
        original = pool.terminate

        def counting_terminate():
            calls["terminate"] += 1
            original()

        monkeypatch.setattr(pool, "terminate", counting_terminate)

        def exploding_dispatch(self, jobs, worker, **kwargs):
            raise RuntimeError("boom while draining")

        monkeypatch.setattr(ShardSupervisor, "dispatch", exploding_dispatch)
        rows = service.density_sweep(make_problem, DENSITIES, max_defects=3)

        reference = SweepService().density_sweep(
            make_problem, DENSITIES, max_defects=3
        )
        assert rows == reference  # the serial fallback still answered
        assert calls["terminate"] == 1
        service.close()  # pool reference already cleared: still exactly once
        assert calls["terminate"] == 1

    def test_close_is_reentrant(self, tmp_path):
        service = SweepService(workers=2, store_dir=str(tmp_path))
        if service.ensure_workers() is None:
            pytest.skip("platform cannot spawn worker processes")
        service.close()
        service.close()
        assert service._pool is None
        assert service.respawn_workers() is not None
        service.close()


class TestSuppressedFaultAccounting:
    def test_suppressed_cleanup_failures_are_counted(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        faults.note_suppressed(registry, "shm.unlink", OSError("gone"))
        faults.note_suppressed(registry, "pool.terminate", OSError("dead"))
        assert registry.counter("fault.suppressed") == 2
        assert registry.counter("fault.suppressed.shm.unlink") == 1
        assert registry.counter("fault.suppressed.pool.terminate") == 1

    def test_note_suppressed_tolerates_no_registry(self):
        faults.note_suppressed(None, "shm.close", OSError("x"))  # must not raise

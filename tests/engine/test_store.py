"""Persistent structure store: format, round-trips, service warm-starts."""

import json
import os

import pytest

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine.store import FORMAT_VERSION, StoreError, StructureStore, digest_of
from repro.engine.service import SweepPoint, SweepService, structure_key
from repro.faulttree import FaultTreeBuilder
from repro.ordering import OrderingSpec


def build_tree():
    ft = FaultTreeBuilder("store-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="store-tmr")


MEANS = [0.4, 0.8, 1.2, 1.6, 2.0]
ORDERING = OrderingSpec("w", "ml")


def compile_structure(truncation=3):
    problem = make_problem(1.0)
    compiled = YieldAnalyzer(ORDERING).compile_for_truncation(problem, truncation)
    skey = structure_key(problem, truncation, ORDERING)
    return problem, compiled, skey


class TestStoreFormat:
    def test_save_then_load_restores_an_equivalent_structure(self, tmp_path):
        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        nbytes = store.save(skey, compiled)
        assert nbytes > 0
        assert store.contains(skey)

        restored, loaded_bytes = store.load(skey)
        assert loaded_bytes == nbytes
        assert restored.from_store
        assert restored.mdd_manager is None
        assert restored.truncation == compiled.truncation
        assert restored.romdd_size == compiled.romdd_size
        assert restored.component_names == compiled.component_names
        assert restored.variable_names == compiled.variable_names
        assert restored.level_profile == compiled.level_profile
        assert restored.linearized().layers == compiled.linearized().layers

    def test_v2_layout_and_mmap_load(self, tmp_path):
        """New saves write uncompressed per-array .npy files (format v2)."""
        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        digest = digest_of(skey)
        with open(store._json_path(digest)) as handle:
            meta = json.load(handle)
        assert meta["version"] == FORMAT_VERSION == 2
        assert meta["linearized"]["encoding"] == "npy"
        for suffix in (".kids.npy", ".seg.npy", ".levels.npy", ".bounds.npy"):
            assert os.path.exists(store._sidecar(digest, suffix))
        assert not os.path.exists(store._sidecar(digest, ".npz"))

        plain, _ = store.load(skey)
        assert plain.from_store and not plain.store_mmapped
        mmapped, _ = store.load(skey, mmap=True)
        assert mmapped.from_store and mmapped.store_mmapped
        problems = [make_problem(m) for m in MEANS]
        fresh = [r.yield_estimate for r in compiled.evaluate_many(problems)]
        assert [r.yield_estimate for r in plain.evaluate_many(problems)] == fresh
        assert [r.yield_estimate for r in mmapped.evaluate_many(problems)] == fresh

    def test_loading_a_missing_entry_is_a_miss(self, tmp_path):
        store = StructureStore(str(tmp_path / "store"))
        _, _, skey = compile_structure()
        assert store.load(skey) is None
        assert not store.contains(skey)

    def test_corrupt_metadata_is_a_miss_not_an_error(self, tmp_path):
        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        json_path = store._json_path(digest_of(skey))
        with open(json_path, "w") as handle:
            handle.write("{not json")
        assert store.load(skey) is None

    def test_version_skew_is_a_miss(self, tmp_path):
        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        json_path = store._json_path(digest_of(skey))
        with open(json_path) as handle:
            meta = json.load(handle)
        meta["version"] = FORMAT_VERSION + 1
        with open(json_path, "w") as handle:
            json.dump(meta, handle)
        assert store.load(skey) is None

    def test_missing_arrays_file_is_a_miss(self, tmp_path):
        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        kids_path = store._sidecar(digest_of(skey), ".kids.npy")
        if os.path.exists(kids_path):
            os.unlink(kids_path)
            assert store.load(skey) is None

    def test_json_encoded_arrays_round_trip(self, tmp_path, monkeypatch):
        """Entries written without numpy (arrays in JSON) load everywhere."""
        import repro.engine.store as store_module

        problem, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        monkeypatch.setattr(store_module, "_np", None)
        store.save(skey, compiled)
        digest = digest_of(skey)
        for suffix in (".npz", ".kids.npy", ".seg.npy", ".levels.npy", ".bounds.npy"):
            assert not os.path.exists(store._sidecar(digest, suffix))
        monkeypatch.undo()

        restored, _ = store.load(skey)
        assert restored.linearized().layers == compiled.linearized().layers
        fresh = compiled.evaluate_many([make_problem(m) for m in MEANS])
        loaded = restored.evaluate_many([make_problem(m) for m in MEANS])
        for a, b in zip(fresh, loaded):
            assert b.yield_estimate == a.yield_estimate

    def test_entries_info_remove_and_clear(self, tmp_path):
        store = StructureStore(str(tmp_path / "store"))
        assert store.entries() == []
        problem, compiled, skey = compile_structure(truncation=2)
        _, compiled3, skey3 = compile_structure(truncation=3)
        store.save(skey, compiled)
        store.save(skey3, compiled3)

        entries = store.entries()
        assert len(entries) == 2
        assert {entry.truncation for entry in entries} == {2, 3}
        assert store.total_bytes() == sum(entry.nbytes for entry in entries)

        digest = digest_of(skey)
        meta = store.meta_of(digest[:12])
        assert meta["structure"]["truncation"] == 2
        assert store.meta_of("ffff") is None

        assert store.remove(digest[:12]) == 1
        assert len(store.entries()) == 1
        assert store.clear() == 1
        assert store.entries() == []

    def test_ambiguous_digest_prefix_raises(self, tmp_path):
        store = StructureStore(str(tmp_path / "store"))
        problem, compiled, skey = compile_structure(truncation=2)
        _, compiled3, skey3 = compile_structure(truncation=3)
        store.save(skey, compiled)
        store.save(skey3, compiled3)
        with pytest.raises(StoreError):
            store.meta_of("")

    def test_store_requires_a_directory(self):
        with pytest.raises(StoreError):
            StructureStore("")

    def test_saving_a_profileless_structure_raises(self, tmp_path):
        problem, compiled, skey = compile_structure()
        compiled.level_profile = None
        with pytest.raises(StoreError):
            StructureStore(str(tmp_path / "store")).save(skey, compiled)


class TestServiceWarmStart:
    def test_second_service_warm_starts_from_the_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = SweepService(ordering=ORDERING, store_dir=store_dir)
        cold_rows = cold.density_sweep(make_problem, MEANS, max_defects=3)
        assert cold.stats.structures_built == 1
        assert cold.stats.store_misses == 1
        assert cold.stats.store_bytes > 0

        warm = SweepService(ordering=ORDERING, store_dir=store_dir)
        warm_rows = warm.density_sweep(make_problem, MEANS, max_defects=3)
        assert warm.stats.structures_built == 0
        assert warm.stats.store_hits == 1
        assert warm.stats.store_misses == 0
        # warm-start results are bit-for-bit the cold-build results
        assert warm_rows == cold_rows

    def test_gradients_through_a_restored_structure(self, tmp_path):
        store_dir = str(tmp_path / "store")
        cold = SweepService(ordering=ORDERING, store_dir=store_dir)
        reference = cold.gradients(make_problem(1.0), max_defects=3)

        warm = SweepService(ordering=ORDERING, store_dir=store_dir)
        restored = warm.gradients(make_problem(1.0), max_defects=3)
        assert warm.stats.structures_built == 0
        assert warm.stats.store_hits == 1
        assert restored.d_yield_d_raw == reference.d_yield_d_raw
        assert restored.sensitivity == reference.sensitivity
        assert restored.d_failure_d_count == reference.d_failure_d_count

    def test_memory_lru_is_consulted_before_the_store(self, tmp_path):
        service = SweepService(ordering=ORDERING, store_dir=str(tmp_path / "store"))
        service.density_sweep(make_problem, MEANS, max_defects=3)
        hits_before = service.stats.store_hits
        service.density_sweep(make_problem, [2.4, 2.8], max_defects=3)
        assert service.stats.store_hits == hits_before
        assert service.stats.structure_reuses >= 1

    def test_store_survives_service_clear(self, tmp_path):
        store_dir = str(tmp_path / "store")
        service = SweepService(ordering=ORDERING, store_dir=store_dir)
        service.density_sweep(make_problem, MEANS, max_defects=3)
        service.clear()
        service.density_sweep(make_problem, [2.4], max_defects=3)
        assert service.stats.structures_built == 1
        assert service.stats.store_hits == 1

    def test_results_match_the_storeless_service_exactly(self, tmp_path):
        plain = SweepService(ordering=ORDERING)
        stored = SweepService(ordering=ORDERING, store_dir=str(tmp_path / "store"))
        plain_rows = plain.density_sweep(make_problem, MEANS, max_defects=3)
        stored_rows = stored.density_sweep(make_problem, MEANS, max_defects=3)
        assert plain_rows == stored_rows


class TestWorkerWarmStart:
    def test_shard_payloads_shrink_when_the_store_is_enabled(self, tmp_path):
        densities = [0.2 + 0.05 * index for index in range(48)]

        plain = SweepService(ordering=ORDERING, workers=2, shard_size=8)
        plain.density_sweep(make_problem, densities, max_defects=3)
        plain_bytes = plain.stats.shard_payload_bytes
        plain_shards = plain.stats.shards_dispatched
        plain.close()
        if plain_shards == 0:
            pytest.skip("platform cannot spawn worker processes")

        stored = SweepService(
            ordering=ORDERING,
            workers=2,
            shard_size=8,
            store_dir=str(tmp_path / "store"),
        )
        stored.density_sweep(make_problem, densities, max_defects=3)
        stored_bytes = stored.stats.shard_payload_bytes
        stored.close()
        # same sweep, same shard count — but the structure no longer rides
        # along with every shard, only a store reference does
        assert stored.stats.shards_dispatched == plain_shards
        assert stored_bytes < plain_bytes

    def test_workers_warm_start_from_the_store(self, tmp_path):
        densities = [0.2 + 0.05 * index for index in range(48)]
        store_dir = str(tmp_path / "store")
        # warm the store in one (serial) service ...
        SweepService(ordering=ORDERING, store_dir=store_dir).evaluate(
            make_problem(1.0), max_defects=3
        )
        # ... and fan out in another: workers resolve the structure from
        # disk, nobody rebuilds it
        service = SweepService(
            ordering=ORDERING, workers=2, shard_size=8, store_dir=store_dir
        )
        rows = service.density_sweep(make_problem, densities, max_defects=3)
        service.close()
        if service.stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert service.stats.structures_built == 0
        assert service.stats.store_hits >= 1

        reference = SweepService(ordering=ORDERING)
        expected = reference.density_sweep(make_problem, densities, max_defects=3)
        assert rows == expected


class TestVerifyAndQuarantine:
    def test_verify_entry_passes_on_a_clean_save(self, tmp_path):
        _, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        ok, problems = store.verify_entry(digest_of(skey))
        assert ok and problems == []

    def test_save_records_per_array_checksums(self, tmp_path):
        _, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        with open(store._json_path(digest_of(skey))) as handle:
            meta = json.load(handle)
        checksums = meta.get("checksums")
        if checksums:  # npy sidecars only exist with numpy
            assert all(len(value) == 64 for value in checksums.values())

    def test_verify_detects_a_silent_bit_flip(self, tmp_path):
        """Damage that still parses is caught by the recorded checksums."""
        _, compiled, skey = compile_structure()
        store = StructureStore(str(tmp_path / "store"))
        store.save(skey, compiled)
        digest = digest_of(skey)
        kids_path = store._sidecar(digest, ".kids.npy")
        if not os.path.exists(kids_path):
            pytest.skip("no npy sidecars without numpy")
        with open(kids_path, "r+b") as handle:
            handle.seek(os.path.getsize(kids_path) - 1)
            byte = handle.read(1)
            handle.seek(-1, os.SEEK_CUR)
            handle.write(bytes([byte[0] ^ 0xFF]))
        ok, problems = store.verify_entry(digest)
        assert not ok
        assert any("checksum" in problem for problem in problems)

    def test_verify_all_repair_quarantines_corrupt_entries(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = StructureStore(str(tmp_path / "store"), registry=registry)
        _, compiled, skey = compile_structure()
        store.save(skey, compiled)
        other = make_problem(2.0)
        okey = structure_key(other, 4, ORDERING)
        store.save(okey, YieldAnalyzer(ORDERING).compile_for_truncation(other, 4))

        digest = digest_of(skey)
        kids_path = store._sidecar(digest, ".kids.npy")
        if not os.path.exists(kids_path):
            pytest.skip("no npy sidecars without numpy")
        with open(kids_path, "r+b") as handle:
            handle.truncate(os.path.getsize(kids_path) // 2)

        rows = store.verify_all(repair=False)
        assert len(rows) == 2
        assert sum(1 for _, ok, _ in rows if not ok) == 1
        assert store.contains(skey)  # report-only: nothing moved yet

        rows = store.verify_all(repair=True)
        assert sum(1 for _, ok, _ in rows if not ok) == 1
        assert not store.contains(skey)
        assert store.contains(okey)
        quarantine_dir = tmp_path / "store" / StructureStore.QUARANTINE_DIR
        assert quarantine_dir.is_dir() and any(quarantine_dir.iterdir())
        assert registry.counter("fault.store_quarantined") == 1
        # entries() must not list the quarantined corpse
        assert [entry.digest for entry in store.entries()] == [digest_of(okey)]

    def test_load_quarantines_a_corrupt_entry_and_rebuild_recommits(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        store = StructureStore(str(tmp_path / "store"), registry=registry)
        _, compiled, skey = compile_structure()
        store.save(skey, compiled)
        digest = digest_of(skey)
        kids_path = store._sidecar(digest, ".kids.npy")
        if not os.path.exists(kids_path):
            pytest.skip("no npy sidecars without numpy")
        with open(kids_path, "r+b") as handle:
            handle.truncate(os.path.getsize(kids_path) // 2)

        assert store.load(skey) is None  # corruption loads as a miss
        assert registry.counter("fault.store_corrupt") == 1
        assert registry.counter("fault.store_quarantined") == 1
        assert not store.contains(skey)  # the corpse was moved aside

        store.save(skey, compiled)  # the rebuild recommits cleanly
        restored, _ = store.load(skey)
        assert restored is not None

"""Test package."""

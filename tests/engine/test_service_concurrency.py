"""Concurrency-safety of :class:`SweepService`: the serving prerequisites.

The HTTP front end shares one service between many threads, so the
service's caches, stats and pool lifecycle must hold up under concurrent
callers — and its fault plan must stay scoped to the instance instead of
leaking process-wide.  Every test here pins one of those properties.
"""

import threading

import pytest

from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine import faults
from repro.engine.faults import FaultPlan
from repro.engine.service import SweepPoint, SweepService, result_key
from repro.faulttree import FaultTreeBuilder


def build_tree():
    ft = FaultTreeBuilder("conc-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="conc-tmr")


MEANS = [0.3 + 0.1 * i for i in range(12)]


def run_threads(worker, count):
    """Start ``count`` threads on ``worker(thread_index)``; re-raise failures."""
    errors = []
    barrier = threading.Barrier(count)

    def body(index):
        try:
            barrier.wait(timeout=30)
            worker(index)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=body, args=(i,)) for i in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60)
    if errors:
        raise errors[0]


class TestThreadedEvaluation:
    def test_concurrent_batches_agree_bitwise_with_serial(self):
        serial = SweepService()
        points = [SweepPoint(make_problem(m), max_defects=3) for m in MEANS]
        expected = [r.yield_estimate for r in serial.evaluate_batch(points)]

        shared = SweepService()
        outputs = {}

        def worker(index):
            # every thread sweeps the full batch, rotated so threads hit
            # the caches in different orders
            rotated = points[index:] + points[:index]
            results = shared.evaluate_batch(rotated)
            outputs[index] = [r.yield_estimate for r in results]

        run_threads(worker, 6)
        for index, values in outputs.items():
            assert values == expected[index:] + expected[:index]
        # one structure key (same tree / truncation / ordering): however
        # the threads interleave, the structure is compiled exactly once
        assert shared.stats.structures_built == 1

    def test_concurrent_same_key_callers_share_one_build(self):
        service = SweepService()
        results = {}

        def worker(index):
            # distinct defect models (distinct result keys) so no thread
            # is served from the result cache — they all need the one
            # structure at the same time
            point = SweepPoint(make_problem(0.5 + 0.01 * index), max_defects=3)
            results[index] = service.evaluate_batch([point])[0].yield_estimate

        run_threads(worker, 8)
        assert len(results) == 8
        assert service.stats.structures_built == 1
        assert service.stats.points_evaluated == 8

    def test_concurrent_ensure_workers_spawns_one_pool(self):
        service = SweepService(workers=2)
        pools = [None] * 8

        def worker(index):
            pools[index] = service.ensure_workers()

        try:
            run_threads(worker, 8)
            spawned = {id(pool) for pool in pools if pool is not None}
            if not spawned:
                pytest.skip("platform cannot spawn worker processes")
            assert len(spawned) == 1
        finally:
            service.close()


class TestAtomicStats:
    def test_concurrent_increments_never_lose_updates(self):
        service = SweepService()
        per_thread, threads = 500, 8

        def worker(index):
            for _ in range(per_thread):
                service.stats.points_requested += 1
                service.stats.evaluate_seconds += 0.001

        run_threads(worker, threads)
        assert service.stats.points_requested == per_thread * threads
        assert service.stats.evaluate_seconds == pytest.approx(
            0.001 * per_thread * threads
        )


class TestScopedFaultPlans:
    def test_constructor_no_longer_installs_a_process_global_plan(self):
        faults.clear()
        try:
            service = SweepService(fault_plan=FaultPlan.from_spec({"shm.create": 1}))
            assert faults.active() is None
            service.close()
            assert faults.active() is None
        finally:
            faults.clear()

    def test_two_services_keep_their_plans_apart(self, tmp_path):
        """A's plan fires in A only; B sees neither faults nor counters."""
        faults.clear()
        store_a = str(tmp_path / "store-a")
        store_b = str(tmp_path / "store-b")
        # store.corrupt fires on every store read: any load A performs is
        # damaged (then detected, quarantined and rebuilt) while B's
        # loads — concurrent, same process — must stay clean
        plan = FaultPlan.from_spec({"store.corrupt": {"every": 1}})
        service_a = SweepService(fault_plan=plan, store_dir=store_a)
        service_b = SweepService(store_dir=store_b)
        try:
            point = SweepPoint(make_problem(1.0), max_defects=3)
            reference = SweepService()
            baselines = {
                index: reference.evaluate_batch(
                    [SweepPoint(make_problem(1.0 + 0.01 * (index + 1)),
                                max_defects=3)]
                )[0].yield_estimate
                for index in range(2)
            }
            reference.close()

            def warm_and_reload(service, out, index):
                service.evaluate_batch([point])  # build + persist
                service.clear()  # drop the memory LRU, keep the store
                fresh = SweepPoint(make_problem(1.0 + 0.01 * (index + 1)),
                                   max_defects=3)
                out[index] = service.evaluate_batch([fresh])

            outcomes = {}
            run_threads(
                lambda i: warm_and_reload(service_a if i == 0 else service_b,
                                          outcomes, i),
                2,
            )
            # injected store damage must not change either service's answer
            for index in range(2):
                assert outcomes[index][0].yield_estimate == baselines[index]
            injected_a = service_a.registry.counter("fault.injected.store.corrupt")
            injected_b = service_b.registry.counter("fault.injected.store.corrupt")
            assert injected_a >= 1
            assert injected_b == 0
            # the calling thread never saw either plan outside the scopes
            assert faults.active() is None
        finally:
            service_a.close()
            service_b.close()
            faults.clear()


class TestNoneResultCaching:
    def _rkey(self, service, point):
        truncation = service._resolve_truncation(point)
        return result_key(point.problem, truncation, service.ordering)

    def test_memory_cached_none_is_a_hit_not_a_miss(self):
        service = SweepService()
        point = SweepPoint(make_problem(1.0), max_defects=3)
        service._remember_result(self._rkey(service, point), None)
        results = service.evaluate_batch([point])
        assert results == [None]
        assert service.stats.result_cache_hits == 1
        assert service.stats.points_evaluated == 0
        assert service.stats.structures_built == 0

    def test_disk_cached_none_is_a_hit_not_a_miss(self, tmp_path):
        cache_dir = str(tmp_path / "cache")
        warm = SweepService(cache_dir=cache_dir)
        point = SweepPoint(make_problem(1.0), max_defects=3)
        warm._disk_put(self._rkey(warm, point), None)

        service = SweepService(cache_dir=cache_dir)
        results = service.evaluate_batch([point])
        assert results == [None]
        assert service.stats.disk_cache_hits == 1
        assert service.stats.points_evaluated == 0
        # a second lookup is now served from memory
        assert service.evaluate_batch([point]) == [None]
        assert service.stats.result_cache_hits == 1

"""End-to-end telemetry: worker metric aggregation on every dispatch route,
worker span adoption, and Chrome trace validation on a real sweep."""

import json
import multiprocessing
import os
import time

import pytest

from repro.cli import main
from repro.engine.service import SweepService
from repro.obs import trace as obs_trace
from repro.soc import benchmark_problem


def make_problem(mean_defects):
    # ESEN4x2 is large enough (~200 ROMDD nodes) that sharded passes clear
    # the fused kernel's auto threshold, so worker-side fused_passes move
    return benchmark_problem("ESEN4x2", mean_defects=mean_defects, clustering=4.0)


DENSITIES = [0.2 + 0.05 * index for index in range(48)]
_REFERENCE = []


@pytest.fixture(autouse=True)
def _no_leaked_tracer():
    assert obs_trace.active() is None
    yield
    obs_trace.stop()


def run_sweep(tmp_path, name, **kwargs):
    service = SweepService(
        workers=2, shard_size=8, store_dir=str(tmp_path / name), **kwargs
    )
    rows = service.density_sweep(make_problem, DENSITIES, max_defects=3)
    service.close()
    return service, rows


def reference_rows():
    if not _REFERENCE:
        _REFERENCE.append(
            SweepService().density_sweep(make_problem, DENSITIES, max_defects=3)
        )
    return _REFERENCE[0]


class TestWorkerMetricAggregation:
    """Worker-side counters must land in the parent registry on all routes."""

    def test_shared_memory_route(self, tmp_path):
        service, rows = run_sweep(tmp_path, "shm")
        if service.stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert rows == reference_rows()
        registry = service.registry
        # these counters are only incremented inside worker processes on
        # this route; seeing them here proves the snapshots were merged
        assert registry.counter("store.hits") >= 1
        assert registry.counter("store.mmap_loads") >= 1
        assert registry.counter("kernel.fused_passes") >= 1
        assert (
            registry.counter("service.passes.batched")
            >= service.stats.shards_dispatched
        )
        assert registry.histogram_count("phase.worker_evaluate_seconds") >= 1
        # the facade exposes the merged totals under the legacy names
        assert service.stats.store_hits == registry.counter("store.hits")
        assert service.stats.mmap_loads == registry.counter("store.mmap_loads")
        assert service.stats.fused_passes == registry.counter("kernel.fused_passes")

    def test_pickled_route(self, tmp_path):
        service, rows = run_sweep(tmp_path, "pickled", use_shared_memory=False)
        if service.stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert rows == reference_rows()
        registry = service.registry
        assert service.stats.shm_bytes == 0
        assert registry.counter("store.hits") >= 1
        assert registry.counter("kernel.fused_passes") >= 1
        assert registry.histogram_count("phase.worker_evaluate_seconds") >= 1

    def test_fallback_route_ships_metrics_with_ok_false(self, tmp_path, monkeypatch):
        if multiprocessing.get_start_method() != "fork":
            pytest.skip("the forced store miss relies on fork inheritance")
        from repro.engine import store as store_module

        # every store load fails: fresh workers cannot resolve the
        # structure, report ok:False, and the parent re-evaluates their
        # spans in-process.  The patch lands before the pool exists, so
        # forked workers inherit it.
        monkeypatch.setattr(
            store_module.StructureStore, "load", lambda self, skey, mmap=False: None
        )
        service, rows = run_sweep(tmp_path, "fallback")
        if service.stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert rows == reference_rows()
        registry = service.registry
        # nobody could load: no hits anywhere, and the worker-side misses
        # rode home on the ok:False shard stats (the parent itself only
        # misses once, when resolving the structure for the build)
        assert registry.counter("store.hits") == 0
        assert registry.counter("store.misses") > 1
        assert registry.histogram_count("phase.worker_evaluate_seconds") == 0


class TestWorkerSpanAdoption:
    def test_worker_spans_land_in_the_parent_trace(self, tmp_path):
        tracer = obs_trace.start()
        try:
            service, _ = run_sweep(tmp_path, "traced")
        finally:
            obs_trace.stop()
        if service.stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        spans = tracer.spans()
        names = {s["name"] for s in spans}
        assert "service.dispatch" in names
        assert "worker.shard" in names
        worker_pids = {s["pid"] for s in spans} - {os.getpid()}
        assert worker_pids  # adopted spans keep their worker pid

    def test_no_tracer_no_span_shipping(self, tmp_path):
        service, rows = run_sweep(tmp_path, "untraced")
        assert rows == reference_rows()
        assert obs_trace.active() is None


class TestChromeTraceValidation:
    def test_two_group_sweep_exports_a_valid_chrome_trace(self, tmp_path):
        tracer = obs_trace.start()
        try:
            service = SweepService(workers=2, store_dir=str(tmp_path / "store"))
            with obs_trace.span("cli.sweep", benchmark="ESEN4x2"):
                rows = service.truncation_sweep(make_problem(1.0), [2, 3])
            service.close()
        finally:
            obs_trace.stop()
        assert len(rows) == 2
        path = tmp_path / "trace.json"
        count = tracer.write_chrome(str(path))
        trace = json.loads(path.read_text())
        assert trace["displayTimeUnit"] == "ms"
        events = trace["traceEvents"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(xs) == count and count >= 3
        for event in xs:
            assert {"name", "cat", "ph", "ts", "dur", "pid", "tid"} <= set(event)
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
        stamps = [e["ts"] for e in xs]
        assert stamps == sorted(stamps)  # monotone start times
        # every process with spans is named by an M metadata event
        meta_pids = {e["pid"] for e in events if e["ph"] == "M"}
        assert {e["pid"] for e in xs} <= meta_pids
        names = {e["name"] for e in xs}
        assert "cli.sweep" in names and "service.build" in names


class TestTraceCoverage:
    def test_sweep_trace_covers_most_of_the_wall_clock(self, tmp_path, capsys):
        """Acceptance: the exported spans cover >=90% of the measured wall
        clock of a sharded ESEN4x2 sweep, worker-process spans included."""
        trace_file = tmp_path / "trace.json"
        argv = [
            "sweep",
            "ESEN4x2",
            "--max-defects",
            "4",
            "--workers",
            "2",
            "--shard-size",
            "2",
            "--store-dir",
            str(tmp_path / "store"),
            "--trace",
            str(trace_file),
            "--stats",
        ]
        started = time.perf_counter()
        assert main(argv) == 0
        elapsed = time.perf_counter() - started
        out = capsys.readouterr().out
        trace = json.loads(trace_file.read_text())
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        roots = [e for e in xs if e["name"] == "cli.sweep"]
        assert len(roots) == 1
        covered = roots[0]["dur"] / 1e6  # µs -> s
        assert covered >= 0.9 * elapsed
        if "service.shards.dispatched" in out:
            worker_spans = [e for e in xs if e["name"] == "worker.shard"]
            assert worker_spans  # worker-process spans made it into the file

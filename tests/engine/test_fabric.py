"""The remote shard fabric: wire format, workers, scheduler, chaos.

Everything here holds the fabric to the same contract as the local
dispatch layer: **no fault on the fabric may change a sweep's results**
— remote evaluation, four injected network fault classes, evicted
workers and a fully dead fabric must all produce rows bit-for-bit
identical to the serial reference, with the story visible in the
``fabric.*`` / ``steal.*`` / ``heartbeat.*`` counters.
"""

import struct

import pytest

pytest.importorskip("numpy")

from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine import faults
from repro.engine.fabric import (
    FabricError,
    FabricScheduler,
    HeartbeatMonitor,
    RemoteWorker,
    decode_shard_request,
    decode_shard_response,
    encode_shard_request,
    encode_shard_response,
    worker_in_thread,
)
from repro.engine.faults import PLAN_ENV, FaultPlan
from repro.engine.service import SweepService
from repro.faulttree import FaultTreeBuilder
from repro.obs.metrics import MetricsRegistry


def build_tree():
    ft = FaultTreeBuilder("fabric-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="fabric-tmr")


DENSITIES = [0.2 + 0.05 * index for index in range(16)]


@pytest.fixture(autouse=True)
def _no_leaked_plan(monkeypatch):
    monkeypatch.delenv(PLAN_ENV, raising=False)
    faults.clear()
    yield
    faults.clear()


def serial_reference():
    service = SweepService()
    try:
        return service.density_sweep(make_problem, DENSITIES, max_defects=3)
    finally:
        service.close()


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #


class TestWireFormat:
    def test_request_round_trip_is_bitexact(self):
        count = struct.pack("<8d", *[0.1 * i for i in range(8)])
        location = struct.pack("<4d", *[1.5, -2.0, 0.0, 3.25])
        body = encode_shard_request(
            "abc123", count, location, count_rows=2, location_rows=1, models=4,
            deadline=2.5,
        )
        header, count_out, location_out = decode_shard_request(body)
        assert header["digest"] == "abc123"
        assert header["models"] == 4
        assert header["deadline"] == 2.5
        assert count_out == count
        assert location_out == location

    def test_response_round_trip_is_bitexact(self):
        probabilities = [0.1, 0.25, 1.0 / 3.0, 7e-12]
        body = encode_shard_response(probabilities, evaluate_seconds=0.125)
        header, out = decode_shard_response(body, 4)
        assert out == probabilities  # exact float64, not approx
        assert header["evaluate_seconds"] == 0.125

    def test_truncated_frame_is_rejected(self):
        with pytest.raises(FabricError, match="length prefix"):
            decode_shard_request(b"\x00")
        body = encode_shard_response([0.5], evaluate_seconds=0.0)
        with pytest.raises(FabricError):
            decode_shard_response(body[: len(body) - 3], 1)

    def test_header_not_json_is_rejected(self):
        body = struct.pack(">I", 4) + b"\xff\xfe\xfd\xfc"
        with pytest.raises(FabricError, match="JSON"):
            decode_shard_request(body)

    def test_payload_length_must_match_the_shapes(self):
        body = encode_shard_request(
            "abc", b"\x00" * 16, b"", count_rows=1, location_rows=0, models=2
        )
        with pytest.raises(FabricError, match="payload"):
            decode_shard_request(body[:-8])

    def test_model_count_mismatch_is_rejected(self):
        body = encode_shard_response([0.5, 0.25])
        with pytest.raises(FabricError, match="models"):
            decode_shard_response(body, 3)

    def test_worker_reported_failure_is_surfaced(self):
        from repro.engine.fabric import _pack_frame

        body = _pack_frame({"ok": False, "error": "no such structure"})
        with pytest.raises(FabricError, match="no such structure"):
            decode_shard_response(body, 1)


# --------------------------------------------------------------------- #
# Worker-side scheduling state
# --------------------------------------------------------------------- #


class TestRemoteWorker:
    def test_url_without_scheme_gets_one(self):
        worker = RemoteWorker("127.0.0.1:9000")
        assert worker.url == "http://127.0.0.1:9000"
        assert worker.host == "127.0.0.1"
        assert worker.port == 9000

    def test_url_without_a_port_is_rejected(self):
        with pytest.raises(ValueError, match="host and port"):
            RemoteWorker("http://localhost")

    def test_latency_ewma_converges_toward_new_samples(self):
        worker = RemoteWorker("h:1")
        worker.observe(1.0, 10)  # 0.1 per model
        first = worker.per_model_seconds
        assert first == pytest.approx(0.1)
        worker.observe(10.0, 10)  # 1.0 per model
        assert first < worker.per_model_seconds < 1.0

    def test_miss_threshold_evicts_and_alive_readmits(self):
        registry = MetricsRegistry()
        worker = RemoteWorker("h:1")
        for _ in range(2):
            worker.note_miss(3, registry)
        assert worker.alive  # below the threshold
        worker.note_miss(3, registry)
        assert not worker.alive
        assert registry.counter("heartbeat.evictions") == 1
        worker.note_alive(registry)
        assert worker.alive
        assert worker.misses == 0
        assert registry.counter("heartbeat.readmissions") == 1


# --------------------------------------------------------------------- #
# The HTTP shard worker
# --------------------------------------------------------------------- #


def _http(handle, method, path, body=None):
    from http.client import HTTPConnection

    conn = HTTPConnection(handle.host, handle.port, timeout=10.0)
    try:
        headers = {"Content-Type": "application/octet-stream"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestShardWorkerHTTP:
    @pytest.fixture()
    def handle(self, tmp_path):
        handle = worker_in_thread(str(tmp_path / "store"))
        yield handle
        handle.stop()

    def test_healthz_reports_ok_with_counts(self, handle):
        import json

        status, raw = _http(handle, "GET", "/healthz")
        payload = json.loads(raw)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["shards"] == 0

    def test_stats_exposes_prometheus_text(self, handle):
        status, raw = _http(handle, "GET", "/stats")
        assert status == 200
        assert b"repro_" in raw

    def test_unknown_digest_is_a_404(self, handle):
        body = encode_shard_request(
            "not-a-digest",
            struct.pack("<2d", 0.5, 0.5),
            b"",
            count_rows=1,
            location_rows=0,
            models=2,
        )
        status, _ = _http(handle, "POST", "/v1/shard", body)
        assert status == 404

    def test_garbage_body_is_a_400(self, handle):
        status, _ = _http(handle, "POST", "/v1/shard", b"\xff" * 32)
        assert status == 400

    def test_unknown_path_is_a_404(self, handle):
        status, _ = _http(handle, "GET", "/nope")
        assert status == 404


# --------------------------------------------------------------------- #
# End to end: remote sweeps match the serial reference bit for bit
# --------------------------------------------------------------------- #


def fabric_sweep(tmp_path, name, worker_urls, fault_plan=None, **kwargs):
    faults.clear()
    service = SweepService(
        store_dir=str(tmp_path / "store"),
        shard_size=2,
        remote_workers=worker_urls,
        heartbeat_interval=0.2,
        fault_plan=fault_plan,
        **kwargs,
    )
    try:
        rows = service.density_sweep(make_problem, DENSITIES, max_defects=3)
        counters = service.registry.snapshot()["counters"]
    finally:
        service.close()
        faults.clear()
    return rows, counters


class TestFabricEndToEnd:
    @pytest.fixture()
    def fabric(self, tmp_path):
        store = str(tmp_path / "store")
        workers = [worker_in_thread(store), worker_in_thread(store)]
        yield workers
        for handle in workers:
            handle.stop()

    def test_remote_sweep_is_bitexact_and_counted(self, tmp_path, fabric):
        rows, counters = fabric_sweep(
            tmp_path, "clean", [handle.url for handle in fabric]
        )
        assert rows == serial_reference()
        assert counters.get("fabric.shards_dispatched", 0) > 0
        assert counters.get("fabric.shards_completed", 0) > 0
        assert counters.get("fabric.shards_failed", 0) == 0
        # the workers resolved the structure from the shared store and
        # shipped their own counters home with the results
        assert counters.get("fabric.worker_structure_loads", 0) >= 1
        assert counters.get("fabric.worker_shards", 0) > 0

    def test_all_four_network_faults_are_absorbed(self, tmp_path, fabric):
        plan = FaultPlan.from_spec(
            {
                "net.refuse": {"at": [1]},
                "net.drop": {"at": [2]},
                "net.delay": {"at": [1], "delay": 0.4},
                "net.garbage": {"at": [1]},
            }
        )
        rows, counters = fabric_sweep(
            tmp_path, "chaos", [handle.url for handle in fabric], fault_plan=plan
        )
        assert rows == serial_reference()
        for site in ("net.refuse", "net.drop", "net.delay", "net.garbage"):
            assert counters.get("fault.injected.%s" % site, 0) == 1, site
        assert counters.get("retry.attempts", 0) >= 3
        assert counters.get("fabric.shards_failed", 0) == 0

    def test_dead_fabric_degrades_to_the_local_path(self, tmp_path):
        # ports 1/2: nothing listens, every contact is a connection error
        rows, counters = fabric_sweep(
            tmp_path, "dead", ["http://127.0.0.1:1", "http://127.0.0.1:2"]
        )
        assert rows == serial_reference()
        assert counters.get("fault.degrade.remote", 0) >= 1
        assert counters.get("heartbeat.evictions", 0) >= 2
        assert counters.get("fabric.shards_completed", 0) == 0

    def test_killing_every_worker_mid_run_still_completes(self, tmp_path, fabric):
        store_urls = [handle.url for handle in fabric]
        for handle in fabric:
            handle.stop()  # the fabric is gone before the first shard
        rows, counters = fabric_sweep(tmp_path, "killed", store_urls)
        assert rows == serial_reference()
        assert counters.get("fabric.shards_completed", 0) == 0

    def test_heartbeat_probe_readmits_a_recovered_worker(self, tmp_path, fabric):
        registry = MetricsRegistry()
        worker = RemoteWorker(fabric[0].url)
        monitor = HeartbeatMonitor([worker], registry, interval=0.2)
        for _ in range(3):
            worker.note_miss(3, registry)
        assert not worker.alive
        assert monitor.probe(worker)  # the process is actually fine
        assert worker.alive
        assert registry.counter("heartbeat.readmissions") == 1
        assert registry.counter("heartbeat.probes") == 1

    def test_scheduler_with_no_workers_hands_everything_back(self):
        scheduler = FabricScheduler([], MetricsRegistry())
        successes, failures = scheduler.dispatch([])
        assert successes == [] and failures == []
        scheduler.close()

"""Unit tests of the batched probability engine and its service plumbing."""

import pytest

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine.batch import HAVE_NUMPY, BatchEvalError, LinearizedDiagram
from repro.engine.service import SweepPoint, SweepService
from repro.faulttree import FaultTreeBuilder
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd.manager import FALSE, TRUE, MDDManager
from repro.mdd.probability import (
    probability_of_many,
    probability_of_one,
    probability_of_one_reference,
)
from repro.ordering import OrderingSpec


def small_manager():
    variables = [
        MultiValuedVariable("w", (0, 1, 2)),
        MultiValuedVariable("v", (1, 2)),
    ]
    manager = MDDManager(variables)
    # f = (w >= 1) AND (v == 2), shares the v node under two w values
    v_node = manager.literal("v", [2])
    root = manager.mk(0, [FALSE, v_node, v_node])
    return manager, root


DIST = {"w": {0: 0.5, 1: 0.3, 2: 0.2}, "v": {1: 0.4, 2: 0.6}}
DIST2 = {"w": {0: 0.1, 1: 0.1, 2: 0.8}, "v": {1: 0.25, 2: 0.75}}


class TestLinearizedDiagram:
    def test_layers_are_bottom_up(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        assert linearized.node_count == 2
        assert list(linearized.levels) == [1, 0]
        assert linearized.cardinality_at(0) == 3
        assert linearized.cardinality_at(1) == 2

    def test_terminal_roots(self):
        manager, _ = small_manager()
        for terminal, value in ((FALSE, 0.0), (TRUE, 1.0)):
            linearized = LinearizedDiagram.from_mdd(manager, terminal)
            assert linearized.evaluate({}, 3) == [value] * 3

    def test_matches_recursive_reference_exactly(self):
        manager, root = small_manager()
        expected = probability_of_one_reference(manager, root, DIST)
        assert probability_of_one(manager, root, DIST) == expected
        batched = probability_of_many(manager, root, [DIST, DIST2])
        assert batched[0] == expected
        assert batched[1] == probability_of_one_reference(manager, root, DIST2)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_path_is_bit_for_bit(self):
        manager, root = small_manager()
        models = [DIST, DIST2] * 4
        python = probability_of_many(manager, root, models, use_numpy=False)
        vectorized = probability_of_many(manager, root, models, use_numpy=True)
        assert python == vectorized

    def test_missing_level_probabilities_raise(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        with pytest.raises(BatchEvalError):
            linearized.evaluate({0: ((1.0,), (0.0,), (0.0,))}, 1)

    def test_zero_models_rejected(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        with pytest.raises(BatchEvalError):
            linearized.evaluate({}, 0)

    def test_pass_counters(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        columns = {
            0: ((0.5,), (0.3,), (0.2,)),
            1: ((0.4,), (0.6,)),
        }
        linearized.evaluate(columns, 1, use_numpy=False)
        assert linearized.python_passes == 1
        assert linearized.models_evaluated == 1
        if HAVE_NUMPY:
            linearized.evaluate(columns, 1, use_numpy=True)
            assert linearized.numpy_passes == 1


def build_tree():
    ft = FaultTreeBuilder("batch-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="batch-tmr")


MEANS = [0.2 + 0.2 * i for i in range(12)]


class TestCompiledYieldBatching:
    def test_evaluate_many_matches_per_point_evaluate(self):
        analyzer = YieldAnalyzer()
        compiled = analyzer.compile(make_problem(1.0), max_defects=3)
        problems = [make_problem(m) for m in MEANS]
        batched = compiled.evaluate_many(problems)
        for problem, result in zip(problems, batched):
            single = analyzer.compile(problem, max_defects=3).evaluate(problem)
            assert result.yield_estimate == single.yield_estimate
            assert result.error_bound == pytest.approx(single.error_bound)
        assert batched[0].extra["structure_reused"] == 0.0
        assert all(r.extra["structure_reused"] == 1.0 for r in batched[1:])
        assert all(r.extra["batched_models"] == len(problems) for r in batched)

    def test_linearization_is_cached(self):
        compiled = YieldAnalyzer().compile(make_problem(1.0), max_defects=3)
        compiled.evaluate_many([make_problem(m) for m in MEANS])
        compiled.evaluate_many([make_problem(m + 0.05) for m in MEANS])
        assert compiled.linearize_builds == 1
        assert compiled.linearize_reuses == 1

    def test_empty_batch(self):
        compiled = YieldAnalyzer().compile(make_problem(1.0), max_defects=2)
        assert compiled.evaluate_many([]) == []


class TestServiceSharding:
    def test_sharded_sweep_matches_serial(self):
        serial = SweepService()
        expected = serial.density_sweep(make_problem, MEANS, max_defects=3)

        sharded = SweepService(workers=2, shard_size=3)
        rows = sharded.density_sweep(make_problem, MEANS, max_defects=3)
        for (mean_a, yield_a, m_a), (mean_b, yield_b, m_b) in zip(expected, rows):
            assert mean_a == mean_b
            assert m_a == m_b
            assert yield_b == yield_a  # same batched arithmetic on every route

        stats = sharded.stats
        if stats.parallel_batches:  # pool may be unavailable on odd platforms
            assert stats.points_sharded == len(MEANS)
            assert 2 <= stats.shards_dispatched <= len(MEANS)
            # the parent built the structure once and shipped it
            assert stats.structures_built == 1

    def test_small_groups_stay_whole(self):
        service = SweepService(workers=4, shard_size=16)
        service.density_sweep(make_problem, MEANS[:4], max_defects=3)
        assert service.stats.points_sharded == 0
        assert service.stats.parallel_batches == 0

    def test_batched_pass_counters_and_phase_clock(self):
        service = SweepService()
        service.density_sweep(make_problem, MEANS, max_defects=3)
        stats = service.stats
        assert stats.batched_passes == 1
        assert stats.linearize_builds == 1
        assert stats.evaluate_seconds > 0.0
        assert stats.build_seconds > 0.0
        as_dict = stats.as_dict()
        for key in ("points_sharded", "shards_dispatched", "reorder_seconds"):
            assert key in as_dict

    def test_shard_size_validation(self):
        with pytest.raises(ValueError):
            SweepService(shard_size=0)


class TestSiftConvergence:
    def test_ordering_key_modes(self):
        assert OrderingSpec("w", "ml").key() == ("w", "ml", False)
        assert OrderingSpec("w", "ml", sift=True).key() == ("w", "ml", True)
        converge = OrderingSpec("w", "ml", sift_converge=True)
        assert converge.key() == ("w", "ml", "converge")
        assert converge.sift  # implied
        rebuilt = OrderingSpec.from_key(converge.key())
        assert rebuilt.sift and rebuilt.sift_converge
        assert OrderingSpec.from_key(("w", "ml", True)).sift
        assert not OrderingSpec.from_key(("w", "ml", False)).sift

    def test_converge_never_worse_than_static(self):
        problem = make_problem(1.0)
        static = YieldAnalyzer(OrderingSpec("vrw", "ml"))
        converge = YieldAnalyzer(OrderingSpec("vrw", "ml", sift_converge=True))
        static_size, _ = static.diagram_sizes(problem, max_defects=3)
        converged_size, _ = converge.diagram_sizes(problem, max_defects=3)
        assert converged_size <= static_size

    def test_converge_yield_is_unchanged(self):
        problem = make_problem(1.2)
        plain = YieldAnalyzer().evaluate(problem, max_defects=3)
        converged = YieldAnalyzer(
            OrderingSpec("w", "ml", sift_converge=True)
        ).evaluate(problem, max_defects=3)
        assert converged.yield_estimate == pytest.approx(
            plain.yield_estimate, abs=1e-12
        )


class TestMidBuildReorderTrigger:
    def test_trigger_fires_and_result_is_unchanged(self):
        problem = make_problem(1.0)
        plain = YieldAnalyzer().evaluate(problem, max_defects=4)
        triggered_analyzer = YieldAnalyzer(
            # tiny thresholds so the small benchmark trips the trigger
            reorder_on_growth=32,
        )
        compiled = triggered_analyzer.compile(problem, max_defects=4)
        result = compiled.evaluate(problem)
        assert result.yield_estimate == pytest.approx(plain.yield_estimate, abs=1e-12)
        assert compiled.reorder_triggers >= 1
        assert result.extra["reorder_triggers"] >= 1.0

    def test_trigger_counts_in_kernel_stats(self):
        problem = make_problem(1.0)
        analyzer = YieldAnalyzer(reorder_on_growth=32)
        compiled = analyzer.compile(problem, max_defects=4)
        assert compiled.reorder_triggers >= 1

    def test_service_threads_reorder_option(self):
        service = SweepService(reorder_on_growth=32)
        rows = service.density_sweep(make_problem, MEANS[:3], max_defects=4)
        reference = SweepService().density_sweep(make_problem, MEANS[:3], max_defects=4)
        for (_, yield_a, _), (_, yield_b, _) in zip(rows, reference):
            assert yield_a == pytest.approx(yield_b, abs=1e-12)

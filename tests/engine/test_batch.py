"""Unit tests of the batched probability engine and its service plumbing."""

import pytest

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine.batch import HAVE_NUMPY, BatchEvalError, LinearizedDiagram
from repro.engine.service import SweepPoint, SweepService
from repro.faulttree import FaultTreeBuilder
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd.manager import FALSE, TRUE, MDDManager
from repro.mdd.probability import (
    probability_of_many,
    probability_of_one,
    probability_of_one_reference,
)
from repro.ordering import OrderingSpec


def small_manager():
    variables = [
        MultiValuedVariable("w", (0, 1, 2)),
        MultiValuedVariable("v", (1, 2)),
    ]
    manager = MDDManager(variables)
    # f = (w >= 1) AND (v == 2), shares the v node under two w values
    v_node = manager.literal("v", [2])
    root = manager.mk(0, [FALSE, v_node, v_node])
    return manager, root


DIST = {"w": {0: 0.5, 1: 0.3, 2: 0.2}, "v": {1: 0.4, 2: 0.6}}
DIST2 = {"w": {0: 0.1, 1: 0.1, 2: 0.8}, "v": {1: 0.25, 2: 0.75}}


class TestLinearizedDiagram:
    def test_layers_are_bottom_up(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        assert linearized.node_count == 2
        assert list(linearized.levels) == [1, 0]
        assert linearized.cardinality_at(0) == 3
        assert linearized.cardinality_at(1) == 2

    def test_terminal_roots(self):
        manager, _ = small_manager()
        for terminal, value in ((FALSE, 0.0), (TRUE, 1.0)):
            linearized = LinearizedDiagram.from_mdd(manager, terminal)
            assert linearized.evaluate({}, 3) == [value] * 3

    def test_matches_recursive_reference_exactly(self):
        manager, root = small_manager()
        expected = probability_of_one_reference(manager, root, DIST)
        assert probability_of_one(manager, root, DIST) == expected
        batched = probability_of_many(manager, root, [DIST, DIST2])
        assert batched[0] == expected
        assert batched[1] == probability_of_one_reference(manager, root, DIST2)

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_numpy_path_is_bit_for_bit(self):
        manager, root = small_manager()
        models = [DIST, DIST2] * 4
        python = probability_of_many(manager, root, models, use_numpy=False)
        vectorized = probability_of_many(manager, root, models, use_numpy=True)
        assert python == vectorized

    def test_missing_level_probabilities_raise(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        with pytest.raises(BatchEvalError):
            linearized.evaluate({0: ((1.0,), (0.0,), (0.0,))}, 1)

    def test_zero_models_short_circuit(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        # K = 0 batches short-circuit identically on every kernel — no
        # columns are read, no pass counters move
        kernels = ["python"]
        if HAVE_NUMPY:
            kernels += ["layered", "fused"]
        for kernel in kernels:
            assert linearized.evaluate({}, 0, kernel=kernel) == []
            assert linearized.backward({}, 0, kernel=kernel) == ([], {})
        assert linearized.python_passes == 0
        assert linearized.numpy_passes == 0
        assert linearized.models_evaluated == 0
        with pytest.raises(BatchEvalError):
            linearized.evaluate({}, -1)

    def test_pass_counters(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        columns = {
            0: ((0.5,), (0.3,), (0.2,)),
            1: ((0.4,), (0.6,)),
        }
        linearized.evaluate(columns, 1, use_numpy=False)
        assert linearized.python_passes == 1
        assert linearized.models_evaluated == 1
        if HAVE_NUMPY:
            linearized.evaluate(columns, 1, use_numpy=True)
            assert linearized.numpy_passes == 1


COLUMNS_1 = {0: ((0.5,), (0.3,), (0.2,)), 1: ((0.4,), (0.6,))}
ALL_KERNELS = ["python"] + (["layered", "fused"] if HAVE_NUMPY else [])


class TestKernelDecision:
    """The kernel is chosen once per pass, from whole-diagram cell counts."""

    def test_exactly_one_kernel_family_per_pass(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        for kernel in ALL_KERNELS:
            python_before = linearized.python_passes
            numpy_before = linearized.numpy_passes
            linearized.evaluate(COLUMNS_1, 1, kernel=kernel)
            moved = (linearized.python_passes - python_before) + (
                linearized.numpy_passes - numpy_before
            )
            assert moved == 1  # one pass, one kernel — never a mix

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_auto_threshold_uses_whole_diagram_cells(self):
        from repro.engine.batch import _NUMPY_AUTO_CELLS

        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        # just below the cell threshold: python; at/above: numpy (fused),
        # even though every individual layer is tiny
        below = (_NUMPY_AUTO_CELLS - 1) // linearized.node_count
        above = -(-_NUMPY_AUTO_CELLS // linearized.node_count)
        assert linearized.resolve_kernel(None, None, below) == "python"
        assert linearized.resolve_kernel(None, None, above) == "fused"

    def test_unknown_kernel_rejected(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        with pytest.raises(BatchEvalError):
            linearized.evaluate(COLUMNS_1, 1, kernel="simd")

    @pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
    def test_auto_fused_falls_back_on_non_contiguous_slots(self):
        # hand-built layers with a slot gap cannot be fused; auto quietly
        # uses the layered kernel, an explicit request surfaces the error
        layers = ((0, (3,), ((0, 1, 1),)),)
        linearized = LinearizedDiagram(3, 4, layers)
        columns = {0: ((0.5,), (0.3,), (0.2,))}
        with pytest.raises(BatchEvalError):
            linearized.evaluate(columns, 1, kernel="fused")
        assert linearized.evaluate(columns, 1, use_numpy=True) == [0.3 + 0.2]
        assert linearized.numpy_passes == 1
        assert linearized.fused_passes == 0


class TestDegenerateInputs:
    """Terminal-only and single-layer diagrams short-circuit identically."""

    def test_terminal_only_diagrams_on_every_kernel(self):
        manager, _ = small_manager()
        for terminal, value in ((FALSE, 0.0), (TRUE, 1.0)):
            linearized = LinearizedDiagram.from_mdd(manager, terminal)
            assert linearized.root_slot <= 1
            for kernel in ALL_KERNELS:
                assert linearized.evaluate({}, 3, kernel=kernel) == [value] * 3
                probabilities, gradients = linearized.backward({}, 3, kernel=kernel)
                assert probabilities == [value] * 3
                assert gradients == {}
            assert linearized.python_passes == 0  # short-circuits, no pass
            assert linearized.numpy_passes == 0

    def test_single_layer_diagram_on_every_kernel(self):
        variables = [MultiValuedVariable("w", (0, 1, 2))]
        manager = MDDManager(variables)
        root = manager.mk(0, [FALSE, TRUE, TRUE])
        linearized = LinearizedDiagram.from_mdd(manager, root)
        assert len(linearized.layers) == 1
        columns = {0: ((0.5, 0.1), (0.3, 0.2), (0.2, 0.7))}
        expected = [0.3 + 0.2, 0.2 + 0.7]
        reference = None
        for kernel in ALL_KERNELS:
            probabilities = linearized.evaluate(columns, 2, kernel=kernel)
            assert probabilities == pytest.approx(expected)
            backward_probabilities, gradients = linearized.backward(
                columns, 2, kernel=kernel
            )
            assert backward_probabilities == probabilities
            assert gradients[0] == ((0.0, 0.0), (1.0, 1.0), (1.0, 1.0))
            if reference is None:
                reference = probabilities
            assert probabilities == reference  # bit-for-bit across kernels


@pytest.mark.skipif(not HAVE_NUMPY, reason="numpy not installed")
class TestFusedSchedule:
    def test_csr_arrays_are_consistent(self):
        import numpy as np

        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        schedule = linearized.fused()
        total_edges = sum(
            (s1 - s0) * card for _, s0, s1, _, _, card in schedule.bounds
        )
        assert len(schedule.kids) == total_edges
        assert len(schedule.seg) == linearized.num_slots - 1
        assert int(schedule.seg[-1]) == total_edges
        assert len(schedule.slot_levels) == linearized.node_count
        # seg describes the node-major ordering: per-slot branching factors
        widths = np.diff(schedule.seg)
        for level, s0, s1, _, _, card in schedule.bounds:
            assert (widths[s0 - 2 : s1 - 2] == card).all()
            assert (schedule.slot_levels[s0 - 2 : s1 - 2] == level).all()

    def test_layers_round_trip_through_fused_arrays(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        schedule = linearized.fused()
        rebuilt = LinearizedDiagram.from_fused_arrays(
            linearized.root_slot,
            linearized.num_slots,
            schedule.kids,
            schedule.seg,
            schedule.slot_levels,
            schedule.bounds,
        )
        assert rebuilt.layers == linearized.layers
        assert rebuilt.levels == linearized.levels

    def test_corrupt_bounds_are_rejected(self):
        manager, root = small_manager()
        schedule = LinearizedDiagram.from_mdd(manager, root).fused()
        bad = list(schedule.bounds)
        bad[0] = (bad[0][0], bad[0][1] + 1) + bad[0][2:]
        with pytest.raises(BatchEvalError):
            LinearizedDiagram.from_fused_arrays(
                2, 4, schedule.kids, schedule.seg, schedule.slot_levels, bad
            )

    def test_model_collapse_engages_on_uniform_columns(self):
        manager, root = small_manager()
        linearized = LinearizedDiagram.from_mdd(manager, root)
        varying = {
            0: ((0.5, 0.4), (0.3, 0.4), (0.2, 0.2)),
            1: ((0.4, 0.4), (0.6, 0.6)),  # uniform across the two models
        }
        expected = linearized.evaluate(varying, 2, kernel="layered")
        collapsed_before = linearized.collapsed_layers
        assert linearized.evaluate(varying, 2, kernel="fused") == expected
        assert linearized.collapsed_layers == collapsed_before + 1  # level 1 only


def build_tree():
    ft = FaultTreeBuilder("batch-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="batch-tmr")


MEANS = [0.2 + 0.2 * i for i in range(12)]


class TestCompiledYieldBatching:
    def test_evaluate_many_matches_per_point_evaluate(self):
        analyzer = YieldAnalyzer()
        compiled = analyzer.compile(make_problem(1.0), max_defects=3)
        problems = [make_problem(m) for m in MEANS]
        batched = compiled.evaluate_many(problems)
        for problem, result in zip(problems, batched):
            single = analyzer.compile(problem, max_defects=3).evaluate(problem)
            assert result.yield_estimate == single.yield_estimate
            assert result.error_bound == pytest.approx(single.error_bound)
        assert batched[0].extra["structure_reused"] == 0.0
        assert all(r.extra["structure_reused"] == 1.0 for r in batched[1:])
        assert all(r.extra["batched_models"] == len(problems) for r in batched)

    def test_linearization_is_cached(self):
        compiled = YieldAnalyzer().compile(make_problem(1.0), max_defects=3)
        compiled.evaluate_many([make_problem(m) for m in MEANS])
        compiled.evaluate_many([make_problem(m + 0.05) for m in MEANS])
        assert compiled.linearize_builds == 1
        assert compiled.linearize_reuses == 1

    def test_empty_batch(self):
        compiled = YieldAnalyzer().compile(make_problem(1.0), max_defects=2)
        assert compiled.evaluate_many([]) == []


class TestServiceSharding:
    def test_sharded_sweep_matches_serial(self):
        serial = SweepService()
        expected = serial.density_sweep(make_problem, MEANS, max_defects=3)

        sharded = SweepService(workers=2, shard_size=3)
        rows = sharded.density_sweep(make_problem, MEANS, max_defects=3)
        for (mean_a, yield_a, m_a), (mean_b, yield_b, m_b) in zip(expected, rows):
            assert mean_a == mean_b
            assert m_a == m_b
            assert yield_b == yield_a  # same batched arithmetic on every route

        stats = sharded.stats
        if stats.parallel_batches:  # pool may be unavailable on odd platforms
            assert stats.points_sharded == len(MEANS)
            assert 2 <= stats.shards_dispatched <= len(MEANS)
            # the parent built the structure once and shipped it
            assert stats.structures_built == 1

    def test_small_groups_stay_whole(self):
        service = SweepService(workers=4, shard_size=16)
        service.density_sweep(make_problem, MEANS[:4], max_defects=3)
        assert service.stats.points_sharded == 0
        assert service.stats.parallel_batches == 0

    def test_batched_pass_counters_and_phase_clock(self):
        service = SweepService()
        service.density_sweep(make_problem, MEANS, max_defects=3)
        stats = service.stats
        assert stats.batched_passes == 1
        assert stats.linearize_builds == 1
        assert stats.evaluate_seconds > 0.0
        assert stats.build_seconds > 0.0
        as_dict = stats.as_dict()
        for key in ("points_sharded", "shards_dispatched", "reorder_seconds"):
            assert key in as_dict

    def test_shard_size_validation(self):
        with pytest.raises(ValueError):
            SweepService(shard_size=0)


class TestSiftConvergence:
    def test_ordering_key_modes(self):
        assert OrderingSpec("w", "ml").key() == ("w", "ml", False)
        assert OrderingSpec("w", "ml", sift=True).key() == ("w", "ml", True)
        converge = OrderingSpec("w", "ml", sift_converge=True)
        assert converge.key() == ("w", "ml", "converge")
        assert converge.sift  # implied
        rebuilt = OrderingSpec.from_key(converge.key())
        assert rebuilt.sift and rebuilt.sift_converge
        assert OrderingSpec.from_key(("w", "ml", True)).sift
        assert not OrderingSpec.from_key(("w", "ml", False)).sift

    def test_converge_never_worse_than_static(self):
        problem = make_problem(1.0)
        static = YieldAnalyzer(OrderingSpec("vrw", "ml"))
        converge = YieldAnalyzer(OrderingSpec("vrw", "ml", sift_converge=True))
        static_size, _ = static.diagram_sizes(problem, max_defects=3)
        converged_size, _ = converge.diagram_sizes(problem, max_defects=3)
        assert converged_size <= static_size

    def test_converge_yield_is_unchanged(self):
        problem = make_problem(1.2)
        plain = YieldAnalyzer().evaluate(problem, max_defects=3)
        converged = YieldAnalyzer(
            OrderingSpec("w", "ml", sift_converge=True)
        ).evaluate(problem, max_defects=3)
        assert converged.yield_estimate == pytest.approx(
            plain.yield_estimate, abs=1e-12
        )


class TestMidBuildReorderTrigger:
    def test_trigger_fires_and_result_is_unchanged(self):
        problem = make_problem(1.0)
        plain = YieldAnalyzer().evaluate(problem, max_defects=4)
        triggered_analyzer = YieldAnalyzer(
            # tiny thresholds so the small benchmark trips the trigger
            reorder_on_growth=32,
        )
        compiled = triggered_analyzer.compile(problem, max_defects=4)
        result = compiled.evaluate(problem)
        assert result.yield_estimate == pytest.approx(plain.yield_estimate, abs=1e-12)
        assert compiled.reorder_triggers >= 1
        assert result.extra["reorder_triggers"] >= 1.0

    def test_trigger_counts_in_kernel_stats(self):
        problem = make_problem(1.0)
        analyzer = YieldAnalyzer(reorder_on_growth=32)
        compiled = analyzer.compile(problem, max_defects=4)
        assert compiled.reorder_triggers >= 1

    def test_service_threads_reorder_option(self):
        service = SweepService(reorder_on_growth=32)
        rows = service.density_sweep(make_problem, MEANS[:3], max_defects=4)
        reference = SweepService().density_sweep(make_problem, MEANS[:3], max_defects=4)
        for (_, yield_a, _), (_, yield_b, _) in zip(rows, reference):
            assert yield_a == pytest.approx(yield_b, abs=1e-12)

"""Sweep-service invariants: reuse correctness, caching, fan-out."""

import pytest

from repro.core.method import YieldAnalyzer
from repro.core.problem import YieldProblem
from repro.distributions import ComponentDefectModel, PoissonDefectDistribution
from repro.engine.service import (
    SweepPoint,
    SweepService,
    result_key,
    structure_key,
)
from repro.faulttree import FaultTreeBuilder
from repro.ordering import OrderingSpec


def build_tree():
    ft = FaultTreeBuilder("svc-tmr")
    ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
    return ft.build()


TREE = build_tree()


def make_problem(mean_defects):
    model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
    distribution = PoissonDefectDistribution(mean=mean_defects)
    return YieldProblem(TREE, model, distribution, name="svc-tmr")


MEANS = [0.4, 0.8, 1.2, 1.6, 2.0]


class TestStructureReuse:
    def test_five_point_density_sweep_builds_one_structure(self):
        service = SweepService()
        rows = service.density_sweep(make_problem, MEANS, max_defects=3)
        assert len(rows) == len(MEANS)
        assert service.stats.structures_built == 1
        assert service.stats.points_evaluated == len(MEANS)

    def test_sweep_results_match_the_serial_analyzer(self):
        service = SweepService()
        rows = service.density_sweep(make_problem, MEANS, max_defects=3)
        analyzer = YieldAnalyzer()
        for (mean, estimate, truncation), expected_mean in zip(rows, MEANS):
            reference = analyzer.evaluate(make_problem(expected_mean), max_defects=3)
            assert mean == expected_mean
            assert truncation == reference.truncation
            assert estimate == pytest.approx(reference.yield_estimate, abs=1e-12)

    def test_batch_results_keep_request_order(self):
        service = SweepService()
        points = [SweepPoint(make_problem(m), max_defects=3) for m in MEANS]
        results = list(reversed(service.evaluate_batch(list(reversed(points)))))
        forward = service.evaluate_batch(points)
        for a, b in zip(results, forward):
            assert a.yield_estimate == pytest.approx(b.yield_estimate, abs=1e-15)

    def test_reused_points_are_flagged(self):
        service = SweepService()
        points = [SweepPoint(make_problem(m), max_defects=3) for m in MEANS]
        results = service.evaluate_batch(points)
        flags = sorted(r.extra["structure_reused"] for r in results)
        assert flags[0] == 0.0  # the point that paid for the build
        assert flags[-1] == 1.0  # everyone else rode along

    def test_truncation_sweep_is_monotone(self):
        service = SweepService()
        rows = service.truncation_sweep(make_problem(1.0), [1, 2, 3, 4])
        estimates = [estimate for _, estimate, _ in rows]
        bounds = [bound for _, _, bound in rows]
        assert estimates == sorted(estimates)
        assert bounds == sorted(bounds, reverse=True)

    def test_epsilon_resolves_truncation_per_point(self):
        service = SweepService(epsilon=1e-2)
        loose = service.evaluate(make_problem(1.0))
        tight = service.evaluate(make_problem(1.0), epsilon=1e-6)
        assert tight.truncation > loose.truncation
        assert tight.error_bound <= 1e-6


class TestResultCaching:
    def test_repeated_sweep_hits_the_memory_cache(self):
        service = SweepService()
        service.density_sweep(make_problem, MEANS, max_defects=3)
        evaluated = service.stats.points_evaluated
        service.density_sweep(make_problem, MEANS, max_defects=3)
        assert service.stats.points_evaluated == evaluated
        assert service.stats.result_cache_hits == len(MEANS)

    def test_disk_cache_survives_service_instances(self, tmp_path):
        cache_dir = str(tmp_path / "yield-cache")
        first = SweepService(cache_dir=cache_dir)
        rows = first.density_sweep(make_problem, MEANS, max_defects=3)

        second = SweepService(cache_dir=cache_dir)
        cached_rows = second.density_sweep(make_problem, MEANS, max_defects=3)
        assert second.stats.disk_cache_hits == len(MEANS)
        assert second.stats.structures_built == 0
        for row, cached in zip(rows, cached_rows):
            assert cached[1] == pytest.approx(row[1], abs=1e-15)

    def test_different_densities_never_collide(self):
        ordering = OrderingSpec("w", "ml")
        key_a = result_key(make_problem(0.5), 3, ordering)
        key_b = result_key(make_problem(0.6), 3, ordering)
        assert key_a != key_b
        # but the structure is shared
        assert structure_key(make_problem(0.5), 3, ordering) == structure_key(
            make_problem(0.6), 3, ordering
        )

    def test_structure_lru_is_bounded(self):
        service = SweepService(max_structures=1)
        service.evaluate(make_problem(1.0), max_defects=2)
        service.evaluate(make_problem(1.0), max_defects=3)
        service.evaluate(make_problem(1.0), max_defects=4)
        assert len(service._structures) == 1

    def test_result_cache_is_bounded(self):
        service = SweepService(max_results=3)
        service.density_sweep(make_problem, MEANS, max_defects=2)
        assert len(service._results) == 3


class TestSharedMemoryDispatch:
    DENSITIES = [0.2 + 0.05 * index for index in range(48)]

    def run_sweep(self, tmp_path, name, **kwargs):
        service = SweepService(
            workers=2, shard_size=8, store_dir=str(tmp_path / name), **kwargs
        )
        rows = service.density_sweep(make_problem, self.DENSITIES, max_defects=3)
        service.close()
        return service.stats, rows

    def test_shm_dispatch_matches_pickled_dispatch_exactly(self, tmp_path):
        reference = SweepService().density_sweep(
            make_problem, self.DENSITIES, max_defects=3
        )
        shm_stats, shm_rows = self.run_sweep(tmp_path, "shm")
        pickled_stats, pickled_rows = self.run_sweep(
            tmp_path, "pickled", use_shared_memory=False
        )
        assert shm_rows == reference  # bit-for-bit on every route
        assert pickled_rows == reference
        if shm_stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert pickled_stats.shm_bytes == 0

    def test_shm_shrinks_the_pickled_payload(self, tmp_path):
        shm_stats, _ = self.run_sweep(tmp_path, "shm")
        pickled_stats, _ = self.run_sweep(
            tmp_path, "pickled", use_shared_memory=False
        )
        if shm_stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert shm_stats.shm_bytes > 0
        # the problems no longer ride along with every shard: the payload
        # shrinks to indices plus a shared-memory block name
        assert shm_stats.shard_payload_bytes * 10 <= pickled_stats.shard_payload_bytes

    def test_workers_mmap_the_store_on_shm_dispatch(self, tmp_path):
        stats, _ = self.run_sweep(tmp_path, "shm")
        if stats.shards_dispatched == 0:
            pytest.skip("platform cannot spawn worker processes")
        assert stats.mmap_loads >= 1  # each worker maps the fused arrays
        assert stats.batched_passes >= stats.shards_dispatched


class TestParallelFanOut:
    def test_worker_fan_out_matches_serial_results(self):
        serial = SweepService()
        serial_rows = serial.truncation_sweep(make_problem(1.0), [2, 3, 4])

        parallel = SweepService(workers=2)
        parallel_rows = parallel.truncation_sweep(make_problem(1.0), [2, 3, 4])

        for a, b in zip(serial_rows, parallel_rows):
            assert a[0] == b[0]
            assert b[1] == pytest.approx(a[1], abs=1e-15)
            assert b[2] == pytest.approx(a[2], abs=1e-15)

    def test_single_group_batches_stay_in_process(self):
        service = SweepService(workers=4)
        service.density_sweep(make_problem, MEANS, max_defects=3)
        assert service.stats.parallel_batches == 0
        assert service.stats.structures_built == 1

    def test_worker_built_structures_serve_later_batches(self):
        service = SweepService(workers=2)
        service.truncation_sweep(make_problem(1.0), [2, 3])
        built = service.stats.structures_built
        assert len(service._structures) == 2
        # same structures, different defect model: no rebuild anywhere
        service.truncation_sweep(make_problem(1.5), [2, 3])
        assert service.stats.structures_built == built
        assert service.stats.structure_reuses == 2

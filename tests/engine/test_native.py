"""Fallback and cache behaviour of the native compiled kernel backend.

The equivalence suite (``tests/property/test_fused_equivalence.py``) pins
the native kernel's floats to the fused kernel bit-for-bit; this module
pins the *degradation* story: a host with no compiler, a failing compile,
or a corrupt cached ``.so`` must complete every ``kernel="native"`` pass
bit-identically through the fused fallback — with ``native.fallbacks``
recording each degraded pass — and a healthy cache must warm-start the
library without recompiling.
"""

import glob
import os
import stat

import pytest

from repro.engine import native
from repro.engine.batch import HAVE_NUMPY, LinearizedDiagram
from repro.faulttree.multivalued import MultiValuedVariable
from repro.mdd.manager import FALSE, MDDManager
from repro.obs.metrics import MetricsRegistry

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the native backend requires numpy"
)

HAVE_CC = native._find_compiler() is not None


@pytest.fixture
def sandbox(tmp_path, monkeypatch):
    """A private `.so` cache plus a re-armed load, restored afterwards."""
    cache = tmp_path / "native-cache"
    monkeypatch.setenv("REPRO_NATIVE_CACHE", str(cache))
    native.reset()
    yield cache
    native.reset()


def small_diagram():
    variables = [
        MultiValuedVariable("w", (0, 1, 2)),
        MultiValuedVariable("v", (1, 2)),
    ]
    manager = MDDManager(variables)
    v_node = manager.literal("v", [2])
    root = manager.mk(0, [FALSE, v_node, v_node])
    return LinearizedDiagram.from_mdd(manager, root)


# three models: distinct columns on top, uniform on the bottom level so
# passes exercise both the wide path and the model-uniform collapse
COLUMNS = {
    0: ((0.5, 0.1, 0.3), (0.3, 0.1, 0.4), (0.2, 0.8, 0.3)),
    1: ((0.4, 0.4, 0.4), (0.6, 0.6, 0.6)),
}


def fused_oracle():
    linearized = small_diagram()
    probabilities = linearized.evaluate(COLUMNS, 3, kernel="fused")
    _, gradients = linearized.backward(COLUMNS, 3, kernel="fused")
    return probabilities, gradients


def run_native(linearized):
    probabilities = linearized.evaluate(COLUMNS, 3, kernel="native")
    _, gradients = linearized.backward(COLUMNS, 3, kernel="native")
    return probabilities, gradients


class TestForcedFallback:
    def test_no_compiler_degrades_bit_identically(self, sandbox, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent")
        native.reset()
        assert not native.available()
        before = native.counters()["fallbacks"]
        linearized = small_diagram()
        assert run_native(linearized) == fused_oracle()  # bit-for-bit
        assert native.counters()["fallbacks"] - before >= 2
        assert linearized.native_passes == 0  # degraded passes count as fused
        assert linearized.fused_passes == 2
        assert linearized.last_kernel == "fused"
        assert not os.path.exists(str(sandbox))  # nothing was compiled

    def test_failing_compiler_degrades_bit_identically(self, sandbox, tmp_path, monkeypatch):
        cc = tmp_path / "broken-cc"
        cc.write_text("#!/bin/sh\nexit 1\n")
        cc.chmod(cc.stat().st_mode | stat.S_IXUSR)
        monkeypatch.setenv("CC", str(cc))
        native.reset()
        assert not native.available()
        before = native.counters()["fallbacks"]
        assert run_native(small_diagram()) == fused_oracle()
        assert native.counters()["fallbacks"] - before >= 2

    def test_fallback_counter_reaches_the_registry(self, sandbox, monkeypatch):
        monkeypatch.setenv("CC", "/nonexistent")
        native.reset()
        run_native(small_diagram())
        registry = MetricsRegistry()
        native.publish_counters(registry, {})
        assert registry.counter("native.fallbacks") >= 2


@pytest.mark.skipif(not HAVE_CC, reason="needs a working C compiler")
class TestCompileAndCache:
    def test_native_pass_counters_move(self, sandbox):
        assert native.available()
        linearized = small_diagram()
        assert run_native(linearized) == fused_oracle()
        assert linearized.native_passes == 2
        assert linearized.fused_passes == 0
        assert linearized.last_kernel == "native"

    def test_warm_start_skips_the_compile(self, sandbox):
        assert native.available()
        after_compile = native.counters()
        native.reset()
        assert native.available()  # second load, same cache
        warm = native.counters()
        assert warm["compiles"] == after_compile["compiles"]
        assert warm["loads"] == after_compile["loads"] + 1

    def test_corrupt_cached_so_is_a_miss_and_recompiles(self, sandbox):
        assert native.available()
        compiles = native.counters()["compiles"]
        (so_path,) = glob.glob(str(sandbox / "*.so"))
        with open(so_path, "r+b") as handle:
            handle.seek(0)
            handle.write(b"\0" * 64)  # checksum no longer matches the marker
        native.reset()
        assert native.available()  # recompiled, never trusted
        assert native.counters()["compiles"] == compiles + 1
        assert run_native(small_diagram()) == fused_oracle()

    def test_missing_marker_is_a_miss(self, sandbox):
        assert native.available()
        compiles = native.counters()["compiles"]
        (marker,) = glob.glob(str(sandbox / "*.json"))
        os.unlink(marker)
        native.reset()
        assert native.available()
        assert native.counters()["compiles"] == compiles + 1

    def test_compiler_loss_after_warm_cache_still_loads(self, sandbox, monkeypatch):
        """A warm `.so` serves hosts whose compiler later disappears."""
        assert native.available()
        counters = native.counters()
        monkeypatch.setenv("CC", "/nonexistent")
        native.reset()
        assert not native.available()  # the key embeds the compiler id
        monkeypatch.delenv("CC")
        native.reset()
        assert native.available()
        assert native.counters()["compiles"] == counters["compiles"]


class TestServiceFallback:
    def test_sweep_completes_bit_identically_without_a_compiler(
        self, tmp_path, monkeypatch
    ):
        from repro.distributions import (
            ComponentDefectModel,
            PoissonDefectDistribution,
        )
        from repro.core.problem import YieldProblem
        from repro.engine.service import SweepPoint, SweepService
        from repro.faulttree import FaultTreeBuilder

        ft = FaultTreeBuilder("fallback")
        ft.set_top(ft.k_out_of_n_failed(2, ["M1", "M2", "M3"]))
        tree = ft.build()
        model = ComponentDefectModel.uniform(["M1", "M2", "M3"], lethality=0.8)
        points = [
            SweepPoint(
                YieldProblem(tree, model, PoissonDefectDistribution(mean=mean)),
                max_defects=3,
            )
            for mean in (0.5, 1.0, 2.0)
        ]

        fused = SweepService(kernel="fused")
        expected = [r.yield_estimate for r in fused.evaluate_batch(points)]

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path / "cache"))
        monkeypatch.setenv("CC", "/nonexistent")
        native.reset()
        try:
            service = SweepService(kernel="native")
            results = [r.yield_estimate for r in service.evaluate_batch(points)]
            assert results == expected  # bit-for-bit through the fallback
            assert service.registry.counter("native.fallbacks") > 0
            assert service.registry.counter("kernel.native_passes") == 0
        finally:
            native.reset()

"""Deep (chain-shaped) diagrams must not hit the interpreter recursion limit.

Chain fault trees produce decision diagrams whose depth equals the number of
variables, which blows past CPython's default limit of 1000 frames for any
traversal that recurses per level.  These tests build chains several times
deeper than the default limit and exercise every code path the batched
engine and the managers expose: the guarded ITE build, the iterative
``restrict`` / ``sat_count`` / ``support`` / dot export, the iterative ROMDD
complementation and the linearized probability pass.
"""

import sys

import pytest

from repro.bdd.builder import CircuitBDDBuilder
from repro.bdd.dot import bdd_to_dot
from repro.bdd.manager import TRUE as BDD_TRUE
from repro.engine.kernel import recursion_guard
from repro.faulttree.circuit import Circuit
from repro.faulttree.multivalued import MultiValuedVariable
from repro.faulttree.ops import GateOp
from repro.mdd.dot import mdd_to_dot
from repro.mdd.manager import TRUE, MDDManager
from repro.mdd.probability import probability_of_many, probability_of_one

#: Deep enough that one stack frame per level overflows the default limit.
DEPTH = 1500


def build_and_chain(n):
    """An AND chain: out = x0 AND x1 AND ... AND x_{n-1}, one gate per step."""
    circuit = Circuit("chain")
    acc = circuit.add_input("x0")
    for i in range(1, n):
        nxt = circuit.add_input("x%d" % i)
        acc = circuit.add_gate(GateOp.AND, [acc, nxt])
    circuit.set_output(acc)
    return circuit


class TestDeepBDD:
    def test_guard_raises_and_restores_the_limit(self):
        before = sys.getrecursionlimit()
        with recursion_guard(before + 5000):
            assert sys.getrecursionlimit() > before
        assert sys.getrecursionlimit() == before

    @pytest.fixture(scope="class")
    def chain_bdd(self):
        circuit = build_and_chain(DEPTH)
        order = ["x%d" % i for i in range(DEPTH)]
        manager, root, _ = CircuitBDDBuilder(order, track_peak=False).build(circuit)
        return manager, root

    def test_chain_build_and_iterative_queries(self, chain_bdd):
        manager, root = chain_bdd
        # the chain ROBDD has one node per variable
        assert manager.size(root) == DEPTH + 2

        # iterative queries on a diagram ~3x deeper than the default limit
        assert len(manager.support(root)) == DEPTH
        assert manager.sat_count(root) == 1
        restricted = manager.restrict(root, "x%d" % (DEPTH - 1), True)
        assert manager.size(restricted) == DEPTH + 1
        assert manager.restrict(restricted, "x0", False) == 0

        dot = bdd_to_dot(manager, root)
        assert dot.count("->") >= DEPTH

    def test_chain_evaluate(self, chain_bdd):
        manager, root = chain_bdd
        assignment = {"x%d" % i: True for i in range(DEPTH)}
        assert manager.evaluate(root, assignment) is True
        assignment["x%d" % (DEPTH // 2)] = False
        assert manager.evaluate(root, assignment) is False


def build_mdd_chain(manager, depth):
    """node_i = (v_i == 1) AND node_{i+1}, built bottom-up without recursion."""
    node = TRUE
    for level in range(depth - 1, -1, -1):
        node = manager.mk(level, [0, node])
    return node


class TestDeepMDD:
    @pytest.fixture(scope="class")
    def chain(self):
        variables = [
            MultiValuedVariable("v%d" % i, (0, 1)) for i in range(DEPTH)
        ]
        manager = MDDManager(variables)
        root = build_mdd_chain(manager, DEPTH)
        manager.ref(root)
        return manager, root

    def test_probability_pass_is_iterative(self, chain):
        manager, root = chain
        distributions = {
            "v%d" % i: {0: 0.0, 1: 1.0} for i in range(DEPTH)
        }
        assert probability_of_one(manager, root, distributions) == 1.0
        # flip one deep variable: the conjunction must drop to that weight
        distributions["v%d" % (DEPTH - 1)] = {0: 0.25, 1: 0.75}
        batched = probability_of_many(
            manager,
            root,
            [distributions, {**distributions, "v0": {0: 1.0, 1: 0.0}}],
        )
        assert batched[0] == pytest.approx(0.75)
        assert batched[1] == 0.0

    def test_complement_and_queries_are_iterative(self, chain):
        manager, root = chain
        complement = manager.not_(root)
        assert complement != root
        assert manager.not_(complement) == root
        assert len(manager.support(root)) == DEPTH
        assert manager.evaluate(root, {"v%d" % i: 1 for i in range(DEPTH)}) is True

    def test_dot_export_is_iterative(self, chain):
        manager, root = chain
        dot = mdd_to_dot(manager, root)
        assert dot.count("->") >= DEPTH

"""Unit tests for the direct ROMDD construction route."""

import itertools

import pytest

from repro.faulttree import GateOp, MVCircuit, MultiValuedVariable
from repro.mdd import MDDError
from repro.mdd.direct import build_mdd_from_mvcircuit


def build_circuit():
    mv = MVCircuit("direct-test")
    a = mv.add_variable(MultiValuedVariable("a", range(0, 3)))
    b = mv.add_variable(MultiValuedVariable("b", range(0, 4)))
    top = mv.gate(
        GateOp.OR,
        [
            mv.gate(GateOp.AND, [mv.filter_geq(a, 1), mv.filter_eq(b, 2)]),
            mv.filter_eq(a, 2),
        ],
    )
    mv.set_top(top)
    return mv


class TestDirectBuild:
    def test_semantics(self):
        mv = build_circuit()
        variables = list(mv.variables)
        manager, root, _ = build_mdd_from_mvcircuit(mv, variables)
        for av, bv in itertools.product(variables[0].values, variables[1].values):
            expected = (av >= 1 and bv == 2) or av == 2
            assert manager.evaluate(root, {"a": av, "b": bv}) is expected

    def test_stats(self):
        mv = build_circuit()
        manager, root, stats = build_mdd_from_mvcircuit(mv, list(mv.variables), track_peak=True)
        assert stats.final_size == manager.size(root)
        assert stats.gates_processed == mv.num_gates
        assert stats.peak_live_nodes >= stats.final_size
        assert stats.allocated_nodes >= stats.final_size

    def test_order_reversal_still_correct(self):
        mv = build_circuit()
        variables = list(reversed(mv.variables))
        manager, root, _ = build_mdd_from_mvcircuit(mv, variables)
        assert manager.evaluate(root, {"a": 2, "b": 0}) is True
        assert manager.evaluate(root, {"a": 0, "b": 2}) is False

    def test_missing_variable_rejected(self):
        mv = build_circuit()
        with pytest.raises(MDDError):
            build_mdd_from_mvcircuit(mv, [mv.variable("a")])

    def test_constants_in_circuit(self):
        mv = MVCircuit("with-const")
        x = mv.add_variable(MultiValuedVariable("x", range(0, 2)))
        top = mv.gate(GateOp.AND, [mv.filter_eq(x, 1), mv.const(True)])
        mv.set_top(top)
        manager, root, _ = build_mdd_from_mvcircuit(mv, [x])
        assert manager.evaluate(root, {"x": 1}) is True
        assert manager.evaluate(root, {"x": 0}) is False

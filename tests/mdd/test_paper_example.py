"""Reproduction of the worked example of Fig. 2 of the paper.

The paper illustrates the probability computation on the fault tree
``F(x1, x2, x3) = x1 x2 + x3`` with ``M = 2`` defects analyzed, under the
multiple-valued variable ordering ``v1, v2, w``.  We rebuild that ROMDD with
the library and check both the structure-level facts (which variables appear,
how many nodes) and the numerical result against an exact hand computation.
"""

import itertools

import pytest

from repro.core.gfunction import GeneralizedFaultTree
from repro.core.problem import YieldProblem
from repro.core.method import YieldAnalyzer
from repro.distributions import ComponentDefectModel, EmpiricalDefectDistribution
from repro.faulttree import FaultTreeBuilder
from repro.mdd import probability_of_one
from repro.mdd.direct import build_mdd_from_mvcircuit
from repro.ordering import OrderingSpec


COMPONENTS = ["comp1", "comp2", "comp3"]


def fig2_fault_tree():
    ft = FaultTreeBuilder("fig2")
    x1, x2, x3 = (ft.failed(c) for c in COMPONENTS)
    ft.set_top(ft.or_(ft.and_(x1, x2), x3))
    return ft.build()


def fig2_gfunction():
    return GeneralizedFaultTree(fig2_fault_tree(), COMPONENTS, max_defects=2)


def hand_computed_failure_probability(q, p):
    """Exact P(G = 1) for F = x1 x2 + x3 with M = 2.

    ``q`` is the pmf of the w variable over {0, 1, 2, 3(=overflow)}, ``p`` the
    per-lethal-defect component distribution over components 1..3.
    """
    total = q[3]  # overflow is pessimistically counted as failed
    # one defect: fails only if it hits component 3
    total += q[1] * p[3]
    # two defects: fails if any hits component 3, or both hit {1,2} covering both
    fail_two = 0.0
    for i, j in itertools.product((1, 2, 3), repeat=2):
        hit = {i, j}
        failed = (3 in hit) or ({1, 2} <= hit)
        if failed:
            fail_two += p[i] * p[j]
    total += q[2] * fail_two
    return total


class TestFig2Structure:
    def test_variable_domains(self):
        g = fig2_gfunction()
        assert g.count_variable.values == (0, 1, 2, 3)
        assert [v.name for v in g.location_variables] == ["v1", "v2"]
        assert g.location_variables[0].values == (1, 2, 3)

    def test_romdd_under_paper_ordering_mentions_all_variables(self):
        g = fig2_gfunction()
        order = [g.location_variables[0], g.location_variables[1], g.count_variable]
        manager, root, _ = build_mdd_from_mvcircuit(g.mv_circuit, order)
        assert manager.support(root) == ["v1", "v2", "w"]
        # Fig. 2 shows 6 non-terminal nodes for this ordering
        non_terminals = sum(1 for _ in manager.iter_nodes(root))
        assert non_terminals == 6


class TestFig2Numerics:
    @pytest.fixture
    def distributions(self):
        q = {0: 0.55, 1: 0.25, 2: 0.15, 3: 0.05}
        p = {1: 0.2, 2: 0.3, 3: 0.5}
        return q, p

    def test_probability_matches_hand_computation(self, distributions):
        q, p = distributions
        g = fig2_gfunction()
        order = [g.location_variables[0], g.location_variables[1], g.count_variable]
        manager, root, _ = build_mdd_from_mvcircuit(g.mv_circuit, order)
        dist = {
            "w": q,
            "v1": p,
            "v2": p,
        }
        computed = probability_of_one(manager, root, dist)
        assert computed == pytest.approx(hand_computed_failure_probability(q, p), rel=1e-12)

    def test_full_method_on_fig2_problem(self, distributions):
        q, p = distributions
        # component model with P'_i proportional to p and P_L = 0.6
        model = ComponentDefectModel(
            {"comp1": 0.6 * 0.2, "comp2": 0.6 * 0.3, "comp3": 0.6 * 0.5}
        )
        # choose a raw defect distribution whose thinned version has exactly
        # the w-pmf used in the hand computation: use the lethal pmf directly
        # with lethality 1.0 by scaling the model instead
        lethal_pmf = [q[0], q[1], q[2], q[3]]
        distribution = EmpiricalDefectDistribution(lethal_pmf)
        model_full = ComponentDefectModel({"comp1": 0.2, "comp2": 0.3, "comp3": 0.5})
        problem = YieldProblem(fig2_fault_tree(), model_full, distribution, name="fig2")
        analyzer = YieldAnalyzer(OrderingSpec("vw", "ml"))
        result = analyzer.evaluate(problem, max_defects=2)
        expected_failure = hand_computed_failure_probability(q, p)
        assert result.probability_not_functioning == pytest.approx(expected_failure, rel=1e-10)
        assert result.yield_estimate == pytest.approx(1.0 - expected_failure, rel=1e-10)

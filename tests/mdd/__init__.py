"""Test package."""

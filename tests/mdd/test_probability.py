"""Unit tests for the ROMDD probability traversal."""

import itertools

import pytest

from repro.faulttree import MultiValuedVariable
from repro.mdd import FALSE, MDDError, MDDManager, TRUE, probability_of_one


def brute_force_probability(manager, root, variables, distributions):
    total = 0.0
    domains = [v.values for v in variables]
    for combo in itertools.product(*domains):
        assignment = {v.name: value for v, value in zip(variables, combo)}
        if manager.evaluate(root, assignment):
            p = 1.0
            for v, value in zip(variables, combo):
                p *= distributions[v.name][value]
            total += p
    return total


@pytest.fixture
def setup():
    variables = [
        MultiValuedVariable("x", range(0, 3)),
        MultiValuedVariable("y", range(1, 4)),
    ]
    manager = MDDManager(variables)
    distributions = {
        "x": {0: 0.5, 1: 0.3, 2: 0.2},
        "y": {1: 0.1, 2: 0.6, 3: 0.3},
    }
    return manager, variables, distributions


class TestProbability:
    def test_terminals(self, setup):
        manager, _, dist = setup
        assert probability_of_one(manager, TRUE, dist) == 1.0
        assert probability_of_one(manager, FALSE, dist) == 0.0

    def test_single_literal(self, setup):
        manager, _, dist = setup
        node = manager.literal("x", [1, 2])
        assert probability_of_one(manager, node, dist) == pytest.approx(0.5)

    def test_composite_matches_brute_force(self, setup):
        manager, variables, dist = setup
        f = manager.or_(
            manager.and_(manager.literal("x", [0]), manager.literal("y", [2, 3])),
            manager.literal("x", [2]),
        )
        expected = brute_force_probability(manager, f, variables, dist)
        assert probability_of_one(manager, f, dist) == pytest.approx(expected, rel=1e-12)

    def test_skipped_variables_do_not_need_correction(self, setup):
        manager, variables, dist = setup
        # function depends only on y; the skipped x level must contribute factor 1
        node = manager.literal("y", [3])
        assert probability_of_one(manager, node, dist) == pytest.approx(0.3)

    def test_missing_distribution_rejected(self, setup):
        manager, _, dist = setup
        node = manager.literal("x", [0])
        with pytest.raises(MDDError):
            probability_of_one(manager, node, {"x": dist["x"]})

    def test_missing_value_rejected(self, setup):
        manager, _, _ = setup
        node = manager.literal("x", [0])
        with pytest.raises(MDDError):
            probability_of_one(manager, node, {"x": {0: 1.0}, "y": {1: 1, 2: 0, 3: 0}})

    def test_distribution_must_sum_to_one(self, setup):
        manager, _, _ = setup
        node = manager.literal("x", [0])
        bad = {"x": {0: 0.5, 1: 0.2, 2: 0.2}, "y": {1: 0.4, 2: 0.3, 3: 0.3}}
        with pytest.raises(MDDError):
            probability_of_one(manager, node, bad)

    def test_negative_probability_rejected(self, setup):
        manager, _, _ = setup
        node = manager.literal("x", [0])
        bad = {"x": {0: 1.2, 1: -0.2, 2: 0.0}, "y": {1: 1.0, 2: 0.0, 3: 0.0}}
        with pytest.raises(MDDError):
            probability_of_one(manager, node, bad)

    def test_complement_rule(self, setup):
        manager, variables, dist = setup
        f = manager.or_(manager.literal("x", [1]), manager.literal("y", [1]))
        p = probability_of_one(manager, f, dist)
        q = probability_of_one(manager, manager.not_(f), dist)
        assert p + q == pytest.approx(1.0, abs=1e-12)

"""Unit tests for the ROMDD manager."""

import itertools

import pytest

from repro.faulttree import MultiValuedVariable
from repro.mdd import FALSE, MDDError, MDDManager, TRUE


@pytest.fixture
def variables():
    return [
        MultiValuedVariable("x", range(0, 3)),
        MultiValuedVariable("y", range(1, 5)),
        MultiValuedVariable("z", range(0, 2)),
    ]


@pytest.fixture
def manager(variables):
    return MDDManager(variables)


def all_assignments(variables):
    domains = [v.values for v in variables]
    for combo in itertools.product(*domains):
        yield {v.name: value for v, value in zip(variables, combo)}


class TestConstruction:
    def test_rejects_empty_or_duplicate_variables(self, variables):
        with pytest.raises(MDDError):
            MDDManager([])
        with pytest.raises(MDDError):
            MDDManager([variables[0], variables[0]])

    def test_levels(self, manager):
        assert manager.level_of("x") == 0
        assert manager.variable_at_level(1).name == "y"
        with pytest.raises(MDDError):
            manager.level_of("nope")
        with pytest.raises(MDDError):
            manager.variable_at_level(9)

    def test_terminals(self, manager):
        assert manager.constant(True) == TRUE
        assert manager.constant(False) == FALSE
        assert manager.is_terminal(TRUE)


class TestNodeCreation:
    def test_reduction_rule(self, manager):
        # all children equal -> collapse
        assert manager.mk(0, [TRUE, TRUE, TRUE]) == TRUE
        assert manager.mk(2, [FALSE, FALSE]) == FALSE

    def test_hash_consing(self, manager):
        a = manager.mk(0, [TRUE, FALSE, TRUE])
        b = manager.mk(0, [TRUE, FALSE, TRUE])
        assert a == b

    def test_wrong_child_count(self, manager):
        with pytest.raises(MDDError):
            manager.mk(0, [TRUE, FALSE])  # x has 3 values

    def test_literal(self, manager):
        node = manager.literal("y", [2, 4])
        assert manager.evaluate(node, {"x": 0, "y": 2, "z": 0}) is True
        assert manager.evaluate(node, {"x": 0, "y": 3, "z": 0}) is False

    def test_literal_rejects_foreign_values(self, manager):
        with pytest.raises(MDDError):
            manager.literal("y", [0])  # y's domain starts at 1


class TestApply:
    def test_boolean_identities(self, manager):
        f = manager.literal("x", [0, 2])
        g = manager.literal("y", [1])
        assert manager.and_(f, TRUE) == f
        assert manager.and_(f, FALSE) == FALSE
        assert manager.or_(f, FALSE) == f
        assert manager.or_(f, TRUE) == TRUE
        assert manager.and_(f, f) == f
        assert manager.xor_(f, f) == FALSE
        assert manager.not_(manager.not_(g)) == g

    def test_apply_matches_semantics(self, variables, manager):
        f = manager.literal("x", [1, 2])
        g = manager.literal("y", [2, 3])
        h = manager.literal("z", [1])
        composite = manager.or_(manager.and_(f, g), manager.xor_(g, h))
        for assignment in all_assignments(variables):
            fx = assignment["x"] in (1, 2)
            gy = assignment["y"] in (2, 3)
            hz = assignment["z"] == 1
            expected = (fx and gy) or (gy != hz)
            assert manager.evaluate(composite, assignment) is expected

    def test_and_or_many(self, manager):
        literals = [manager.literal("x", [0]), manager.literal("y", [1]), manager.literal("z", [0])]
        f_all = manager.and_many(literals)
        f_any = manager.or_many(literals)
        assert manager.evaluate(f_all, {"x": 0, "y": 1, "z": 0}) is True
        assert manager.evaluate(f_all, {"x": 0, "y": 2, "z": 0}) is False
        assert manager.evaluate(f_any, {"x": 2, "y": 4, "z": 1}) is False
        assert manager.and_many([]) == TRUE
        assert manager.or_many([]) == FALSE

    def test_de_morgan_for_mdds(self, variables, manager):
        f = manager.literal("x", [0])
        g = manager.literal("z", [1])
        left = manager.not_(manager.and_(f, g))
        right = manager.or_(manager.not_(f), manager.not_(g))
        assert left == right


class TestQueries:
    def test_evaluate_missing_or_invalid(self, manager):
        f = manager.literal("x", [0])
        with pytest.raises(MDDError):
            manager.evaluate(f, {})
        with pytest.raises(MDDError):
            manager.evaluate(f, {"x": 99})

    def test_size_and_support(self, manager):
        f = manager.and_(manager.literal("x", [0]), manager.literal("z", [1]))
        assert manager.size(f) == 4  # two non-terminals + two terminals
        assert manager.support(f) == ["x", "z"]

    def test_iter_nodes(self, manager):
        f = manager.and_(manager.literal("x", [0]), manager.literal("y", [1]))
        handles = [h for h, _, _ in manager.iter_nodes(f)]
        assert all(h > TRUE for h in handles)
        assert len(handles) == 2

    def test_clear_cache_preserves_functions(self, manager):
        f = manager.and_(manager.literal("x", [0]), manager.literal("y", [1]))
        manager.clear_operation_cache()
        assert manager.evaluate(f, {"x": 0, "y": 1, "z": 0}) is True

"""Unit tests for the coded-ROBDD to ROMDD conversion (Fig. 3 procedure)."""

import itertools

import pytest

from repro.bdd import BDDManager, build_circuit_bdd
from repro.faulttree import GateOp, MVCircuit, MultiValuedVariable
from repro.mdd import MDDError, MDDManager, TRUE, convert_bdd_to_mdd
from repro.mdd.direct import build_mdd_from_mvcircuit


def make_mv_circuit():
    """G = (x >= 2) OR (y == 1 AND z == 0) with x in 0..4, y in 1..3, z in 0..1."""
    mv = MVCircuit("conv-test")
    x = mv.add_variable(MultiValuedVariable("x", range(0, 5)))
    y = mv.add_variable(MultiValuedVariable("y", range(1, 4)))
    z = mv.add_variable(MultiValuedVariable("z", range(0, 2)))
    top = mv.gate(
        GateOp.OR,
        [
            mv.filter_geq(x, 2),
            mv.gate(GateOp.AND, [mv.filter_eq(y, 1), mv.filter_eq(z, 0)]),
        ],
    )
    mv.set_top(top)
    return mv


def groups_for(mv, order_names, bit_order="ml"):
    groups = []
    for name in order_names:
        var = mv.variable(name)
        bits = list(var.bit_names())
        if bit_order == "lm":
            bits = list(reversed(bits))
        groups.append((var, bits))
    return groups


def convert(mv, order_names, bit_order="ml"):
    groups = groups_for(mv, order_names, bit_order)
    flat = [bit for _, bits in groups for bit in bits]
    binary = mv.binary_encode()
    bdd_manager, root, _ = build_circuit_bdd(binary, flat)
    return convert_bdd_to_mdd(bdd_manager, root, groups)


def assert_matches_mv(mv, mdd_manager, mdd_root):
    domains = [v.values for v in mv.variables]
    names = [v.name for v in mv.variables]
    for combo in itertools.product(*domains):
        assignment = dict(zip(names, combo))
        assert mdd_manager.evaluate(mdd_root, assignment) is mv.evaluate(assignment)


class TestConversionCorrectness:
    def test_semantics_preserved_default_order(self):
        mv = make_mv_circuit()
        mdd_manager, root = convert(mv, ["x", "y", "z"])
        assert_matches_mv(mv, mdd_manager, root)

    def test_semantics_preserved_other_mv_orders(self):
        mv = make_mv_circuit()
        for order in (["z", "y", "x"], ["y", "x", "z"], ["x", "z", "y"]):
            mdd_manager, root = convert(mv, order)
            assert_matches_mv(mv, mdd_manager, root)

    def test_semantics_preserved_lm_bit_order(self):
        mv = make_mv_circuit()
        mdd_manager, root = convert(mv, ["x", "y", "z"], bit_order="lm")
        assert_matches_mv(mv, mdd_manager, root)

    def test_constant_function(self):
        mv = MVCircuit("const")
        x = mv.add_variable(MultiValuedVariable("x", range(0, 3)))
        mv.set_top(mv.filter_geq(x, 0))  # always true
        groups = groups_for(mv, ["x"])
        binary = mv.binary_encode()
        bdd_manager, root, _ = build_circuit_bdd(binary, [b for _, bits in groups for b in bits])
        mdd_manager, mdd_root = convert_bdd_to_mdd(bdd_manager, root, groups)
        assert mdd_root == TRUE

    def test_matches_direct_construction(self):
        # canonical representations: conversion route == direct MDD apply route
        mv = make_mv_circuit()
        order = ["x", "y", "z"]
        mdd_a, root_a = convert(mv, order)
        variables = [mv.variable(n) for n in order]
        mdd_b, root_b, _ = build_mdd_from_mvcircuit(mv, variables)
        assert mdd_a.size(root_a) == mdd_b.size(root_b)
        assert_matches_mv(mv, mdd_b, root_b)

    def test_existing_manager_can_be_reused(self):
        mv = make_mv_circuit()
        order = ["x", "y", "z"]
        groups = groups_for(mv, order)
        flat = [bit for _, bits in groups for bit in bits]
        binary = mv.binary_encode()
        bdd_manager, root, _ = build_circuit_bdd(binary, flat)
        shared = MDDManager([mv.variable(n) for n in order])
        mdd_manager, mdd_root = convert_bdd_to_mdd(bdd_manager, root, groups, mdd=shared)
        assert mdd_manager is shared
        assert_matches_mv(mv, mdd_manager, mdd_root)

    def test_mismatched_manager_rejected(self):
        mv = make_mv_circuit()
        groups = groups_for(mv, ["x", "y", "z"])
        flat = [bit for _, bits in groups for bit in bits]
        binary = mv.binary_encode()
        bdd_manager, root, _ = build_circuit_bdd(binary, flat)
        wrong = MDDManager([mv.variable("z"), mv.variable("x"), mv.variable("y")])
        with pytest.raises(MDDError):
            convert_bdd_to_mdd(bdd_manager, root, groups, mdd=wrong)


class TestGroupingValidation:
    def test_non_contiguous_groups_rejected(self):
        mv = make_mv_circuit()
        groups = groups_for(mv, ["x", "y", "z"])
        # interleave bits of x and y in the BDD order
        x_bits = list(groups[0][1])
        y_bits = list(groups[1][1])
        flat = [x_bits[0], y_bits[0], x_bits[1], y_bits[1]] + [x_bits[2]] + list(groups[2][1])
        binary = mv.binary_encode()
        bdd_manager, root, _ = build_circuit_bdd(binary, flat)
        with pytest.raises(MDDError):
            convert_bdd_to_mdd(bdd_manager, root, groups)

    def test_groups_out_of_order_rejected(self):
        mv = make_mv_circuit()
        groups = groups_for(mv, ["x", "y", "z"])
        reversed_flat = [bit for _, bits in reversed(groups) for bit in bits]
        binary = mv.binary_encode()
        bdd_manager, root, _ = build_circuit_bdd(binary, reversed_flat)
        with pytest.raises(MDDError):
            convert_bdd_to_mdd(bdd_manager, root, groups)

    def test_foreign_bit_rejected(self):
        mv = make_mv_circuit()
        groups = groups_for(mv, ["x", "y", "z"])
        flat = ["alien"] + [bit for _, bits in groups for bit in bits]
        bdd_manager = BDDManager(flat)
        root = bdd_manager.var("alien")
        with pytest.raises(MDDError):
            convert_bdd_to_mdd(bdd_manager, root, groups)

    def test_duplicate_bit_in_groups_rejected(self):
        mv = make_mv_circuit()
        x = mv.variable("x")
        groups = [(x, list(x.bit_names())), (x, list(x.bit_names()))]
        bdd_manager = BDDManager(list(x.bit_names()))
        with pytest.raises(MDDError):
            convert_bdd_to_mdd(bdd_manager, bdd_manager.var(x.bit_names()[0]), groups)

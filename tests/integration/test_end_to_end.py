"""End-to-end integration tests on the paper's benchmark systems.

These run the complete pipeline (defect model -> truncation -> G-function ->
ordering heuristics -> coded ROBDD -> ROMDD -> probability) on real benchmark
instances, with truncation levels reduced where needed to keep the suite
fast.  The full paper-scale configurations are exercised by ``benchmarks/``.
"""

import pytest

from repro import YieldAnalyzer, estimate_yield_montecarlo, evaluate_yield
from repro.ordering import OrderingSpec
from repro.soc import benchmark_problem, esen_problem, ms_problem


class TestMSBenchmarks:
    def test_ms2_full_paper_operating_point(self):
        # lambda' = 1, eps = 1e-3 -> M = 6, the exact configuration of Table 4
        problem = ms_problem(2, mean_defects=2.0)
        result = evaluate_yield(problem, epsilon=1e-3, track_peak=True)
        assert result.truncation == 6
        # Table 2/4 of the paper report a 2,034-node ROMDD and a ~24k-node
        # coded ROBDD for MS2 under the weight/ml heuristics
        assert result.romdd_size == 2034
        assert 20_000 <= result.coded_robdd_size <= 28_000
        assert result.robdd_peak >= result.coded_robdd_size
        # the paper reports yield 0.944; our defect-probability ratios are a
        # reconstruction, so only require the same ballpark
        assert result.yield_estimate == pytest.approx(0.944, abs=0.02)

    def test_ms2_high_defect_density(self):
        # lambda' = 2 -> M = 10 at eps = 1e-3
        problem = ms_problem(2, mean_defects=4.0)
        result = evaluate_yield(problem, epsilon=1e-3)
        assert result.truncation == 10
        # the paper reports 7,534 ROMDD nodes and yield 0.830 for MS2, lambda'=2
        assert result.romdd_size == pytest.approx(7534, rel=0.05)
        assert result.yield_estimate == pytest.approx(0.830, abs=0.04)

    def test_ms_yield_increases_with_cluster_count(self):
        # more clusters -> more IPS redundancy relative to the defect density
        # (each additional cluster also adds area, so compare at reduced M)
        small = evaluate_yield(ms_problem(2), max_defects=3).yield_estimate
        large = evaluate_yield(ms_problem(4), max_defects=3).yield_estimate
        assert 0.0 < small < 1.0 and 0.0 < large < 1.0

    def test_ms2_montecarlo_agreement(self):
        problem = ms_problem(2, mean_defects=2.0)
        combinatorial = evaluate_yield(problem, epsilon=1e-4)
        simulated = estimate_yield_montecarlo(problem, 20_000, seed=7)
        assert abs(combinatorial.yield_estimate - simulated.yield_estimate) < (
            5 * simulated.standard_error + 1e-3
        )


class TestESENBenchmarks:
    def test_esen4x1_full_paper_operating_point(self):
        problem = esen_problem(4, 1, mean_defects=2.0)
        result = evaluate_yield(problem, epsilon=1e-3, track_peak=True)
        assert result.truncation == 6
        assert 0.85 <= result.yield_estimate <= 0.99
        assert result.coded_robdd_size >= result.romdd_size

    def test_esen4x2_reduced_truncation(self):
        problem = esen_problem(4, 2, mean_defects=2.0)
        result = evaluate_yield(problem, max_defects=4)
        assert 0.8 <= result.yield_estimate <= 0.99

    def test_esen_yield_decreases_with_defect_density(self):
        low = evaluate_yield(esen_problem(4, 1, mean_defects=2.0), max_defects=4)
        high = evaluate_yield(esen_problem(4, 1, mean_defects=4.0), max_defects=4)
        assert high.yield_estimate < low.yield_estimate


class TestOrderingComparison:
    def test_weight_heuristic_beats_vrw_on_ms2(self):
        # Table 2: vrw explodes, the weight heuristic is the best performer
        problem = ms_problem(2, mean_defects=2.0)
        weight = YieldAnalyzer(OrderingSpec("w", "ml")).diagram_sizes(problem, max_defects=3)
        vrw = YieldAnalyzer(OrderingSpec("vrw", "ml")).diagram_sizes(problem, max_defects=3)
        assert weight[1] < vrw[1]

    def test_wvr_matches_weight_romdd_size_on_ms2(self):
        # the paper notes wvr gives exactly the same ROMDD sizes as w
        problem = ms_problem(2, mean_defects=2.0)
        weight = YieldAnalyzer(OrderingSpec("w", "ml")).diagram_sizes(problem, max_defects=4)
        wvr = YieldAnalyzer(OrderingSpec("wvr", "ml")).diagram_sizes(problem, max_defects=4)
        assert weight[1] == wvr[1]


class TestRegistryEndToEnd:
    @pytest.mark.parametrize("name", ["MS2", "ESEN4x1"])
    def test_benchmarks_run_from_the_registry(self, name):
        problem = benchmark_problem(name, mean_defects=2.0)
        result = evaluate_yield(problem, max_defects=3)
        assert 0.0 < result.yield_estimate < 1.0
        assert result.name == name

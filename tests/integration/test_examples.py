"""Smoke tests that run every example script as a subprocess."""

import os
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py")) if EXAMPLES_DIR.exists() else []


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs_cleanly(script):
    env = dict(os.environ)
    env["REPRO_EXAMPLE_FAST"] = "1"  # examples honour this to shrink their workloads
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "example produced no output"


def test_there_are_at_least_three_examples():
    assert len(EXAMPLES) >= 3

"""Test package."""

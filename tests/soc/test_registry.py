"""Unit tests for the benchmark registry."""

import pytest

from repro.soc import BENCHMARK_NAMES, BENCHMARKS, benchmark_problem

#: Table 1 of the paper.
PAPER_TABLE1 = {
    "MS2": 18,
    "MS4": 30,
    "MS6": 42,
    "MS8": 54,
    "MS10": 66,
    "ESEN4x1": 14,
    "ESEN4x2": 26,
    "ESEN4x4": 34,
    "ESEN8x1": 32,
    "ESEN8x2": 56,
    "ESEN8x4": 72,
}


class TestRegistry:
    def test_all_paper_benchmarks_are_registered(self):
        assert set(BENCHMARK_NAMES) == set(PAPER_TABLE1)
        assert list(BENCHMARKS) == BENCHMARK_NAMES

    @pytest.mark.parametrize("name,expected", sorted(PAPER_TABLE1.items()))
    def test_component_counts_reproduce_table1(self, name, expected):
        problem = benchmark_problem(name)
        assert problem.num_components == expected

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            benchmark_problem("MS3")

    def test_keyword_arguments_are_forwarded(self):
        problem = benchmark_problem("MS2", mean_defects=4.0, lethality=0.25)
        assert problem.lethality == pytest.approx(0.25)
        assert problem.lethal_defect_distribution().mean() == pytest.approx(1.0)

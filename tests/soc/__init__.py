"""Test package."""

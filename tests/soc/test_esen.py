"""Unit tests for the ESEN n x m benchmark generator."""

import itertools

import pytest

from repro.soc.esen import (
    enumerate_paths,
    esen_architecture_summary,
    esen_component_classes,
    esen_component_model,
    esen_component_names,
    esen_fault_tree,
    esen_problem,
    ipa_port,
    num_stages,
    perfect_shuffle,
    used_ports,
)

#: Component counts from Table 1 of the paper.
PAPER_COMPONENT_COUNTS = {
    (4, 1): 14,
    (4, 2): 26,
    (4, 4): 34,
    (8, 1): 32,
    (8, 2): 56,
    (8, 4): 72,
}


class TestTopology:
    def test_perfect_shuffle_is_a_permutation(self):
        for n in (4, 8, 16):
            image = {perfect_shuffle(p, n) for p in range(n)}
            assert image == set(range(n))

    def test_perfect_shuffle_rotates_bits(self):
        assert perfect_shuffle(0b011, 8) == 0b110
        assert perfect_shuffle(0b100, 8) == 0b001

    def test_num_stages(self):
        assert num_stages(4) == 3
        assert num_stages(8) == 4

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            num_stages(6)
        with pytest.raises(ValueError):
            num_stages(1)

    @pytest.mark.parametrize("n", [4, 8])
    def test_exactly_two_paths_per_pair(self, n):
        for source in range(n):
            for destination in range(n):
                paths = enumerate_paths(n, source, destination)
                assert len(paths) == 2
                for path in paths:
                    assert len(path) == num_stages(n)
                    stages = [stage for stage, _ in path]
                    assert stages == list(range(num_stages(n)))

    @pytest.mark.parametrize("n", [4, 8])
    def test_the_two_paths_differ(self, n):
        for source in range(n):
            for destination in range(n):
                a, b = enumerate_paths(n, source, destination)
                assert a != b


class TestInventory:
    @pytest.mark.parametrize("nm,expected", sorted(PAPER_COMPONENT_COUNTS.items()))
    def test_component_counts_match_table1(self, nm, expected):
        n, m = nm
        assert len(esen_component_names(n, m)) == expected

    def test_classes_partition_components(self):
        classes = esen_component_classes(8, 2)
        flattened = [name for names in classes.values() for name in names]
        assert sorted(flattened) == sorted(esen_component_names(8, 2))
        assert len(classes["IPA"]) == 8
        assert len(classes["IPB"]) == 8
        assert len(classes["SE"]) == 16
        assert len(classes["SE_SPARE"]) == 8
        assert len(classes["C"]) == 16

    def test_m1_has_no_concentrators(self):
        assert esen_component_classes(4, 1)["C"] == []

    def test_invalid_m(self):
        with pytest.raises(ValueError):
            esen_component_names(4, 3)
        with pytest.raises(ValueError):
            esen_component_names(4, 0)

    def test_used_ports_and_core_attachment(self):
        assert used_ports(8, 1) == [0, 1, 2, 3]
        assert used_ports(8, 2) == list(range(8))
        # 16 IPAs over 8 ports for m = 4: two cores per port
        ports = [ipa_port(i, 8, 4) for i in range(16)]
        assert all(ports.count(p) == 2 for p in range(8))

    def test_architecture_summary(self):
        text = esen_architecture_summary(8, 2)
        assert "ESEN8x2" in text and "56" in text


class TestFaultTree:
    def test_no_failures_means_working(self):
        tree = esen_fault_tree(4, 2)
        assignment = {name: False for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False

    def test_all_failures_means_failed(self):
        tree = esen_fault_tree(4, 2)
        assignment = {name: True for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    @pytest.mark.parametrize("n,m", [(4, 1), (4, 2), (8, 2)])
    def test_single_component_failures_are_tolerated(self, n, m):
        tree = esen_fault_tree(n, m)
        for failed in tree.input_names:
            assignment = {name: name == failed for name in tree.input_names}
            assert tree.evaluate_output(assignment) is False, failed

    def test_two_ipa_failures_kill_the_default_quorum(self):
        tree = esen_fault_tree(4, 2)  # 4 IPAs, quorum 3
        assignment = {name: name in ("IPA_0", "IPA_1") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_middle_stage_switch_pair_can_break_full_access(self):
        # failing a middle-stage switch and one first-stage switch pair member
        # plus its spare removes both paths for some port pair
        tree = esen_fault_tree(4, 1)
        failed = {"SE_1_0", "SE_1_1"}
        assignment = {name: name in failed for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_first_stage_primary_and_spare_must_both_fail(self):
        tree = esen_fault_tree(4, 1)
        # only the primary fails: spare covers it
        assignment = {name: name == "SE_0_0" for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False
        # primary and spare fail: the served input port loses all paths
        assignment = {name: name in ("SE_0_0", "SE_0_0_R") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_both_concentrators_of_a_port_must_fail(self):
        tree = esen_fault_tree(4, 2)
        # one concentrator down: its twin still serves the port
        assignment = {name: name == "C_0_A" for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False
        # both concentrators down: port 0's IPA is cut off, which by itself is
        # still within the default quorum (one core may be lost)...
        assignment = {name: name in ("C_0_A", "C_0_B") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False
        # ...but losing any further IPA on top of it violates the quorum
        assignment = {
            name: name in ("C_0_A", "C_0_B", "IPA_1") for name in tree.input_names
        }
        assert tree.evaluate_output(assignment) is True

    def test_custom_quorum(self):
        tree = esen_fault_tree(4, 2, required_ipa=2, required_ipb=2)
        assignment = {name: name in ("IPA_0", "IPA_1") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False

    def test_invalid_quorum(self):
        with pytest.raises(ValueError):
            esen_fault_tree(4, 2, required_ipa=9)
        with pytest.raises(ValueError):
            esen_fault_tree(4, 2, required_ipb=0)


class TestDefectModel:
    def test_ratios(self):
        model = esen_component_model(4, 2)
        assert model.raw_probability("IPB_0") == pytest.approx(
            model.raw_probability("IPA_0")
        )
        assert model.raw_probability("SE_0_0") == pytest.approx(
            0.2 * model.raw_probability("IPA_0")
        )
        assert model.raw_probability("C_0_A") == pytest.approx(
            0.1 * model.raw_probability("IPA_0")
        )
        assert model.lethality == pytest.approx(0.5)

    def test_problem_assembly(self):
        problem = esen_problem(4, 2, mean_defects=4.0)
        assert problem.name == "ESEN4x2"
        assert problem.num_components == 26
        assert problem.lethal_defect_distribution().mean() == pytest.approx(2.0)

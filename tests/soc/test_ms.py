"""Unit tests for the MSn benchmark generator."""

import itertools

import pytest

from repro.soc.ms import (
    ms_architecture_summary,
    ms_component_classes,
    ms_component_model,
    ms_component_names,
    ms_fault_tree,
    ms_problem,
)

#: Component counts from Table 1 of the paper.
PAPER_COMPONENT_COUNTS = {2: 18, 4: 30, 6: 42, 8: 54, 10: 66}


class TestInventory:
    @pytest.mark.parametrize("n,expected", sorted(PAPER_COMPONENT_COUNTS.items()))
    def test_component_counts_match_table1(self, n, expected):
        assert len(ms_component_names(n)) == expected

    def test_classes_partition_components(self):
        classes = ms_component_classes(4)
        flattened = [name for names in classes.values() for name in names]
        assert sorted(flattened) == sorted(ms_component_names(4))
        assert len(classes["IPM"]) == 2
        assert len(classes["CM"]) == 4
        assert len(classes["IPS"]) == 8
        assert len(classes["CS"]) == 16

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ms_component_names(0)

    def test_architecture_summary_mentions_counts(self):
        text = ms_architecture_summary(4)
        assert "MS4" in text and "30" in text


class TestFaultTree:
    def test_no_failures_means_working(self):
        tree = ms_fault_tree(2)
        assignment = {name: False for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False

    def test_all_failures_means_failed(self):
        tree = ms_fault_tree(2)
        assignment = {name: True for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_single_component_failures_are_tolerated(self):
        tree = ms_fault_tree(3)
        for failed in tree.input_names:
            assignment = {name: name == failed for name in tree.input_names}
            assert tree.evaluate_output(assignment) is False, failed

    def test_both_masters_failing_kills_the_system(self):
        tree = ms_fault_tree(2)
        assignment = {name: name.startswith("IPM") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_whole_cluster_failing_kills_the_system(self):
        tree = ms_fault_tree(2)
        assignment = {
            name: name.startswith("IPS_1_") for name in tree.input_names
        }
        assert tree.evaluate_output(assignment) is True

    def test_one_slave_per_cluster_is_enough(self):
        tree = ms_fault_tree(2)
        # fail the second slave of every cluster: still operational
        assignment = {name: name.startswith("IPS") and name.endswith("_2") for name in tree.input_names}
        assert tree.evaluate_output(assignment) is False

    def test_master_needs_a_shared_bus_with_each_cluster(self):
        tree = ms_fault_tree(2)
        # master 1 alive but its modules dead, master 2 dead: no communication
        failed = {"IPM_2", "CM_1_A", "CM_1_B"}
        assignment = {name: name in failed for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True

    def test_cross_bus_paths_must_not_mix(self):
        tree = ms_fault_tree(1)
        # IPM_2 dead. IPM_1 can only use bus A (CM_1_B dead); the surviving
        # slave modules only reach bus B: communication impossible.
        failed = {"IPM_2", "CM_1_B", "CS_1_1_A", "CS_1_2_A"}
        assignment = {name: name in failed for name in tree.input_names}
        assert tree.evaluate_output(assignment) is True
        # restoring one slave's bus-A module restores the system
        assignment["CS_1_1_A"] = False
        assert tree.evaluate_output(assignment) is False

    def test_gate_count_scales_linearly(self):
        g2 = ms_fault_tree(2).num_gates
        g4 = ms_fault_tree(4).num_gates
        g6 = ms_fault_tree(6).num_gates
        assert g4 - g2 == g6 - g4


class TestDefectModel:
    def test_lethality_and_ratios(self):
        model = ms_component_model(2, lethality=0.5, ips_to_ipm=1.0, comm_to_ipm=0.1)
        assert model.lethality == pytest.approx(0.5)
        assert model.raw_probability("IPS_1_1") == pytest.approx(
            model.raw_probability("IPM_1")
        )
        assert model.raw_probability("CM_1_A") == pytest.approx(
            0.1 * model.raw_probability("IPM_1")
        )

    def test_problem_assembly(self):
        problem = ms_problem(2, mean_defects=2.0)
        assert problem.name == "MS2"
        assert problem.num_components == 18
        assert problem.lethal_defect_distribution().mean() == pytest.approx(1.0)

    def test_custom_distribution_is_honoured(self):
        from repro.distributions import PoissonDefectDistribution

        problem = ms_problem(2, defect_distribution=PoissonDefectDistribution(3.0))
        assert problem.defect_distribution.mean() == pytest.approx(3.0)

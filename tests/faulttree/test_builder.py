"""Unit tests for the fault-tree builder DSL."""

import itertools

import pytest

from repro.faulttree import CircuitError, FaultTreeBuilder


def brute_force_at_least(k, values):
    return sum(values) >= k


class TestLeavesAndGates:
    def test_failed_and_working_are_complements(self):
        ft = FaultTreeBuilder()
        ft.set_top(ft.working("A"))
        circuit = ft.build()
        assert circuit.evaluate_output({"A": True}) is False
        assert circuit.evaluate_output({"A": False}) is True

    def test_operator_sugar(self):
        ft = FaultTreeBuilder()
        a, b = ft.failed("A"), ft.failed("B")
        ft.set_top((a & b) | ~a)
        circuit = ft.build()
        for va, vb in itertools.product((False, True), repeat=2):
            expected = (va and vb) or (not va)
            assert circuit.evaluate_output({"A": va, "B": vb}) is expected

    def test_xor(self):
        ft = FaultTreeBuilder()
        ft.set_top(ft.xor_(ft.failed("A"), ft.failed("B")))
        circuit = ft.build()
        assert circuit.evaluate_output({"A": True, "B": False}) is True
        assert circuit.evaluate_output({"A": True, "B": True}) is False

    def test_single_operand_and_or_collapse(self):
        ft = FaultTreeBuilder()
        a = ft.failed("A")
        assert ft.and_(a).index == a.index
        assert ft.or_(a).index == a.index

    def test_nested_iterables_are_flattened(self):
        ft = FaultTreeBuilder()
        items = [ft.failed(name) for name in "ABC"]
        ft.set_top(ft.or_(items))
        circuit = ft.build()
        assert circuit.evaluate_output({"A": False, "B": False, "C": True}) is True

    def test_empty_gate_rejected(self):
        ft = FaultTreeBuilder()
        with pytest.raises(CircuitError):
            ft.or_()

    def test_component_names_tracks_declaration_order(self):
        ft = FaultTreeBuilder()
        ft.failed("B")
        ft.failed("A")
        ft.failed("B")
        assert ft.component_names == ("B", "A")

    def test_foreign_expression_rejected(self):
        ft1, ft2 = FaultTreeBuilder(), FaultTreeBuilder()
        a = ft1.failed("A")
        with pytest.raises(CircuitError):
            ft2.not_(a)
        with pytest.raises(CircuitError):
            ft2.set_top(a)

    def test_build_without_top_rejected(self):
        with pytest.raises(CircuitError):
            FaultTreeBuilder().build()


class TestThresholdStructures:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("k", [0, 1, 2, 3, 6])
    def test_at_least_matches_brute_force(self, n, k):
        ft = FaultTreeBuilder()
        names = ["C%d" % i for i in range(n)]
        ft.set_top(ft.at_least(k, [ft.failed(name) for name in names]))
        circuit = ft.build()
        for values in itertools.product((False, True), repeat=n):
            assignment = dict(zip(names, values))
            expected = brute_force_at_least(k, values)
            assert circuit.evaluate_output(assignment) is expected

    def test_at_most_and_exactly(self):
        ft = FaultTreeBuilder()
        names = ["C%d" % i for i in range(4)]
        exprs = [ft.failed(name) for name in names]
        ft.set_top(ft.and_(ft.at_most(2, exprs), ft.exactly(2, exprs)))
        circuit = ft.build()
        for values in itertools.product((False, True), repeat=4):
            assignment = dict(zip(names, values))
            expected = sum(values) == 2
            assert circuit.evaluate_output(assignment) is expected

    def test_k_out_of_n_failed(self):
        ft = FaultTreeBuilder()
        ft.set_top(ft.k_out_of_n_failed(2, ["A", "B", "C"]))
        circuit = ft.build()
        assert circuit.evaluate_output({"A": True, "B": True, "C": False}) is True
        assert circuit.evaluate_output({"A": True, "B": False, "C": False}) is False

    def test_at_least_expansion_is_polynomial(self):
        # the memoized expansion must stay ~O(k*n), not exponential
        ft = FaultTreeBuilder()
        exprs = [ft.failed("C%d" % i) for i in range(20)]
        ft.set_top(ft.at_least(10, exprs))
        circuit = ft.build()
        assert circuit.num_gates < 1200

    def test_series_and_parallel(self):
        ft = FaultTreeBuilder()
        ft.set_top(ft.or_(ft.series_fails(["A", "B"]), ft.parallel_fails(["C", "D"])))
        circuit = ft.build()
        # series: any of A, B failed fails the system
        assert circuit.evaluate_output({"A": True, "B": False, "C": False, "D": False}) is True
        # parallel: both C and D must fail
        assert circuit.evaluate_output({"A": False, "B": False, "C": True, "D": False}) is False
        assert circuit.evaluate_output({"A": False, "B": False, "C": True, "D": True}) is True

    def test_set_top_from_functioning(self):
        ft = FaultTreeBuilder()
        ft.set_top_from_functioning(ft.working("A"))
        circuit = ft.build()
        # F = 1 means failed; the system works iff A works
        assert circuit.evaluate_output({"A": False}) is False
        assert circuit.evaluate_output({"A": True}) is True

"""Unit tests for gate operators."""

import pytest

from repro.faulttree.ops import (
    CircuitError,
    GateOp,
    NARY_OPS,
    UNARY_OPS,
    evaluate_gate,
    validate_arity,
)


class TestArity:
    def test_unary_requires_exactly_one(self):
        validate_arity(GateOp.NOT, 1)
        with pytest.raises(CircuitError):
            validate_arity(GateOp.NOT, 2)
        with pytest.raises(CircuitError):
            validate_arity(GateOp.BUF, 0)

    def test_nary_requires_at_least_one(self):
        validate_arity(GateOp.AND, 1)
        validate_arity(GateOp.OR, 5)
        with pytest.raises(CircuitError):
            validate_arity(GateOp.AND, 0)

    def test_op_sets_cover_all_ops(self):
        assert UNARY_OPS | NARY_OPS == frozenset(GateOp)


class TestEvaluation:
    @pytest.mark.parametrize(
        "op,values,expected",
        [
            (GateOp.AND, [True, True, True], True),
            (GateOp.AND, [True, False], False),
            (GateOp.OR, [False, False], False),
            (GateOp.OR, [False, True], True),
            (GateOp.NAND, [True, True], False),
            (GateOp.NAND, [True, False], True),
            (GateOp.NOR, [False, False], True),
            (GateOp.NOR, [True, False], False),
            (GateOp.XOR, [True, False, True], False),
            (GateOp.XOR, [True, False, False], True),
            (GateOp.XNOR, [True, True], True),
            (GateOp.XNOR, [True, False], False),
            (GateOp.NOT, [True], False),
            (GateOp.NOT, [False], True),
            (GateOp.BUF, [True], True),
        ],
    )
    def test_gate_truth_tables(self, op, values, expected):
        assert evaluate_gate(op, values) is expected

"""Test package."""

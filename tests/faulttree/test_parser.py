"""Tests for the textual fault-tree format."""

import itertools

import pytest

from repro.faulttree import FaultTreeBuilder, loads, dumps, load, dump
from repro.faulttree.parser import FaultTreeParseError
from repro.distributions import ComponentDefectModel

EXAMPLE = """
# toy master/slave system
toplevel SYSTEM;
SYSTEM   or MASTERS CLUSTER;      # fails if masters fail or the cluster fails
MASTERS  and IPM_1 IPM_2;
CLUSTER  2of3 IPS_1 IPS_2 IPS_3;
IPM_1 prob 0.1;
IPM_2 prob 0.1;
IPS_1 prob 0.05;
IPS_2 prob 0.05;
IPS_3 prob 0.05;
"""


class TestLoads:
    def test_parses_structure_and_probabilities(self):
        circuit, model = loads(EXAMPLE, name="toy")
        assert circuit.name == "toy"
        assert set(circuit.input_names) == {"IPM_1", "IPM_2", "IPS_1", "IPS_2", "IPS_3"}
        assert model.count == 5
        assert model.raw_probability("IPM_1") == pytest.approx(0.1)
        assert model.lethality == pytest.approx(0.35)

    def test_semantics(self):
        circuit, _ = loads(EXAMPLE)
        # both masters failed -> system failed
        assignment = {name: name.startswith("IPM") for name in circuit.input_names}
        assert circuit.evaluate_output(assignment) is True
        # one master failed -> fine (single slave failures also fine)
        assignment = {name: name == "IPM_1" for name in circuit.input_names}
        assert circuit.evaluate_output(assignment) is False
        # two slaves failed -> 2of3 trips
        assignment = {name: name in ("IPS_1", "IPS_3") for name in circuit.input_names}
        assert circuit.evaluate_output(assignment) is True

    def test_toplevel_can_be_a_basic_event(self):
        circuit, model = loads("toplevel X;\nX prob 0.2;")
        assert circuit.evaluate_output({"X": True}) is True
        assert circuit.evaluate_output({"X": False}) is False
        assert model.count == 1

    def test_not_and_xor(self):
        text = """
        toplevel T;
        T xor A N;
        N not B;
        A prob 0.1; B prob 0.1;
        """
        circuit, _ = loads(text)
        for a, b in itertools.product((False, True), repeat=2):
            expected = a != (not b)
            assert circuit.evaluate_output({"A": a, "B": b}) is expected

    def test_extra_basic_events_become_model_components(self):
        text = "toplevel T;\nT and A B;\nA prob 0.1;\nB prob 0.1;\nSPARE prob 0.05;"
        circuit, model = loads(text)
        assert "SPARE" not in circuit.input_names
        assert "SPARE" in model.names


class TestLoadErrors:
    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("T and A B;\nA prob 0.1;\nB prob 0.1;", "toplevel"),
            ("toplevel T;\nA prob 0.1;", "never declared"),
            ("toplevel T;\nT and A B;\nA prob 0.1;", "undeclared node"),
            ("toplevel T;\nT and A B;\nA prob 0.1;\nB prob 0.1;\nT or A B;", "duplicate"),
            ("toplevel T;\nT bogus A B;\nA prob 0.1;\nB prob 0.1;", "unknown operator"),
            ("toplevel T;\nT 2of3 A B;\nA prob 0.1;\nB prob 0.1;", "declares 3 children"),
            ("toplevel T;\nT not A B;\nA prob 0.1;\nB prob 0.1;", "exactly one child"),
            ("toplevel T;\nT and A A;\nA prob x;", "invalid probability"),
            ("toplevel T;\nT and T A;\nA prob 0.1;", "cycle"),
            ("toplevel T;\nT and A B;\nU or A B;\nA prob 0.1;\nB prob 0.1;", "not reachable"),
            ("toplevel T;\nT and A B", "unterminated"),
        ],
    )
    def test_malformed_inputs(self, text, fragment):
        with pytest.raises(FaultTreeParseError) as excinfo:
            loads(text)
        assert fragment in str(excinfo.value)


class TestRoundTrip:
    def test_dump_and_reload_preserves_semantics(self):
        circuit, model = loads(EXAMPLE)
        text = dumps(circuit, model)
        reloaded_circuit, reloaded_model = loads(text)
        assert set(reloaded_circuit.input_names) == set(circuit.input_names)
        for name in model.names:
            assert reloaded_model.raw_probability(name) == pytest.approx(
                model.raw_probability(name)
            )
        for values in itertools.product((False, True), repeat=len(circuit.input_names)):
            assignment = dict(zip(circuit.input_names, values))
            assert reloaded_circuit.evaluate_output(assignment) == circuit.evaluate_output(
                assignment
            )

    def test_round_trip_of_builder_tree_with_negations(self):
        ft = FaultTreeBuilder("neg")
        ft.set_top(ft.or_(ft.and_(ft.working("A"), ft.failed("B")), ft.failed("C")))
        circuit = ft.build()
        model = ComponentDefectModel({"A": 0.1, "B": 0.1, "C": 0.1})
        reloaded, _ = loads(dumps(circuit, model))
        for values in itertools.product((False, True), repeat=3):
            assignment = dict(zip(("A", "B", "C"), values))
            assert reloaded.evaluate_output(assignment) == circuit.evaluate_output(assignment)

    def test_file_round_trip(self, tmp_path):
        circuit, model = loads(EXAMPLE)
        path = tmp_path / "system.ft"
        dump(circuit, model, str(path))
        reloaded_circuit, reloaded_model = load(str(path))
        assert reloaded_circuit.name == "system"
        assert reloaded_model.count == model.count

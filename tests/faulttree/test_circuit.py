"""Unit tests for the gate-level circuit representation."""

import pytest

from repro.faulttree import Circuit, CircuitError, GateOp


def build_small_circuit():
    """out = (a AND b) OR (NOT c)"""
    circuit = Circuit("small")
    a = circuit.add_input("a")
    b = circuit.add_input("b")
    c = circuit.add_input("c")
    g1 = circuit.add_gate(GateOp.AND, [a, b])
    g2 = circuit.add_gate(GateOp.NOT, [c])
    g3 = circuit.add_gate(GateOp.OR, [g1, g2])
    circuit.set_output(g3, "out")
    return circuit


class TestConstruction:
    def test_inputs_are_deduplicated(self):
        circuit = Circuit()
        first = circuit.add_input("x")
        second = circuit.add_input("x")
        assert first == second
        assert circuit.num_inputs == 1

    def test_constants_are_shared(self):
        circuit = Circuit()
        assert circuit.add_const(True) == circuit.add_const(True)
        assert circuit.add_const(True) != circuit.add_const(False)

    def test_structural_sharing_of_gates(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        g1 = circuit.add_gate(GateOp.AND, [a, b])
        g2 = circuit.add_gate(GateOp.AND, [a, b])
        g3 = circuit.add_gate(GateOp.AND, [b, a])  # different fanin order
        assert g1 == g2
        assert g1 != g3

    def test_sharing_can_be_disabled(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        g1 = circuit.add_gate(GateOp.AND, [a, b], share=False)
        g2 = circuit.add_gate(GateOp.AND, [a, b], share=False)
        assert g1 != g2

    def test_invalid_fanin_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_gate(GateOp.AND, [0, 99])

    def test_invalid_arity_rejected(self):
        circuit = Circuit()
        a, b = circuit.add_input("a"), circuit.add_input("b")
        with pytest.raises(CircuitError):
            circuit.add_gate(GateOp.NOT, [a, b])

    def test_output_bookkeeping(self):
        circuit = build_small_circuit()
        assert circuit.outputs == {"out": circuit.primary_output}
        with pytest.raises(CircuitError):
            circuit.set_output(10_000)

    def test_primary_output_requires_single_output(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.primary_output
        circuit.set_output(a, "o1")
        circuit.set_output(a, "o2")
        with pytest.raises(CircuitError):
            circuit.primary_output

    def test_node_counts(self):
        circuit = build_small_circuit()
        assert circuit.num_inputs == 3
        assert circuit.num_gates == 3
        assert len(circuit) == 6


class TestEvaluation:
    def test_truth_table(self):
        circuit = build_small_circuit()
        for a in (False, True):
            for b in (False, True):
                for c in (False, True):
                    expected = (a and b) or (not c)
                    got = circuit.evaluate({"a": a, "b": b, "c": c})["out"]
                    assert got is expected

    def test_missing_input_raises(self):
        circuit = build_small_circuit()
        with pytest.raises(CircuitError):
            circuit.evaluate({"a": True, "b": False})

    def test_evaluate_output_named_and_unnamed(self):
        circuit = build_small_circuit()
        assignment = {"a": True, "b": True, "c": True}
        assert circuit.evaluate_output(assignment) is True
        assert circuit.evaluate_output(assignment, "out") is True
        with pytest.raises(CircuitError):
            circuit.evaluate_output(assignment, "nope")

    def test_constants_evaluate(self):
        circuit = Circuit()
        t = circuit.add_const(True)
        a = circuit.add_input("a")
        g = circuit.add_gate(GateOp.AND, [t, a])
        circuit.set_output(g, "out")
        assert circuit.evaluate({"a": True})["out"] is True
        assert circuit.evaluate({"a": False})["out"] is False


class TestStructuralQueries:
    def test_cone_and_support(self):
        circuit = Circuit()
        a, b, c = (circuit.add_input(x) for x in "abc")
        g = circuit.add_gate(GateOp.OR, [a, b])
        circuit.set_output(g, "out")
        support = circuit.support()
        assert [circuit.node(i).name for i in support] == ["a", "b"]
        assert c not in circuit.cone(circuit.primary_output)

    def test_depth(self):
        circuit = build_small_circuit()
        assert circuit.depth() == 2

    def test_fanouts(self):
        circuit = build_small_circuit()
        fanouts = circuit.fanouts()
        a = circuit.input_index("a")
        and_gate = [n.index for n in circuit.nodes if n.is_gate and n.op is GateOp.AND][0]
        assert and_gate in fanouts[a]

    def test_dfs_leftmost_visits_leftmost_branch_first(self):
        circuit = build_small_circuit()
        names = [
            circuit.node(i).name
            for i in circuit.dfs_leftmost()
            if circuit.node(i).is_input
        ]
        # out = (a AND b) OR (NOT c): left branch first -> a, b, then c
        assert names == ["a", "b", "c"]

    def test_dfs_visits_each_node_once(self):
        circuit = build_small_circuit()
        visited = list(circuit.dfs_leftmost())
        assert len(visited) == len(set(visited))

    def test_input_index_unknown(self):
        circuit = build_small_circuit()
        with pytest.raises(CircuitError):
            circuit.input_index("zzz")

    def test_stats(self):
        stats = build_small_circuit().stats()
        assert stats["inputs"] == 3
        assert stats["gates"] == 3
        assert stats["depth"] == 2

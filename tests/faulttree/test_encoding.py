"""Unit tests for minimum-width binary codes."""

import pytest

from repro.faulttree import BinaryCode, CircuitError, bits_needed


class TestBitsNeeded:
    @pytest.mark.parametrize(
        "count,expected", [(1, 1), (2, 1), (3, 2), (4, 2), (5, 3), (8, 3), (9, 4), (17, 5)]
    )
    def test_values(self, count, expected):
        assert bits_needed(count) == expected

    def test_rejects_non_positive(self):
        with pytest.raises(CircuitError):
            bits_needed(0)


class TestBinaryCode:
    def test_width_is_minimal(self):
        assert BinaryCode(range(0, 8)).width == 3
        assert BinaryCode(range(0, 9)).width == 4
        assert BinaryCode(range(1, 19)).width == 5  # the paper's v_i with C=18

    def test_offset_defaults_to_minimum(self):
        code = BinaryCode(range(1, 5))
        assert code.offset == 1
        assert code.codeword(1) == (0, 0)
        assert code.codeword(4) == (1, 1)

    def test_codewords_msb_first(self):
        code = BinaryCode(range(0, 8))
        assert code.codeword(5) == (1, 0, 1)
        assert code.bit(5, 0) == 1
        assert code.bit(5, 1) == 0
        assert code.bit(5, 2) == 1

    def test_codewords_are_unique(self):
        code = BinaryCode(range(0, 12))
        words = {code.codeword(v) for v in code.values}
        assert len(words) == 12

    def test_decode_roundtrip(self):
        code = BinaryCode(range(3, 10))
        for value in code.values:
            assert code.decode(code.codeword(value)) == value

    def test_decode_rejects_unused_codeword(self):
        code = BinaryCode(range(0, 5))  # 3 bits, codes 5..7 unused
        assert not code.encodes((1, 1, 1))
        with pytest.raises(CircuitError):
            code.decode((1, 1, 1))

    def test_decode_rejects_wrong_width(self):
        code = BinaryCode(range(0, 4))
        with pytest.raises(CircuitError):
            code.decode((1,))

    def test_unused_codewords(self):
        code = BinaryCode(range(0, 5))
        unused = code.unused_codewords()
        assert len(unused) == 3
        assert all(not code.encodes(bits) for bits in unused)

    def test_rejects_duplicates_and_empty(self):
        with pytest.raises(CircuitError):
            BinaryCode([1, 1])
        with pytest.raises(CircuitError):
            BinaryCode([])

    def test_rejects_offset_above_minimum(self):
        with pytest.raises(CircuitError):
            BinaryCode([2, 3], offset=3)

    def test_bit_position_out_of_range(self):
        code = BinaryCode(range(0, 4))
        with pytest.raises(CircuitError):
            code.bit(1, 5)

    def test_unknown_value(self):
        code = BinaryCode(range(0, 4))
        with pytest.raises(CircuitError):
            code.codeword(9)

    def test_len(self):
        assert len(BinaryCode(range(0, 7))) == 7

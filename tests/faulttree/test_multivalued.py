"""Unit tests for multiple-valued variables, filter gates and binary expansion."""

import itertools

import pytest

from repro.faulttree import (
    CircuitError,
    FilterKind,
    GateOp,
    MVCircuit,
    MultiValuedVariable,
)


def build_example_mv_circuit():
    """G = (x >= 2) OR (y == 1 AND x == 0) over x in 0..3, y in 1..3."""
    mv = MVCircuit("example")
    x = mv.add_variable(MultiValuedVariable("x", range(0, 4)))
    y = mv.add_variable(MultiValuedVariable("y", range(1, 4)))
    a = mv.filter_geq(x, 2)
    b = mv.gate(GateOp.AND, [mv.filter_eq(y, 1), mv.filter_eq(x, 0)])
    mv.set_top(mv.gate(GateOp.OR, [a, b]))
    return mv, x, y


def reference_function(x_value, y_value):
    return (x_value >= 2) or (y_value == 1 and x_value == 0)


class TestMultiValuedVariable:
    def test_cardinality_and_width(self):
        var = MultiValuedVariable("w", range(0, 8))
        assert var.cardinality == 8
        assert var.width == 3
        assert var.bit_names() == ("w[0]", "w[1]", "w[2]")

    def test_requires_two_values(self):
        with pytest.raises(CircuitError):
            MultiValuedVariable("x", [5])


class TestFilterGates:
    def test_filter_semantics(self):
        mv, x, _ = build_example_mv_circuit()
        filters = mv.filters
        geq = filters["x>=2"]
        eq = filters["x==0"]
        assert geq.kind == FilterKind.GEQ
        assert geq.evaluate(2) and geq.evaluate(3) and not geq.evaluate(1)
        assert eq.evaluate(0) and not eq.evaluate(1)

    def test_filter_requires_registered_variable(self):
        mv = MVCircuit()
        stray = MultiValuedVariable("z", range(0, 2))
        with pytest.raises(CircuitError):
            mv.filter_eq(stray, 1)

    def test_duplicate_variable_rejected(self):
        mv = MVCircuit()
        mv.add_variable(MultiValuedVariable("x", range(2)))
        with pytest.raises(CircuitError):
            mv.add_variable(MultiValuedVariable("x", range(3)))


class TestEvaluation:
    def test_matches_reference(self):
        mv, x, y = build_example_mv_circuit()
        for xv, yv in itertools.product(x.values, y.values):
            assert mv.evaluate({"x": xv, "y": yv}) is reference_function(xv, yv)

    def test_missing_variable_raises(self):
        mv, _, _ = build_example_mv_circuit()
        with pytest.raises(CircuitError):
            mv.evaluate({"x": 0})

    def test_out_of_domain_value_raises(self):
        mv, _, _ = build_example_mv_circuit()
        with pytest.raises(CircuitError):
            mv.evaluate({"x": 9, "y": 1})


class TestBinaryEncoding:
    def test_binary_expansion_matches_mv_semantics(self):
        mv, x, y = build_example_mv_circuit()
        binary = mv.binary_encode()
        # inputs are the code bits of both variables
        assert set(binary.input_names) == {"x[0]", "x[1]", "y[0]", "y[1]"}
        for xv, yv in itertools.product(x.values, y.values):
            assignment = {}
            for var, value in ((x, xv), (y, yv)):
                for bit_name, bit in zip(var.bit_names(), var.code.codeword(value)):
                    assignment[bit_name] = bool(bit)
            assert binary.evaluate_output(assignment, "G") is reference_function(xv, yv)

    def test_geq_filter_at_domain_bottom_is_constant_true(self):
        mv = MVCircuit()
        x = mv.add_variable(MultiValuedVariable("x", range(0, 4)))
        mv.set_top(mv.filter_geq(x, 0))
        binary = mv.binary_encode()
        for b0, b1 in itertools.product((False, True), repeat=2):
            assert binary.evaluate_output({"x[0]": b0, "x[1]": b1}, "G") is True

    def test_geq_filter_above_domain_is_constant_false(self):
        mv = MVCircuit()
        x = mv.add_variable(MultiValuedVariable("x", range(0, 4)))
        mv.set_top(mv.filter_geq(x, 7))
        binary = mv.binary_encode()
        for b0, b1 in itertools.product((False, True), repeat=2):
            assert binary.evaluate_output({"x[0]": b0, "x[1]": b1}, "G") is False

    def test_binary_encode_requires_top(self):
        mv = MVCircuit()
        mv.add_variable(MultiValuedVariable("x", range(0, 2)))
        with pytest.raises(CircuitError):
            mv.binary_encode()

    def test_offset_encoding_of_one_based_domain(self):
        # the paper encodes v_i - 1; a domain {1..3} must fit in 2 bits
        mv = MVCircuit()
        v = mv.add_variable(MultiValuedVariable("v", range(1, 4)))
        mv.set_top(mv.filter_eq(v, 3))
        binary = mv.binary_encode()
        assert set(binary.input_names) == {"v[0]", "v[1]"}
        word = v.code.codeword(3)
        assignment = {"v[0]": bool(word[0]), "v[1]": bool(word[1])}
        assert binary.evaluate_output(assignment, "G") is True

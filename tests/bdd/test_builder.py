"""Unit tests for the circuit-to-ROBDD builder."""

import itertools

import pytest

from repro.bdd import BDDError, ResourceLimitExceeded, build_circuit_bdd
from repro.faulttree import Circuit, FaultTreeBuilder, GateOp


def build_mixed_circuit():
    """out = (a XOR b) OR NOT(c AND d) exercising several gate types."""
    circuit = Circuit("mixed")
    a, b, c, d = (circuit.add_input(x) for x in "abcd")
    x1 = circuit.add_gate(GateOp.XOR, [a, b])
    x2 = circuit.add_gate(GateOp.NAND, [c, d])
    out = circuit.add_gate(GateOp.OR, [x1, x2])
    circuit.set_output(out, "out")
    return circuit


class TestBuild:
    def test_matches_circuit_truth_table(self):
        circuit = build_mixed_circuit()
        manager, root, _ = build_circuit_bdd(circuit, ["a", "b", "c", "d"])
        for values in itertools.product((False, True), repeat=4):
            assignment = dict(zip("abcd", values))
            assert manager.evaluate(root, assignment) == circuit.evaluate_output(assignment)

    def test_all_gate_types(self):
        circuit = Circuit("all-gates")
        a, b = circuit.add_input("a"), circuit.add_input("b")
        nodes = [
            circuit.add_gate(GateOp.AND, [a, b]),
            circuit.add_gate(GateOp.OR, [a, b]),
            circuit.add_gate(GateOp.NAND, [a, b]),
            circuit.add_gate(GateOp.NOR, [a, b]),
            circuit.add_gate(GateOp.XOR, [a, b]),
            circuit.add_gate(GateOp.XNOR, [a, b]),
            circuit.add_gate(GateOp.NOT, [a]),
            circuit.add_gate(GateOp.BUF, [b]),
        ]
        out = circuit.add_gate(GateOp.XOR, nodes)
        circuit.set_output(out, "out")
        manager, root, _ = build_circuit_bdd(circuit, ["a", "b"])
        for va, vb in itertools.product((False, True), repeat=2):
            assignment = {"a": va, "b": vb}
            assert manager.evaluate(root, assignment) == circuit.evaluate_output(assignment)

    def test_constant_inputs(self):
        circuit = Circuit("const")
        a = circuit.add_input("a")
        t = circuit.add_const(True)
        out = circuit.add_gate(GateOp.AND, [a, t])
        circuit.set_output(out, "out")
        manager, root, _ = build_circuit_bdd(circuit, ["a"])
        assert root == manager.var("a")

    def test_missing_variable_in_order_rejected(self):
        circuit = build_mixed_circuit()
        with pytest.raises(BDDError):
            build_circuit_bdd(circuit, ["a", "b", "c"])

    def test_order_may_include_extra_variables(self):
        circuit = build_mixed_circuit()
        manager, root, _ = build_circuit_bdd(circuit, ["z", "a", "b", "c", "d"])
        assert manager.evaluate(
            root, {"z": False, "a": True, "b": False, "c": False, "d": True}
        ) == circuit.evaluate_output({"a": True, "b": False, "c": False, "d": True})


class TestStats:
    def test_final_size_and_gate_count(self):
        circuit = build_mixed_circuit()
        manager, root, stats = build_circuit_bdd(circuit, ["a", "b", "c", "d"])
        assert stats.final_size == manager.size(root)
        assert stats.gates_processed == circuit.num_gates
        assert stats.allocated_nodes == manager.num_nodes_allocated

    def test_peak_tracking(self):
        circuit = build_mixed_circuit()
        _, _, stats = build_circuit_bdd(
            circuit, ["a", "b", "c", "d"], track_peak=True, peak_stride=1
        )
        assert stats.peak_live_nodes >= stats.final_size
        assert len(stats.live_samples) == circuit.num_gates

    def test_peak_stride(self):
        circuit = build_mixed_circuit()
        _, _, stats = build_circuit_bdd(
            circuit, ["a", "b", "c", "d"], track_peak=True, peak_stride=2
        )
        assert len(stats.live_samples) <= circuit.num_gates // 2 + 1

    def test_invalid_stride(self):
        circuit = build_mixed_circuit()
        with pytest.raises(ValueError):
            build_circuit_bdd(circuit, ["a", "b", "c", "d"], peak_stride=0)


class TestNodeLimit:
    def test_limit_exceeded(self):
        # a 12-variable XOR chain forces a fair number of nodes
        ft = FaultTreeBuilder("xor-chain")
        expr = ft.failed("x0")
        for i in range(1, 12):
            expr = ft.xor_(expr, ft.failed("x%d" % i))
        ft.set_top(expr)
        circuit = ft.build()
        order = ["x%d" % i for i in range(12)]
        with pytest.raises(ResourceLimitExceeded):
            build_circuit_bdd(circuit, order, node_limit=10)

    def test_limit_not_exceeded(self):
        circuit = build_mixed_circuit()
        _, _, stats = build_circuit_bdd(
            circuit, ["a", "b", "c", "d"], node_limit=10_000
        )
        assert stats.final_size > 0

    def test_invalid_limit(self):
        circuit = build_mixed_circuit()
        with pytest.raises(ValueError):
            build_circuit_bdd(circuit, ["a", "b", "c", "d"], node_limit=1)

"""Test package."""

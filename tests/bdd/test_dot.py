"""Unit tests for the DOT exports of decision diagrams."""

from repro.bdd import BDDManager, bdd_to_dot, write_bdd_dot
from repro.faulttree import MultiValuedVariable
from repro.mdd import MDDManager, mdd_to_dot, write_mdd_dot


class TestBDDDot:
    def test_contains_nodes_and_edges(self):
        manager = BDDManager(["a", "b"])
        f = manager.and_(manager.var("a"), manager.var("b"))
        dot = bdd_to_dot(manager, f)
        assert dot.startswith("digraph")
        assert 'label="a"' in dot and 'label="b"' in dot
        assert "style=dashed" in dot  # 0-edges are dashed

    def test_write_to_file(self, tmp_path):
        manager = BDDManager(["a"])
        path = tmp_path / "bdd.dot"
        write_bdd_dot(manager, manager.var("a"), str(path))
        assert path.read_text().startswith("digraph")


class TestMDDDot:
    def test_contains_value_labels(self):
        x = MultiValuedVariable("x", range(0, 3))
        manager = MDDManager([x])
        node = manager.literal("x", [1, 2])
        dot = mdd_to_dot(manager, node)
        assert 'label="x"' in dot
        assert '"1,2"' in dot or '"0"' in dot

    def test_write_to_file(self, tmp_path):
        x = MultiValuedVariable("x", range(0, 3))
        manager = MDDManager([x])
        path = tmp_path / "mdd.dot"
        write_mdd_dot(manager, manager.literal("x", [0]), str(path))
        assert path.read_text().startswith("digraph")

"""Unit tests for the ROBDD manager."""

import itertools

import pytest

from repro.bdd import BDDError, BDDManager, FALSE, TRUE


@pytest.fixture
def manager():
    return BDDManager(["a", "b", "c", "d"])


def truth_table(manager, node, names):
    table = {}
    for values in itertools.product((False, True), repeat=len(names)):
        assignment = dict(zip(names, values))
        table[values] = manager.evaluate(node, assignment)
    return table


class TestConstruction:
    def test_rejects_duplicate_or_empty_order(self):
        with pytest.raises(BDDError):
            BDDManager(["x", "x"])
        with pytest.raises(BDDError):
            BDDManager([])

    def test_terminals(self, manager):
        assert manager.constant(True) == TRUE
        assert manager.constant(False) == FALSE
        assert manager.is_terminal(TRUE)
        assert not manager.is_terminal(manager.var("a"))

    def test_var_and_nvar(self, manager):
        a = manager.var("a")
        na = manager.nvar("a")
        assert manager.evaluate(a, {"a": True}) is True
        assert manager.evaluate(a, {"a": False}) is False
        assert manager.evaluate(na, {"a": True}) is False
        assert manager.not_(a) == na

    def test_unknown_variable(self, manager):
        with pytest.raises(BDDError):
            manager.var("zzz")
        with pytest.raises(BDDError):
            manager.level_of("zzz")

    def test_level_accessors(self, manager):
        assert manager.level_of("a") == 0
        assert manager.variable_at_level(3) == "d"
        with pytest.raises(BDDError):
            manager.variable_at_level(7)


class TestCanonicity:
    def test_same_function_same_node(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f1 = manager.or_(manager.and_(a, b), manager.and_(a, manager.not_(b)))
        # a.b + a.!b == a
        assert f1 == a

    def test_de_morgan(self, manager):
        a, b = manager.var("a"), manager.var("b")
        left = manager.not_(manager.and_(a, b))
        right = manager.or_(manager.not_(a), manager.not_(b))
        assert left == right

    def test_xor_xnor_complement(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.not_(manager.xor_(a, b)) == manager.xnor_(a, b)

    def test_double_negation(self, manager):
        a = manager.var("a")
        f = manager.or_(a, manager.var("c"))
        assert manager.not_(manager.not_(f)) == f

    def test_tautology_collapses_to_true(self, manager):
        a = manager.var("a")
        assert manager.or_(a, manager.not_(a)) == TRUE
        assert manager.and_(a, manager.not_(a)) == FALSE


class TestOperations:
    def test_ite_truth_table(self, manager):
        a, b, c = manager.var("a"), manager.var("b"), manager.var("c")
        f = manager.ite(a, b, c)
        for va, vb, vc in itertools.product((False, True), repeat=3):
            expected = vb if va else vc
            assignment = {"a": va, "b": vb, "c": vc, "d": False}
            assert manager.evaluate(f, assignment) is expected

    def test_nary_helpers(self, manager):
        literals = [manager.var(x) for x in ("a", "b", "c")]
        f_and = manager.and_many(literals)
        f_or = manager.or_many(literals)
        assert manager.evaluate(f_and, {"a": True, "b": True, "c": True}) is True
        assert manager.evaluate(f_and, {"a": True, "b": False, "c": True}) is False
        assert manager.evaluate(f_or, {"a": False, "b": False, "c": False}) is False
        assert manager.and_many([]) == TRUE
        assert manager.or_many([]) == FALSE

    def test_nand_nor(self, manager):
        a, b = manager.var("a"), manager.var("b")
        assert manager.nand_(a, b) == manager.not_(manager.and_(a, b))
        assert manager.nor_(a, b) == manager.not_(manager.or_(a, b))

    def test_restrict(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.or_(manager.and_(a, b), manager.not_(a))
        assert manager.restrict(f, "a", True) == b
        assert manager.restrict(f, "a", False) == TRUE

    def test_missing_assignment_raises(self, manager):
        f = manager.and_(manager.var("a"), manager.var("b"))
        with pytest.raises(BDDError):
            manager.evaluate(f, {"a": True})


class TestQueries:
    def test_support(self, manager):
        f = manager.or_(manager.var("a"), manager.var("c"))
        assert manager.support(f) == ["a", "c"]
        assert manager.support(TRUE) == []

    def test_size_counts_reachable_nodes(self, manager):
        a = manager.var("a")
        assert manager.size(a) == 3  # node + both terminals
        assert manager.size(TRUE) == 1

    def test_reachable_size_shares_nodes(self, manager):
        a, b = manager.var("a"), manager.var("b")
        f = manager.and_(a, b)
        g = manager.or_(a, b)
        union = manager.reachable_size([f, g])
        assert union <= manager.size(f) + manager.size(g)
        assert union >= max(manager.size(f), manager.size(g))

    def test_sat_count(self, manager):
        a, b = manager.var("a"), manager.var("b")
        # a AND b: 1 solution over (a,b), times 2^2 free variables (c, d)
        assert manager.sat_count(manager.and_(a, b)) == 4
        # a OR b: 3 * 4
        assert manager.sat_count(manager.or_(a, b)) == 12
        assert manager.sat_count(TRUE) == 16
        assert manager.sat_count(FALSE) == 0

    def test_sat_count_matches_truth_table(self):
        names = ["a", "b", "c"]
        manager = BDDManager(names)
        a, b, c = (manager.var(x) for x in names)
        f = manager.or_(manager.xor_(a, b), manager.and_(b, c))
        expected = sum(
            1
            for values in itertools.product((False, True), repeat=3)
            if manager.evaluate(f, dict(zip(names, values)))
        )
        assert manager.sat_count(f) == expected

    def test_iter_nodes_and_clear_cache(self, manager):
        f = manager.and_(manager.var("a"), manager.var("b"))
        nodes = list(manager.iter_nodes(f))
        assert len(nodes) == 2
        manager.clear_operation_cache()
        # the function is still intact after dropping the computed table
        assert manager.evaluate(f, {"a": True, "b": True, "c": False, "d": False}) is True


class TestOrderSensitivity:
    def test_function_independent_of_order_semantics(self):
        # the same boolean function built under two orders evaluates identically
        names = ["x1", "x2", "x3", "x4"]
        m1 = BDDManager(names)
        m2 = BDDManager(list(reversed(names)))

        def build(manager):
            lits = {n: manager.var(n) for n in names}
            return manager.or_(
                manager.and_(lits["x1"], lits["x2"]),
                manager.and_(lits["x3"], lits["x4"]),
            )

        f1, f2 = build(m1), build(m2)
        for values in itertools.product((False, True), repeat=4):
            assignment = dict(zip(names, values))
            assert m1.evaluate(f1, assignment) == m2.evaluate(f2, assignment)

    def test_order_affects_size_for_interleaving_sensitive_function(self):
        # the classic (x1 & y1) | (x2 & y2) | (x3 & y3) example
        good = BDDManager(["x1", "y1", "x2", "y2", "x3", "y3"])
        bad = BDDManager(["x1", "x2", "x3", "y1", "y2", "y3"])

        def build(manager):
            return manager.or_many(
                manager.and_(manager.var("x%d" % i), manager.var("y%d" % i))
                for i in (1, 2, 3)
            )

        assert good.size(build(good)) < bad.size(build(bad))

"""Integration tests of the HTTP front end over a real ``SweepService``.

Every test starts the actual asyncio server on an ephemeral port
(:func:`repro.server.serve_in_thread`) and talks real HTTP through
``http.client`` — the same path production clients use.
"""

import json
import threading
import time
from http.client import HTTPConnection

import pytest

from repro.engine.service import SweepPoint, SweepService
from repro.server import serve_in_thread
from repro.soc import benchmark_problem

BENCH = "MS2"
DENSITIES = [0.5, 1.0, 1.5, 2.0]


def request(handle, method, path, payload=None, timeout=120.0):
    conn = HTTPConnection(handle.host, handle.port, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        headers = {"Content-Type": "application/json"} if body else {}
        conn.request(method, path, body=body, headers=headers)
        response = conn.getresponse()
        raw = response.read()
        return response, raw
    finally:
        conn.close()


def get_json(handle, path):
    response, raw = request(handle, "GET", path)
    return response.status, json.loads(raw)


def post_json(handle, path, payload, timeout=120.0):
    response, raw = request(handle, "POST", path, payload, timeout=timeout)
    kind = (response.getheader("Content-Type") or "").split(";")[0]
    if kind == "application/x-ndjson":
        decoded = [json.loads(line) for line in raw.splitlines() if line.strip()]
    else:
        decoded = json.loads(raw)
    return response, decoded


def counter_from_stats(handle, name):
    _, raw = request(handle, "GET", "/stats")
    for line in raw.decode().splitlines():
        if line.startswith(name + " "):
            return float(line.split()[1])
    return 0.0


@pytest.fixture
def served():
    service = SweepService()
    handle = serve_in_thread(service)
    yield service, handle
    handle.stop()
    service.close()


def serial_reference(densities=DENSITIES, max_defects=3):
    service = SweepService()
    try:
        points = [
            SweepPoint(benchmark_problem(BENCH, mean_defects=m), max_defects=max_defects)
            for m in densities
        ]
        return [
            (r.yield_estimate, r.error_bound, r.truncation)
            for r in service.evaluate_batch(points)
        ]
    finally:
        service.close()


class TestEndpoints:
    def test_healthz(self, served):
        _, handle = served
        status, payload = get_json(handle, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_stats_exposes_the_service_registry(self, served):
        _, handle = served
        post_json(
            handle,
            "/v1/sweep",
            {"benchmark": BENCH, "densities": [1.0], "max_defects": 3},
        )
        response, raw = request(handle, "GET", "/stats")
        assert response.status == 200
        assert response.getheader("Content-Type").startswith("text/plain")
        text = raw.decode()
        assert "repro_server_requests" in text
        assert "repro_service_structures_built 1" in text

    def test_unknown_path_is_404(self, served):
        _, handle = served
        status, payload = get_json(handle, "/nope")
        assert status == 404
        assert payload["status"] == 404

    def test_wrong_method_is_405(self, served):
        _, handle = served
        response, _ = request(handle, "GET", "/v1/sweep")
        assert response.status == 405
        assert response.getheader("Allow") == "POST"

    def test_malformed_json_is_400(self, served):
        _, handle = served
        conn = HTTPConnection(served[1].host, served[1].port, timeout=30)
        try:
            conn.request("POST", "/v1/sweep", body=b"{nope",
                         headers={"Content-Type": "application/json"})
            assert conn.getresponse().status == 400
        finally:
            conn.close()

    def test_unknown_benchmark_is_400(self, served):
        _, handle = served
        response, payload = post_json(
            handle, "/v1/sweep", {"benchmark": "NOPE", "densities": [1.0]}
        )
        assert response.status == 400
        assert "unknown benchmark" in payload["error"]

    def test_missing_densities_is_400(self, served):
        _, handle = served
        response, _ = post_json(handle, "/v1/sweep", {"benchmark": BENCH})
        assert response.status == 400


class TestSweepCorrectness:
    def test_sweep_is_bit_identical_to_the_serial_service(self, served):
        _, handle = served
        response, payload = post_json(
            handle,
            "/v1/sweep",
            {"benchmark": BENCH, "densities": DENSITIES, "max_defects": 3},
        )
        assert response.status == 200
        got = [
            (p["yield"], p["error_bound"], p["truncation"]) for p in payload["points"]
        ]
        assert got == serial_reference()
        assert [p["mean_defects"] for p in payload["points"]] == DENSITIES

    def test_streaming_matches_the_fixed_response(self, served):
        _, handle = served
        _, fixed = post_json(
            handle,
            "/v1/sweep",
            {"benchmark": BENCH, "densities": DENSITIES, "max_defects": 3},
        )
        response, lines = post_json(
            handle,
            "/v1/sweep",
            {
                "benchmark": BENCH,
                "densities": DENSITIES,
                "max_defects": 3,
                "stream": True,
            },
        )
        assert response.status == 200
        assert response.getheader("Transfer-Encoding") == "chunked"
        by_index = sorted(lines, key=lambda line: line["index"])
        assert [l["yield"] for l in by_index] == [
            p["yield"] for p in fixed["points"]
        ]

    def test_importance_matches_the_in_process_gradients(self, served):
        service, handle = served
        response, payload = post_json(
            handle,
            "/v1/importance",
            {"benchmark": BENCH, "mean_defects": 2.0, "max_defects": 3},
        )
        assert response.status == 200
        reference = SweepService()
        try:
            gradients = reference.gradient_batch(
                [
                    SweepPoint(
                        benchmark_problem(BENCH, mean_defects=2.0), max_defects=3
                    )
                ]
            )[0]
        finally:
            reference.close()
        expected = [
            {"component": name, "sensitivity": value}
            for name, value in gradients.ranking()
        ]
        assert payload["ranking"] == expected


class TestCoalescing:
    def test_concurrent_same_key_requests_build_once(self):
        service = SweepService()
        real_prime = service.prime_structure

        def slow_prime(problem, truncation, skey=None):
            # hold the build long enough that every concurrent request
            # arrives while it is still in flight
            time.sleep(0.5)
            return real_prime(problem, truncation, skey)

        service.prime_structure = slow_prime
        handle = serve_in_thread(service)
        try:
            clients = 6
            payload = {"benchmark": BENCH, "densities": [1.0], "max_defects": 3}
            statuses, yields = [], []
            barrier = threading.Barrier(clients)

            def client():
                barrier.wait(timeout=30)
                response, decoded = post_json(handle, "/v1/sweep", payload)
                statuses.append(response.status)
                if response.status == 200:
                    yields.append(decoded["points"][0]["yield"])

            threads = [threading.Thread(target=client) for _ in range(clients)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120)

            assert statuses == [200] * clients
            assert len(set(yields)) == 1  # all N receive identical results
            assert counter_from_stats(handle, "repro_service_structures_built") == 1
            assert counter_from_stats(handle, "repro_server_builds_started") == 1
            assert (
                counter_from_stats(handle, "repro_server_coalesced_joins")
                == clients - 1
            )
        finally:
            handle.stop()
            service.close()


class TestAdmissionControl:
    def test_overflow_gets_429_and_never_touches_the_service(self):
        service = SweepService()
        release = threading.Event()
        entered = threading.Event()
        real_evaluate = service.evaluate_batch

        def blocking_evaluate(points):
            entered.set()
            release.wait(timeout=60)
            return real_evaluate(points)

        service.evaluate_batch = blocking_evaluate
        handle = serve_in_thread(service, max_queue=1)
        try:
            payload = {"benchmark": BENCH, "densities": [1.0], "max_defects": 3}
            first_result = {}

            def occupant():
                response, decoded = post_json(handle, "/v1/sweep", payload)
                first_result["status"] = response.status

            thread = threading.Thread(target=occupant)
            thread.start()
            assert entered.wait(60), "first request never reached the service"

            requested_before = float(service.stats.points_requested)
            response, decoded = post_json(handle, "/v1/sweep", payload)
            assert response.status == 429
            assert response.getheader("Retry-After") == "1"
            assert "too many in-flight requests" in decoded["error"]
            # the rejected request performed no service work at all
            assert float(service.stats.points_requested) == requested_before
            assert counter_from_stats(handle, "repro_server_rejected") == 1

            release.set()
            thread.join(120)
            assert first_result["status"] == 200
        finally:
            release.set()
            handle.stop()
            service.close()


class TestDegradedHealth:
    """``/healthz`` distinguishes "up" from "well" (still HTTP 200)."""

    def test_blocked_ladder_route_reports_degraded(self, served):
        service, handle = served
        service._ladder.note_failure("remote", service.registry)
        status, payload = get_json(handle, "/healthz")
        assert status == 200
        assert payload["status"] == "degraded"
        assert "remote" in payload["reason"]

    def test_recent_pool_respawn_reports_degraded(self, served):
        import time

        service, handle = served
        service._last_respawn = time.time()
        status, payload = get_json(handle, "/healthz")
        assert status == 200
        assert payload["status"] == "degraded"
        assert "respawned" in payload["reason"]

    def test_old_respawn_is_healthy_again(self, served):
        import time

        service, handle = served
        service._last_respawn = time.time() - 3600.0
        status, payload = get_json(handle, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}

    def test_recovered_ladder_is_healthy_again(self, served):
        service, handle = served
        ladder = service._ladder
        ladder.note_failure("remote", service.registry)
        ladder.note_success("shm", service.registry)
        ladder.note_success("shm", service.registry)
        status, payload = get_json(handle, "/healthz")
        assert status == 200
        assert payload == {"status": "ok"}


class TestResilience:
    def test_healthz_stays_green_through_a_worker_kill(self):
        service = SweepService(workers=2, shard_size=2)
        handle = serve_in_thread(service)
        try:
            payload = {
                "benchmark": BENCH,
                "densities": DENSITIES,
                "max_defects": 3,
            }
            response, before = post_json(handle, "/v1/sweep", payload)
            assert response.status == 200

            pool = service.ensure_workers()
            if pool is None:
                pytest.skip("platform cannot spawn worker processes")
            import os
            import signal

            os.kill(pool._pool[0].pid, signal.SIGKILL)

            status, health = get_json(handle, "/healthz")
            assert status == 200 and health["status"] == "ok"
            # a fresh benchmark forces real evaluation work after the kill
            response, after = post_json(
                handle,
                "/v1/sweep",
                {"benchmark": BENCH, "densities": [3.0], "max_defects": 3},
            )
            assert response.status == 200
            reference = serial_reference(densities=[3.0])
            assert [
                (p["yield"], p["error_bound"], p["truncation"])
                for p in after["points"]
            ] == reference
        finally:
            handle.stop()
            service.close()

    def test_drain_turns_healthz_unhealthy_and_rejects_new_work(self):
        service = SweepService()
        handle = serve_in_thread(service, drain_grace=0.5)
        try:
            status, _ = get_json(handle, "/healthz")
            assert status == 200
        finally:
            handle.stop()
            service.close()
        # the listener is gone after the drain completes
        with pytest.raises(OSError):
            request(handle, "GET", "/healthz", timeout=2.0)


class TestServeCli:
    def test_parser_accepts_the_serve_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--host", "0.0.0.0",
                "--port", "8123",
                "--workers", "2",
                "--shard-size", "8",
                "--max-queue", "16",
                "--http-threads", "4",
                "--drain-grace", "3.5",
                "--store-dir", "/tmp/store",
                "--cache-dir", "/tmp/cache",
                "--no-shared-memory",
                "--epsilon", "1e-5",
            ]
        )
        assert args.command == "serve"
        assert args.host == "0.0.0.0"
        assert args.port == 8123
        assert args.workers == 2
        assert args.max_queue == 16
        assert args.http_threads == 4
        assert args.drain_grace == 3.5
        assert args.shared_memory is False
        assert args.epsilon == 1e-5

"""Unit tests of the minimal asyncio HTTP layer."""

import asyncio
import json

import pytest

from repro.server.http import (
    ChunkedWriter,
    HTTPError,
    error_bytes,
    read_request,
    response_bytes,
)


def parse(raw: bytes):
    """Drive :func:`read_request` over an in-memory reader."""

    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(run())


class FakeWriter:
    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    async def drain(self):
        pass

    @property
    def data(self):
        return b"".join(self.chunks)


class TestReadRequest:
    def test_get_with_query(self):
        request = parse(b"GET /stats?verbose=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/stats"
        assert request.query == "verbose=1"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_json_body(self):
        body = json.dumps({"benchmark": "MS2"}).encode()
        raw = (
            b"POST /v1/sweep HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % len(body)
        ) + body
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"benchmark": "MS2"}

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_post_without_length_is_411(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /v1/sweep HTTP/1.1\r\n\r\n")
        assert excinfo.value.status == 411

    def test_chunked_request_body_is_501(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert excinfo.value.status == 501

    def test_oversized_body_is_413(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 999999999\r\n\r\n")
        assert excinfo.value.status == 413

    def test_malformed_request_line_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"NONSENSE\r\n\r\n")
        assert excinfo.value.status == 400

    def test_malformed_content_length_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
        assert excinfo.value.status == 400

    def test_truncated_body_is_400(self):
        with pytest.raises(HTTPError) as excinfo:
            parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
        assert excinfo.value.status == 400

    def test_non_object_json_body_is_400(self):
        raw = b"POST /x HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]"
        with pytest.raises(HTTPError) as excinfo:
            parse(raw).json()
        assert excinfo.value.status == 400


class TestResponses:
    def test_fixed_length_response(self):
        raw = response_bytes(200, b'{"ok": true}')
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Content-Length: 12" in head
        assert b"Connection: close" in head
        assert body == b'{"ok": true}'

    def test_error_response_carries_extra_headers(self):
        raw = error_bytes(HTTPError(429, "busy", {"Retry-After": "1"}))
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        assert b"Retry-After: 1" in head
        assert json.loads(body) == {"error": "busy", "status": 429}

    def test_chunked_writer_round_trip(self):
        writer = FakeWriter()

        async def run():
            chunked = ChunkedWriter(writer)
            await chunked.start(200)
            await chunked.send(b'{"index": 0}\n')
            await chunked.send(b'{"index": 1}\n')
            await chunked.finish()

        asyncio.run(run())
        head, _, body = writer.data.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        assert body == (
            b'd\r\n{"index": 0}\n\r\n'
            b'd\r\n{"index": 1}\n\r\n'
            b"0\r\n\r\n"
        )

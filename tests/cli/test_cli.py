"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main
from repro.faulttree import dumps, loads
from repro.distributions import ComponentDefectModel
from repro.faulttree import FaultTreeBuilder

EXAMPLE_FT = """
toplevel SYSTEM;
SYSTEM and CORE_A CORE_B;
CORE_A prob 0.2;
CORE_B prob 0.2;
"""


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "duplex.ft"
    path.write_text(EXAMPLE_FT)
    return str(path)


def stats_values(out):
    """Parse the registry-generated ``--stats`` lines into ``{metric: value}``."""
    values = {}
    for line in out.splitlines():
        parts = line.split()
        if line.startswith("  ") and len(parts) >= 2 and "." in parts[0]:
            values[parts[0]] = parts[1]
    return values


class TestListAndVersion:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "ESEN8x4" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEvaluate:
    def test_evaluate_file(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--max-defects", "3"]) == 0
        out = capsys.readouterr().out
        assert "yield >=" in out
        assert "ROMDD nodes" in out

    def test_evaluate_with_montecarlo(self, tree_file, capsys):
        code = main(["evaluate", tree_file, "--max-defects", "2", "--montecarlo", "500"])
        assert code == 0
        assert "Monte-Carlo check" in capsys.readouterr().out

    def test_evaluate_poisson(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--poisson", "--max-defects", "2"]) == 0
        assert "yield >=" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["evaluate", str(tmp_path / "nope.ft")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.ft"
        path.write_text("toplevel X;\n")
        assert main(["evaluate", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_ordering(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--ordering", "zz"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchmark:
    def test_benchmark_ms2(self, capsys):
        code = main(["benchmark", "MS2", "--max-defects", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "yield >=" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["benchmark", "MS3"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestImportance:
    def test_default_reports_both_measures(self, capsys):
        assert main(["importance", "MS2", "--max-defects", "2"]) == 0
        out = capsys.readouterr().out
        assert "Component importance for MS2" in out
        assert "Yield sensitivity (analytic reverse-mode gradients)" in out
        assert "Hardening potential" in out
        assert "IPM_1" in out and "CS_2_2_B" in out
        assert "dY / d(rel. P_i)" in out and "yield gain" in out

    def test_component_subset_and_single_measure(self, capsys):
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--measure",
                "sensitivity",
                "--components",
                "IPM_1",
                "IPS_1_1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPM_1" in out and "IPS_1_1" in out
        assert "Hardening potential" not in out

    def test_fd_route(self, capsys):
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--measure",
                "sensitivity",
                "--fd",
                "--relative-step",
                "0.01",
            ]
        )
        assert code == 0
        assert "central finite differences, h=0.01" in capsys.readouterr().out

    def test_stats_counters(self, capsys):
        code = main(["importance", "MS2", "--max-defects", "2", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Engine statistics" in out
        values = stats_values(out)
        # one analytic pass differentiates the single baseline model...
        assert values["service.passes.gradient"] == "1"
        assert values["service.points.differentiated"] == "1"
        # ...and the hardening route batches baseline + 18 perturbed models
        assert values["service.passes.batched"] == "1"
        assert values["service.points.evaluated"] == "19"
        assert "phase.gradient_seconds" in values  # phase timing histogram

    def test_jobs_fan_out(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--jobs", "2", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hardening potential" in out
        assert stats_values(out)["service.passes.gradient"] == "1"

    def test_unknown_benchmark(self, capsys):
        assert main(["importance", "NOPE"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_invalid_step_is_a_user_error(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--fd", "--relative-step", "1.5"]
        )
        assert code == 2
        assert "relative_step" in capsys.readouterr().err

    def test_unknown_component(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--components", "ZZZ"]
        )
        assert code == 2
        assert "unknown component" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "MS10" in out and "ESEN8x4" in out

    def test_table2_small(self, capsys):
        code = main(["table", "2", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "wvr" in capsys.readouterr().out

    def test_table4_small(self, capsys):
        code = main(["table", "4", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "yield" in capsys.readouterr().out

    def test_table_unknown_benchmark(self, capsys):
        assert main(["table", "2", "--benchmarks", "NOPE"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err


class TestCache:
    def test_ls_of_an_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", str(tmp_path / "store")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_warm_then_ls_info_and_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "2"]) == 0
        out = capsys.readouterr().out
        assert "warmed MS2" in out and "M=2" in out

        assert main(["cache", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "M=2" in out
        digest = out.strip().splitlines()[-1].split()[0]

        assert main(["cache", "info", store_dir, digest]) == 0
        out = capsys.readouterr().out
        assert '"truncation": 2' in out
        assert '"format": "repro-structure"' in out

        assert main(["cache", "clear", store_dir]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "ls", store_dir]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_info_of_an_unknown_digest(self, tmp_path, capsys):
        assert main(["cache", "info", str(tmp_path / "store"), "ffff"]) == 2
        assert "no entry matches" in capsys.readouterr().err

    def test_warm_unknown_benchmark(self, tmp_path, capsys):
        assert main(["cache", "warm", str(tmp_path / "store"), "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_sweep_warm_starts_from_a_warmed_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "3"]) == 0
        capsys.readouterr()
        code = main(
            [
                "sweep",
                "MS2",
                "--max-defects",
                "3",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "structures built    : 0" in out
        values = stats_values(out)
        assert values["store.hits"] == "1"
        assert values.get("store.misses", "0") == "0"

    def test_importance_accepts_a_store_dir(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Engine statistics" in out
        # the run persisted its structure: a second process warm-starts
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        assert stats_values(capsys.readouterr().out)["store.hits"] == "1"

    def test_verify_of_a_clean_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "2"]) == 0
        capsys.readouterr()
        assert main(["cache", "verify", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 ok, 0 corrupt" in out

    def test_verify_reports_and_repairs_corruption(self, tmp_path, capsys):
        import glob
        import os

        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "2"]) == 0
        capsys.readouterr()
        sidecars = glob.glob(os.path.join(store_dir, "*", "*.npy"))
        if not sidecars:
            pytest.skip("no npy sidecars without numpy")
        target = max(sidecars, key=os.path.getsize)
        with open(target, "r+b") as handle:
            handle.truncate(os.path.getsize(target) // 2)

        # report-only: corrupt entries found -> exit 1, nothing moved
        assert main(["cache", "verify", store_dir]) == 1
        out = capsys.readouterr().out
        assert "1 corrupt" in out and "CORRUPT" in out
        assert not os.path.isdir(os.path.join(store_dir, "quarantine"))

        # --repair quarantines and exits 0; the store is then clean
        assert main(["cache", "verify", store_dir, "--repair"]) == 0
        assert "quarantined" in capsys.readouterr().out
        assert os.path.isdir(os.path.join(store_dir, "quarantine"))
        assert main(["cache", "verify", store_dir]) == 0
        assert "0 ok, 0 corrupt" in capsys.readouterr().out

    def test_verify_of_a_missing_store_is_an_error(self, tmp_path, capsys):
        missing = str(tmp_path / "no-such-store")
        assert main(["cache", "verify", missing]) == 2
        assert "error:" in capsys.readouterr().err


class TestSweepFaultOptions:
    def test_sweep_accepts_the_supervision_flags(self, capsys):
        code = main(
            [
                "sweep",
                "MS2",
                "--max-defects",
                "2",
                "--densities",
                "1.0",
                "2.0",
                "--max-retries",
                "1",
                "--shard-timeout",
                "30",
                "--no-degrade",
                "--stats",
            ]
        )
        assert code == 0
        assert "Engine statistics" in capsys.readouterr().out

    @pytest.mark.parametrize(
        "flags",
        [["--shard-timeout", "-3"], ["--max-retries", "-1"]],
        ids=["negative-timeout", "negative-retries"],
    )
    def test_invalid_supervision_values_are_rejected_up_front(self, flags, capsys):
        # even a sweep that never shards (serial route) must not accept
        # an unusable supervision configuration
        code = main(
            ["sweep", "MS2", "--max-defects", "2", "--densities", "1.0"] + flags
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestWorkerCommand:
    def test_parser_accepts_worker_and_fabric_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(["worker", "/tmp/store", "--port", "0"])
        assert args.command == "worker"
        assert args.store_dir == "/tmp/store"
        assert args.port == 0

        args = parser.parse_args(
            [
                "sweep",
                "MS2",
                "--remote-worker",
                "http://127.0.0.1:8100",
                "--remote-worker",
                "127.0.0.1:8101",
                "--heartbeat-interval",
                "0.5",
            ]
        )
        assert args.remote_workers == ["http://127.0.0.1:8100", "127.0.0.1:8101"]
        assert args.heartbeat_interval == 0.5

        args = parser.parse_args(["serve", "--remote-worker", "http://h:1"])
        assert args.remote_workers == ["http://h:1"]

    def test_sweep_through_a_cli_started_worker_matches_serial(self, tmp_path, capsys):
        pytest.importorskip("numpy")
        import subprocess
        import sys
        import time
        from http.client import HTTPConnection

        store = str(tmp_path / "store")
        import repro

        package_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [package_root, env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro", "worker", store, "--port", "0"],
            stdout=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            line = process.stdout.readline()
            assert "listening on http://" in line
            url = line.split("listening on ", 1)[1].split()[0]

            # the worker really answers its health probe
            parts = url.split("//", 1)[1].split(":")
            conn = HTTPConnection(parts[0], int(parts[1]), timeout=10.0)
            try:
                deadline = time.time() + 10.0
                status = None
                while time.time() < deadline:
                    try:
                        conn.request("GET", "/healthz")
                        status = conn.getresponse().status
                        break
                    except OSError:
                        time.sleep(0.1)
            finally:
                conn.close()
            assert status == 200

            code = main(
                [
                    "sweep",
                    "MS2",
                    "--max-defects",
                    "3",
                    "--densities",
                    "1.0",
                    "2.0",
                    "--store-dir",
                    store,
                    "--shard-size",
                    "1",
                    "--remote-worker",
                    url,
                    "--stats",
                ]
            )
            assert code == 0
            remote_out = capsys.readouterr().out
            assert "fabric.shards_completed" in remote_out

            code = main(
                ["sweep", "MS2", "--max-defects", "3", "--densities", "1.0", "2.0"]
            )
            assert code == 0
            serial_out = capsys.readouterr().out

            import re

            def yields(report):
                # the sweep table's data rows: mean defects, M, yield
                return re.findall(r"^\s*\d+(?:\.\d+)?\s+\d+\s+(0\.\d+)\s*$",
                                  report, re.MULTILINE)

            assert yields(remote_out) and yields(remote_out) == yields(serial_out)
        finally:
            process.terminate()
            process.wait(timeout=10)


class TestTelemetry:
    def test_sweep_exports_trace_and_metrics(self, tmp_path, capsys):
        from repro.obs import trace as obs_trace

        trace_file = tmp_path / "trace.json"
        metrics_file = tmp_path / "metrics.prom"
        code = main(
            [
                "sweep",
                "MS2",
                "--max-defects",
                "3",
                "--trace",
                str(trace_file),
                "--metrics",
                str(metrics_file),
            ]
        )
        assert code == 0
        assert obs_trace.active() is None  # the CLI stops its tracer
        out = capsys.readouterr().out
        assert "trace               :" in out
        assert str(trace_file) in out
        trace = json.loads(trace_file.read_text())
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert "cli.sweep" in names
        assert "service.build" in names
        assert "service.evaluate" in names
        metrics_text = metrics_file.read_text()
        assert "repro_service_points_requested" in metrics_text
        assert "repro_phase_build_seconds" in metrics_text

    def test_importance_exports_trace(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--trace", str(trace_file)]
        )
        assert code == 0
        capsys.readouterr()
        names = {
            e["name"]
            for e in json.loads(trace_file.read_text())["traceEvents"]
            if e["ph"] == "X"
        }
        assert "cli.importance" in names
        assert "service.gradients" in names

    def test_trace_subcommand_renders_a_tree(self, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        code = main(
            ["sweep", "MS2", "--max-defects", "3", "--trace", str(trace_file)]
        )
        assert code == 0
        capsys.readouterr()
        assert main(["trace", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "cli.sweep" in out and "ms" in out
        # nesting by containment: service.build sits under cli.sweep
        build_lines = [l for l in out.splitlines() if "service.build" in l]
        assert build_lines and build_lines[0].startswith("  ")

    def test_trace_subcommand_rejects_garbage(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("not json")
        assert main(["trace", str(bad)]) == 2
        assert "error" in capsys.readouterr().err
        good_json_wrong_shape = tmp_path / "shape.json"
        good_json_wrong_shape.write_text("[1, 2, 3]")
        assert main(["trace", str(good_json_wrong_shape)]) == 2
        assert "not a Chrome trace-event file" in capsys.readouterr().err

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.faulttree import dumps, loads
from repro.distributions import ComponentDefectModel
from repro.faulttree import FaultTreeBuilder

EXAMPLE_FT = """
toplevel SYSTEM;
SYSTEM and CORE_A CORE_B;
CORE_A prob 0.2;
CORE_B prob 0.2;
"""


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "duplex.ft"
    path.write_text(EXAMPLE_FT)
    return str(path)


class TestListAndVersion:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "ESEN8x4" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEvaluate:
    def test_evaluate_file(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--max-defects", "3"]) == 0
        out = capsys.readouterr().out
        assert "yield >=" in out
        assert "ROMDD nodes" in out

    def test_evaluate_with_montecarlo(self, tree_file, capsys):
        code = main(["evaluate", tree_file, "--max-defects", "2", "--montecarlo", "500"])
        assert code == 0
        assert "Monte-Carlo check" in capsys.readouterr().out

    def test_evaluate_poisson(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--poisson", "--max-defects", "2"]) == 0
        assert "yield >=" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["evaluate", str(tmp_path / "nope.ft")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.ft"
        path.write_text("toplevel X;\n")
        assert main(["evaluate", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_ordering(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--ordering", "zz"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchmark:
    def test_benchmark_ms2(self, capsys):
        code = main(["benchmark", "MS2", "--max-defects", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "yield >=" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["benchmark", "MS3"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestImportance:
    def test_default_reports_both_measures(self, capsys):
        assert main(["importance", "MS2", "--max-defects", "2"]) == 0
        out = capsys.readouterr().out
        assert "Component importance for MS2" in out
        assert "Yield sensitivity (analytic reverse-mode gradients)" in out
        assert "Hardening potential" in out
        assert "IPM_1" in out and "CS_2_2_B" in out
        assert "dY / d(rel. P_i)" in out and "yield gain" in out

    def test_component_subset_and_single_measure(self, capsys):
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--measure",
                "sensitivity",
                "--components",
                "IPM_1",
                "IPS_1_1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "IPM_1" in out and "IPS_1_1" in out
        assert "Hardening potential" not in out

    def test_fd_route(self, capsys):
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--measure",
                "sensitivity",
                "--fd",
                "--relative-step",
                "0.01",
            ]
        )
        assert code == 0
        assert "central finite differences, h=0.01" in capsys.readouterr().out

    def test_stats_counters(self, capsys):
        code = main(["importance", "MS2", "--max-defects", "2", "--stats"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Engine statistics" in out
        # one analytic pass differentiates the single baseline model...
        assert "gradient passes     : 1 (1 points differentiated)" in out
        # ...and the hardening route batches baseline + 18 perturbed models
        assert "batched passes      : 1 (19 points" in out
        assert "gradients" in out  # phase wall-clock line

    def test_jobs_fan_out(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--jobs", "2", "--stats"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Hardening potential" in out
        assert "gradient passes     : 1" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["importance", "NOPE"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_invalid_step_is_a_user_error(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--fd", "--relative-step", "1.5"]
        )
        assert code == 2
        assert "relative_step" in capsys.readouterr().err

    def test_unknown_component(self, capsys):
        code = main(
            ["importance", "MS2", "--max-defects", "2", "--components", "ZZZ"]
        )
        assert code == 2
        assert "unknown component" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "MS10" in out and "ESEN8x4" in out

    def test_table2_small(self, capsys):
        code = main(["table", "2", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "wvr" in capsys.readouterr().out

    def test_table4_small(self, capsys):
        code = main(["table", "4", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "yield" in capsys.readouterr().out

    def test_table_unknown_benchmark(self, capsys):
        assert main(["table", "2", "--benchmarks", "NOPE"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err


class TestCache:
    def test_ls_of_an_empty_store(self, tmp_path, capsys):
        assert main(["cache", "ls", str(tmp_path / "store")]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_warm_then_ls_info_and_clear(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "2"]) == 0
        out = capsys.readouterr().out
        assert "warmed MS2" in out and "M=2" in out

        assert main(["cache", "ls", store_dir]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out and "M=2" in out
        digest = out.strip().splitlines()[-1].split()[0]

        assert main(["cache", "info", store_dir, digest]) == 0
        out = capsys.readouterr().out
        assert '"truncation": 2' in out
        assert '"format": "repro-structure"' in out

        assert main(["cache", "clear", store_dir]) == 0
        assert "removed 1 entries" in capsys.readouterr().out
        assert main(["cache", "ls", store_dir]) == 0
        assert "is empty" in capsys.readouterr().out

    def test_info_of_an_unknown_digest(self, tmp_path, capsys):
        assert main(["cache", "info", str(tmp_path / "store"), "ffff"]) == 2
        assert "no entry matches" in capsys.readouterr().err

    def test_warm_unknown_benchmark(self, tmp_path, capsys):
        assert main(["cache", "warm", str(tmp_path / "store"), "NOPE"]) == 2
        assert "NOPE" in capsys.readouterr().err

    def test_sweep_warm_starts_from_a_warmed_store(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        assert main(["cache", "warm", store_dir, "MS2", "--max-defects", "3"]) == 0
        capsys.readouterr()
        code = main(
            [
                "sweep",
                "MS2",
                "--max-defects",
                "3",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "structures built    : 0" in out
        assert "structure store     : 1 hits / 0 misses" in out

    def test_importance_accepts_a_store_dir(self, tmp_path, capsys):
        store_dir = str(tmp_path / "store")
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "structure store" in out
        # the run persisted its structure: a second process warm-starts
        code = main(
            [
                "importance",
                "MS2",
                "--max-defects",
                "2",
                "--store-dir",
                store_dir,
                "--stats",
            ]
        )
        assert code == 0
        assert "structure store     : 1 hits" in capsys.readouterr().out

"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.faulttree import dumps, loads
from repro.distributions import ComponentDefectModel
from repro.faulttree import FaultTreeBuilder

EXAMPLE_FT = """
toplevel SYSTEM;
SYSTEM and CORE_A CORE_B;
CORE_A prob 0.2;
CORE_B prob 0.2;
"""


@pytest.fixture
def tree_file(tmp_path):
    path = tmp_path / "duplex.ft"
    path.write_text(EXAMPLE_FT)
    return str(path)


class TestListAndVersion:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "ESEN8x4" in out

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert "repro" in capsys.readouterr().out

    def test_missing_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestEvaluate:
    def test_evaluate_file(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--max-defects", "3"]) == 0
        out = capsys.readouterr().out
        assert "yield >=" in out
        assert "ROMDD nodes" in out

    def test_evaluate_with_montecarlo(self, tree_file, capsys):
        code = main(["evaluate", tree_file, "--max-defects", "2", "--montecarlo", "500"])
        assert code == 0
        assert "Monte-Carlo check" in capsys.readouterr().out

    def test_evaluate_poisson(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--poisson", "--max-defects", "2"]) == 0
        assert "yield >=" in capsys.readouterr().out

    def test_missing_file(self, tmp_path, capsys):
        code = main(["evaluate", str(tmp_path / "nope.ft")])
        assert code == 2
        assert "cannot read" in capsys.readouterr().err

    def test_malformed_file(self, tmp_path, capsys):
        path = tmp_path / "bad.ft"
        path.write_text("toplevel X;\n")
        assert main(["evaluate", str(path)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_ordering(self, tree_file, capsys):
        assert main(["evaluate", tree_file, "--ordering", "zz"]) == 2
        assert "error" in capsys.readouterr().err


class TestBenchmark:
    def test_benchmark_ms2(self, capsys):
        code = main(["benchmark", "MS2", "--max-defects", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MS2" in out and "yield >=" in out

    def test_unknown_benchmark(self, capsys):
        assert main(["benchmark", "MS3"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err


class TestTable:
    def test_table1(self, capsys):
        assert main(["table", "1"]) == 0
        out = capsys.readouterr().out
        assert "MS10" in out and "ESEN8x4" in out

    def test_table2_small(self, capsys):
        code = main(["table", "2", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "wvr" in capsys.readouterr().out

    def test_table4_small(self, capsys):
        code = main(["table", "4", "--benchmarks", "MS2", "--max-defects", "2"])
        assert code == 0
        assert "yield" in capsys.readouterr().out

    def test_table_unknown_benchmark(self, capsys):
        assert main(["table", "2", "--benchmarks", "NOPE"]) == 2
        assert "unknown benchmarks" in capsys.readouterr().err

"""Test package."""

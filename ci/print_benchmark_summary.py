#!/usr/bin/env python3
"""Summarise the archived ``BENCH_*.json`` records — and gate regressions.

Usage::

    python ci/print_benchmark_summary.py [RESULTS_DIR] [BASELINE_DIR]
    python ci/print_benchmark_summary.py RESULTS_DIR --gate [--tolerance 0.2]

Reads every ``BENCH_*.json`` in ``RESULTS_DIR`` and prints its headline
numbers plus the span breakdown the telemetry subsystem attached to the
record.  When a baseline directory holds records of the same names, a
delta column shows how each numeric headline moved against the baseline.

Without ``--gate`` the step is a trend report and always exits 0, even on
missing directories or malformed records.

With ``--gate`` the script becomes the benchmark regression gate: the
committed records under ``benchmarks/baselines/`` (override with
``--baselines``) are floors for the dimensionless speedup/shrink ratios
in :data:`GATED_KEYS`.  A measured ratio may dip up to ``--tolerance``
(relative, default 0.20) below its floor before the gate fails; anything
past that exits non-zero with a per-metric verdict table.  Ratios are
gated rather than raw seconds so the gate is stable across runner
hardware.  Missing records or metrics — a benchmark that did not run, or
``native_speedup: null`` on a host without a C compiler — only warn: the
gate must not fail hosts where an optional backend is legitimately
unavailable.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

#: Headline keys never worth a delta line (identities, not measurements).
_SKIP_KEYS = {"benchmark", "numpy_path_available", "native_available"}

#: Higher-is-better ratio metrics the ``--gate`` mode enforces floors on.
#: All are dimensionless (speedup over an in-run reference, payload shrink
#: factor), so a committed floor transfers between machines; absolute
#: seconds deliberately stay trend-only.
GATED_KEYS = (
    "kernel_speedup",
    "native_speedup",
    "native_backward_speedup",
    "payload_shrink",
    "speedup",
)


def _load_records(directory):
    records = {}
    if not directory:
        return records
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path) as handle:
                records[name] = json.load(handle)
        except (OSError, ValueError) as exc:
            print("  ! cannot read %s: %s" % (path, exc))
    return records


def _numeric_items(record):
    for key in sorted(record):
        value = record[key]
        if key in _SKIP_KEYS or isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield key, value


def _format_number(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def _delta(value, base):
    if base in (None, 0):
        return ""
    try:
        change = (value - base) / abs(base)
    except TypeError:
        return ""
    if abs(change) < 0.005:
        return "  (=)"
    return "  (%+.1f%% vs baseline)" % (100.0 * change)


def print_record(name, record, baseline):
    print("%s" % name)
    base = baseline or {}
    for key, value in _numeric_items(record):
        print(
            "  %-26s %12s%s"
            % (key, _format_number(value), _delta(value, base.get(key)))
        )
    spans = record.get("spans") or {}
    if spans:
        base_spans = base.get("spans") or {}
        print("  span breakdown:")
        ordered = sorted(
            spans.items(), key=lambda item: item[1].get("seconds", 0.0), reverse=True
        )
        for span_name, entry in ordered:
            base_entry = base_spans.get(span_name) or {}
            print(
                "    %-28s %4dx %10.4fs%s"
                % (
                    span_name,
                    entry.get("count", 0),
                    entry.get("seconds", 0.0),
                    _delta(entry.get("seconds", 0.0), base_entry.get("seconds")),
                )
            )
    print()


def run_gate(records, baselines, tolerance):
    """Compare gated ratios against the committed floors; return exit code."""
    if not baselines:
        print("gate: no baseline records — nothing to enforce (warning)")
        return 0
    failures = []
    rows = []
    for name in sorted(baselines):
        baseline = baselines[name]
        record = records.get(name)
        if record is None:
            rows.append((name, "-", "missing", "WARN (did not run)"))
            continue
        gated = False
        for key in GATED_KEYS:
            floor = baseline.get(key)
            if not isinstance(floor, (int, float)) or isinstance(floor, bool):
                continue
            gated = True
            metric = "%s.%s" % (name, key)
            value = record.get(key)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                rows.append((metric, "%.3f" % floor, "n/a", "WARN (not measured)"))
                continue
            required = floor * (1.0 - tolerance)
            verdict = "ok" if value >= required else "FAIL"
            rows.append(
                (
                    metric,
                    "%.3f" % floor,
                    "%.3f" % value,
                    "%s (min %.3f)" % (verdict, required),
                )
            )
            if value < required:
                failures.append(metric)
        if not gated:
            rows.append((name, "-", "-", "ok (no gated ratios)"))
    title = "Benchmark regression gate (tolerance %.0f%% below floor)" % (
        100.0 * tolerance
    )
    print(title)
    print("=" * len(title))
    width = max(len(row[0]) for row in rows) if rows else 10
    for metric, floor, value, verdict in rows:
        print(
            "  %-*s  floor %-10s measured %-10s %s"
            % (width, metric, floor, value, verdict)
        )
    print()
    if failures:
        print("gate FAILED: %d metric(s) regressed past tolerance:" % len(failures))
        for metric in failures:
            print("  - %s" % metric)
        return 1
    print("gate OK: no gated ratio regressed past tolerance")
    return 0


def main(argv):
    parser = argparse.ArgumentParser(
        description="Summarise BENCH_*.json records; optionally gate regressions."
    )
    parser.add_argument("results_dir", nargs="?", default="benchmarks/results")
    parser.add_argument(
        "baseline_dir",
        nargs="?",
        default=None,
        help="records to diff against (defaults to --baselines when --gate is on)",
    )
    parser.add_argument(
        "--gate",
        action="store_true",
        help="fail (exit 1) when a gated ratio drops past tolerance below its floor",
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join("benchmarks", "baselines"),
        help="committed floor records (default: benchmarks/baselines)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed relative dip below a floor before failing (default: 0.20)",
    )
    args = parser.parse_args(argv[1:])

    baseline_dir = args.baseline_dir
    if baseline_dir is None and args.gate:
        baseline_dir = args.baselines

    records = _load_records(args.results_dir)
    baselines = _load_records(baseline_dir)
    if not records:
        print("no BENCH_*.json records under %s" % args.results_dir)
        if args.gate:
            print("gate: nothing ran — treating as a warning, not a failure")
        return 0
    title = "Benchmark summary (%d records)" % len(records)
    if baselines:
        title += " vs baseline %s" % baseline_dir
    print(title)
    print("=" * len(title))
    for name in sorted(records):
        print_record(name, records[name], baselines.get(name))
    if args.gate:
        return run_gate(records, baselines, args.tolerance)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

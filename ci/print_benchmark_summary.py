#!/usr/bin/env python3
"""Print a per-benchmark summary of the archived ``BENCH_*.json`` records.

Usage::

    python ci/print_benchmark_summary.py RESULTS_DIR [BASELINE_DIR]

Reads every ``BENCH_*.json`` in ``RESULTS_DIR`` and prints its headline
numbers plus the span breakdown the telemetry subsystem attached to the
record.  When ``BASELINE_DIR`` holds records of the same names (for
example the ``BENCH-records`` artifact of an earlier run), a delta column
shows how each numeric headline moved against the baseline.

The step is a trend report, not a gate: the script always exits 0, even
on missing directories or malformed records.
"""

from __future__ import annotations

import glob
import json
import os
import sys

#: Headline keys never worth a delta line (identities, not measurements).
_SKIP_KEYS = {"benchmark", "numpy_path_available"}


def _load_records(directory):
    records = {}
    if not directory:
        return records
    for path in sorted(glob.glob(os.path.join(directory, "BENCH_*.json"))):
        name = os.path.basename(path)[len("BENCH_") : -len(".json")]
        try:
            with open(path) as handle:
                records[name] = json.load(handle)
        except (OSError, ValueError) as exc:
            print("  ! cannot read %s: %s" % (path, exc))
    return records


def _numeric_items(record):
    for key in sorted(record):
        value = record[key]
        if key in _SKIP_KEYS or isinstance(value, bool):
            continue
        if isinstance(value, (int, float)):
            yield key, value


def _format_number(value):
    if isinstance(value, float):
        return "%.6g" % value
    return str(value)


def _delta(value, base):
    if base in (None, 0):
        return ""
    try:
        change = (value - base) / abs(base)
    except TypeError:
        return ""
    if abs(change) < 0.005:
        return "  (=)"
    return "  (%+.1f%% vs baseline)" % (100.0 * change)


def print_record(name, record, baseline):
    print("%s" % name)
    base = baseline or {}
    for key, value in _numeric_items(record):
        print(
            "  %-26s %12s%s"
            % (key, _format_number(value), _delta(value, base.get(key)))
        )
    spans = record.get("spans") or {}
    if spans:
        base_spans = base.get("spans") or {}
        print("  span breakdown:")
        ordered = sorted(
            spans.items(), key=lambda item: item[1].get("seconds", 0.0), reverse=True
        )
        for span_name, entry in ordered:
            base_entry = base_spans.get(span_name) or {}
            print(
                "    %-28s %4dx %10.4fs%s"
                % (
                    span_name,
                    entry.get("count", 0),
                    entry.get("seconds", 0.0),
                    _delta(entry.get("seconds", 0.0), base_entry.get("seconds")),
                )
            )
    print()


def main(argv):
    results_dir = argv[1] if len(argv) > 1 else "benchmarks/results"
    baseline_dir = argv[2] if len(argv) > 2 else None
    records = _load_records(results_dir)
    if not records:
        print("no BENCH_*.json records under %s" % results_dir)
        return 0
    baselines = _load_records(baseline_dir)
    title = "Benchmark summary (%d records)" % len(records)
    if baselines:
        title += " vs baseline %s" % baseline_dir
    print(title)
    print("=" * len(title))
    for name in sorted(records):
        print_record(name, records[name], baselines.get(name))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

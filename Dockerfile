# Containerized `repro serve`: the long-lived yield-analysis service.
#
#   docker build -t repro-serve .
#   docker run --rm -p 8000:8000 -v repro-store:/data repro-serve
#
# The store volume (/data) lets restarts warm-start compiled structures
# from disk instead of rebuilding; drop the volume for a stateless run.
FROM python:3.11-slim

WORKDIR /opt/repro
COPY pyproject.toml setup.py ./
COPY src ./src
RUN pip install --no-cache-dir numpy . && rm -rf src pyproject.toml setup.py

RUN useradd --system --create-home repro \
    && mkdir -p /data/store /data/cache \
    && chown -R repro /data
USER repro

EXPOSE 8000
HEALTHCHECK --interval=10s --timeout=3s --start-period=15s --retries=3 \
    CMD ["python", "-c", "import urllib.request,sys; sys.exit(0 if urllib.request.urlopen('http://127.0.0.1:8000/healthz', timeout=2).status == 200 else 1)"]

# SIGTERM (docker stop) triggers the server's graceful drain.
CMD ["repro", "serve", "--host", "0.0.0.0", "--port", "8000", \
     "--workers", "2", "--store-dir", "/data/store", "--cache-dir", "/data/cache"]

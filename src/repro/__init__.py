"""repro — combinatorial yield evaluation of fault-tolerant systems-on-chip.

A from-scratch reproduction of

    D. P. Munteanu, V. Sune, R. Rodriguez-Montanes, J. A. Carrasco,
    "A Combinatorial Method for the Evaluation of Yield of Fault-Tolerant
    Systems-on-Chip", DSN 2003.

Typical use::

    from repro import evaluate_yield
    from repro.soc import ms_problem

    problem = ms_problem(2, mean_defects=2.0)     # lambda' = 1 lethal defect
    result = evaluate_yield(problem, epsilon=1e-4)
    print(result.summary())

The public surface is re-exported here; the subpackages are:

* :mod:`repro.distributions` — defect-count models and the lethal mapping;
* :mod:`repro.faulttree` — gate-level circuits and multiple-valued variables;
* :mod:`repro.bdd` — the ROBDD engine;
* :mod:`repro.mdd` — the ROMDD engine, conversion and probability traversal;
* :mod:`repro.engine` — the shared DD kernel (GC, bounded caches), dynamic
  reordering and the batch sweep service;
* :mod:`repro.ordering` — variable-ordering heuristics;
* :mod:`repro.core` — the yield method, Monte-Carlo and exact baselines;
* :mod:`repro.soc` — the MSn and ESEN benchmark generators;
* :mod:`repro.analysis` — table regeneration and reporting helpers.
"""

from .core import (
    CompiledYield,
    ExactResult,
    GeneralizedFaultTree,
    MonteCarloResult,
    MonteCarloYieldEstimator,
    StageTimings,
    YieldAnalyzer,
    YieldProblem,
    YieldResult,
    estimate_yield_montecarlo,
    evaluate_yield,
    exact_yield,
)
from .engine import SweepPoint, SweepService
from .distributions import (
    ComponentDefectModel,
    CompoundPoissonDefectDistribution,
    EmpiricalDefectDistribution,
    NegativeBinomialDefectDistribution,
    PoissonDefectDistribution,
)
from .faulttree import FaultTreeBuilder
from .ordering import OrderingSpec

__version__ = "1.0.0"

__all__ = [
    "YieldAnalyzer",
    "CompiledYield",
    "SweepService",
    "SweepPoint",
    "YieldProblem",
    "YieldResult",
    "StageTimings",
    "GeneralizedFaultTree",
    "evaluate_yield",
    "MonteCarloYieldEstimator",
    "MonteCarloResult",
    "estimate_yield_montecarlo",
    "exact_yield",
    "ExactResult",
    "ComponentDefectModel",
    "NegativeBinomialDefectDistribution",
    "PoissonDefectDistribution",
    "CompoundPoissonDefectDistribution",
    "EmpiricalDefectDistribution",
    "FaultTreeBuilder",
    "OrderingSpec",
    "__version__",
]

"""Gate-level circuits (netlists) over binary variables.

A :class:`Circuit` is the library's representation of the gate-level
description of a fault-tree function the paper assumes as input: a DAG of
gates over named binary input variables with one or more named outputs.
Nodes are stored in construction order, and fanins must already exist when a
gate is added, so the node list is always a valid topological order.

The class is deliberately small: the ordering heuristics
(:mod:`repro.ordering`) and the ROBDD builder (:mod:`repro.bdd.builder`)
operate on it only through indices, ordered fanins and fanout information.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .ops import CircuitError, GateOp, evaluate_gate, validate_arity


class Node:
    """A node of a :class:`Circuit`: an input, a constant or a gate."""

    __slots__ = ("index", "kind", "op", "fanins", "name")

    KIND_INPUT = "input"
    KIND_CONST = "const"
    KIND_GATE = "gate"

    def __init__(
        self,
        index: int,
        kind: str,
        op: Optional[GateOp],
        fanins: Tuple[int, ...],
        name: Optional[str],
    ) -> None:
        self.index = index
        self.kind = kind
        self.op = op
        self.fanins = fanins
        self.name = name

    @property
    def is_input(self) -> bool:
        return self.kind == Node.KIND_INPUT

    @property
    def is_const(self) -> bool:
        return self.kind == Node.KIND_CONST

    @property
    def is_gate(self) -> bool:
        return self.kind == Node.KIND_GATE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_input:
            return "Node(%d, input %r)" % (self.index, self.name)
        if self.is_const:
            return "Node(%d, const %r)" % (self.index, self.name)
        return "Node(%d, %s%r)" % (self.index, self.op.name, tuple(self.fanins))


class Circuit:
    """A combinational netlist over named binary inputs.

    Notes
    -----
    * Node indices are dense, 0-based and topologically ordered (every gate's
      fanins have smaller indices).
    * The two constants are created lazily and are shared.
    * Outputs are named; :attr:`primary_output` returns the single output when
      there is exactly one (the usual fault-tree case).
    """

    def __init__(self, name: str = "circuit") -> None:
        self.name = name
        self._nodes: List[Node] = []
        self._inputs: List[int] = []
        self._input_index: Dict[str, int] = {}
        self._outputs: Dict[str, int] = {}
        self._const_index: Dict[bool, int] = {}
        self._gate_cache: Dict[Tuple[GateOp, Tuple[int, ...]], int] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: str) -> int:
        """Create (or return) the input variable called ``name``."""
        if name in self._input_index:
            return self._input_index[name]
        index = len(self._nodes)
        self._nodes.append(Node(index, Node.KIND_INPUT, None, (), name))
        self._inputs.append(index)
        self._input_index[name] = index
        return index

    def add_const(self, value: bool) -> int:
        """Create (or return) the constant node for ``value``."""
        value = bool(value)
        if value in self._const_index:
            return self._const_index[value]
        index = len(self._nodes)
        self._nodes.append(Node(index, Node.KIND_CONST, None, (), "1" if value else "0"))
        self._const_index[value] = index
        return index

    def add_gate(self, op: GateOp, fanins: Sequence[int], *, share: bool = True) -> int:
        """Create a gate node.

        Parameters
        ----------
        op:
            The gate operator.
        fanins:
            Indices of existing nodes, in order (fanin order is significant
            for the ordering heuristics).
        share:
            When true (default) structurally identical gates are shared.
        """
        fanins = tuple(int(f) for f in fanins)
        validate_arity(op, len(fanins))
        for f in fanins:
            if not 0 <= f < len(self._nodes):
                raise CircuitError("fanin index %d out of range" % f)
        if share:
            key = (op, fanins)
            cached = self._gate_cache.get(key)
            if cached is not None:
                return cached
        index = len(self._nodes)
        self._nodes.append(Node(index, Node.KIND_GATE, op, fanins, None))
        if share:
            self._gate_cache[(op, fanins)] = index
        return index

    def set_output(self, index: int, name: str = "out") -> None:
        """Declare node ``index`` as the output called ``name``."""
        if not 0 <= index < len(self._nodes):
            raise CircuitError("output index %d out of range" % index)
        self._outputs[name] = index

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def nodes(self) -> Sequence[Node]:
        """All nodes in topological order."""
        return self._nodes

    @property
    def input_indices(self) -> Sequence[int]:
        """Indices of the input nodes in creation order."""
        return tuple(self._inputs)

    @property
    def input_names(self) -> Tuple[str, ...]:
        """Names of the input variables in creation order."""
        return tuple(self._nodes[i].name for i in self._inputs)

    @property
    def outputs(self) -> Mapping[str, int]:
        """Mapping of output name to node index."""
        return dict(self._outputs)

    @property
    def primary_output(self) -> int:
        """The node index of the unique output (error if not exactly one)."""
        if len(self._outputs) != 1:
            raise CircuitError(
                "circuit %r has %d outputs; primary_output requires exactly one"
                % (self.name, len(self._outputs))
            )
        return next(iter(self._outputs.values()))

    def node(self, index: int) -> Node:
        """Return the node with the given index."""
        return self._nodes[index]

    def input_index(self, name: str) -> int:
        """Return the node index of the input called ``name``."""
        try:
            return self._input_index[name]
        except KeyError:
            raise CircuitError("unknown input %r" % (name,)) from None

    @property
    def num_inputs(self) -> int:
        return len(self._inputs)

    @property
    def num_gates(self) -> int:
        """Number of gate nodes (inputs and constants excluded)."""
        return sum(1 for n in self._nodes if n.is_gate)

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------ #
    # Structural queries
    # ------------------------------------------------------------------ #

    def fanouts(self) -> List[List[int]]:
        """Return, for every node, the list of gates that read it (in order)."""
        outs: List[List[int]] = [[] for _ in self._nodes]
        for node in self._nodes:
            for f in node.fanins:
                outs[f].append(node.index)
        return outs

    def cone(self, root: int) -> Set[int]:
        """Return the set of node indices in the transitive fanin cone of ``root``."""
        seen: Set[int] = set()
        stack = [root]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            stack.extend(self._nodes[idx].fanins)
        return seen

    def support(self, root: Optional[int] = None) -> List[int]:
        """Return input node indices the ``root`` output depends on, in input order."""
        if root is None:
            root = self.primary_output
        cone = self.cone(root)
        return [i for i in self._inputs if i in cone]

    def depth(self, root: Optional[int] = None) -> int:
        """Return the maximum number of gates on any input-to-``root`` path."""
        if root is None:
            root = self.primary_output
        memo: Dict[int, int] = {}
        order = sorted(self.cone(root))
        for idx in order:
            node = self._nodes[idx]
            if not node.is_gate:
                memo[idx] = 0
            else:
                memo[idx] = 1 + max(memo[f] for f in node.fanins)
        return memo[root]

    def dfs_leftmost(self, root: Optional[int] = None) -> Iterator[int]:
        """Yield node indices in depth-first, left-most pre-order from ``root``.

        Each node is yielded at most once (the first time it is reached),
        which matches the traversal the ordering heuristics of the paper
        [25, 26, 4] are defined on.
        """
        if root is None:
            root = self.primary_output
        seen: Set[int] = set()
        stack: List[int] = [root]
        while stack:
            idx = stack.pop()
            if idx in seen:
                continue
            seen.add(idx)
            yield idx
            node = self._nodes[idx]
            # push fanins right-to-left so the left-most fanin is visited first
            for f in reversed(node.fanins):
                if f not in seen:
                    stack.append(f)

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, assignment: Mapping[str, bool]) -> Dict[str, bool]:
        """Evaluate all outputs under a complete input assignment.

        ``assignment`` maps input names to boolean values; missing inputs
        raise :class:`CircuitError`.
        """
        values: List[Optional[bool]] = [None] * len(self._nodes)
        for name, idx in self._input_index.items():
            if name not in assignment:
                raise CircuitError("missing value for input %r" % (name,))
            values[idx] = bool(assignment[name])
        for value, idx in self._const_index.items():
            values[idx] = value
        for node in self._nodes:
            if node.is_gate:
                values[node.index] = evaluate_gate(
                    node.op, [values[f] for f in node.fanins]
                )
        return {name: bool(values[idx]) for name, idx in self._outputs.items()}

    def evaluate_output(self, assignment: Mapping[str, bool], name: Optional[str] = None) -> bool:
        """Evaluate a single output (the primary one when ``name`` is omitted)."""
        results = self.evaluate(assignment)
        if name is None:
            if len(results) != 1:
                raise CircuitError("circuit has multiple outputs; specify a name")
            return next(iter(results.values()))
        if name not in results:
            raise CircuitError("unknown output %r" % (name,))
        return results[name]

    # ------------------------------------------------------------------ #
    # Misc
    # ------------------------------------------------------------------ #

    def stats(self) -> Dict[str, int]:
        """Return a small summary dictionary (inputs, gates, depth)."""
        try:
            depth = self.depth()
        except CircuitError:
            depth = 0
        return {
            "inputs": self.num_inputs,
            "gates": self.num_gates,
            "nodes": len(self._nodes),
            "depth": depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Circuit(%r, inputs=%d, gates=%d)" % (self.name, self.num_inputs, self.num_gates)

"""Multiple-valued variables and circuits with "filter" gates.

The generalized fault tree ``G(w, v_1 .. v_M)`` of the paper (Fig. 1) is a
boolean function of *multiple-valued* variables: the defect-count variable
``w`` and the defect-location variables ``v_l``.  Its leaves are "filter"
gates — boolean functions of a single multiple-valued variable that test
``var == value`` or ``var >= value``.

:class:`MVCircuit` represents such a function as a binary
:class:`repro.faulttree.circuit.Circuit` whose inputs are filter signals,
plus a registry describing which multiple-valued variable and predicate each
filter input stands for.  This single representation serves three consumers:

* direct evaluation on a multiple-valued assignment (used by tests and the
  Monte-Carlo baseline);
* binary expansion into a plain circuit over the encoding bits, using exactly
  the literal logic of Section 2 (consumed by the ordering heuristics and the
  coded-ROBDD builder);
* direct ROMDD construction (the ablation baseline in
  :mod:`repro.mdd.direct`).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .circuit import Circuit, Node
from .encoding import BinaryCode
from .ops import CircuitError, GateOp


class MultiValuedVariable:
    """A named variable taking values in a finite integer domain."""

    __slots__ = ("name", "values", "code")

    def __init__(self, name: str, values: Sequence[int], offset: Optional[int] = None) -> None:
        self.name = str(name)
        self.values: Tuple[int, ...] = tuple(int(v) for v in values)
        if len(self.values) < 2:
            raise CircuitError(
                "multiple-valued variable %r needs at least two values" % (name,)
            )
        self.code = BinaryCode(self.values, offset=offset)

    @property
    def cardinality(self) -> int:
        """Number of values in the domain."""
        return len(self.values)

    @property
    def width(self) -> int:
        """Number of bits of the minimum-width binary code."""
        return self.code.width

    def bit_names(self) -> Tuple[str, ...]:
        """Names of the encoding bits, most significant first (``name[0]`` is MSB)."""
        return tuple("%s[%d]" % (self.name, b) for b in range(self.width))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MultiValuedVariable(%r, |D|=%d, width=%d)" % (
            self.name,
            self.cardinality,
            self.width,
        )


class FilterKind:
    """Predicates a filter gate may test on its multiple-valued input."""

    EQ = "eq"   #: value == constant  (the gate labeled "i" in Fig. 1)
    GEQ = "geq"  #: value >= constant  (the gate labeled ">= i" in Fig. 1)


class FilterGate:
    """Description of one filter input of an :class:`MVCircuit`."""

    __slots__ = ("variable", "kind", "constant")

    def __init__(self, variable: MultiValuedVariable, kind: str, constant: int) -> None:
        if kind not in (FilterKind.EQ, FilterKind.GEQ):
            raise CircuitError("unknown filter kind %r" % (kind,))
        self.variable = variable
        self.kind = kind
        self.constant = int(constant)

    def evaluate(self, value: int) -> bool:
        """Evaluate the filter predicate on a concrete variable value."""
        if self.kind == FilterKind.EQ:
            return value == self.constant
        return value >= self.constant

    def label(self) -> str:
        """Return the canonical input name used inside the binary circuit."""
        op = "==" if self.kind == FilterKind.EQ else ">="
        return "%s%s%d" % (self.variable.name, op, self.constant)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FilterGate(%s)" % self.label()


class MVCircuit:
    """A boolean function of multiple-valued variables built from filter gates."""

    def __init__(self, name: str = "mv-circuit") -> None:
        self._circuit = Circuit(name)
        self._variables: List[MultiValuedVariable] = []
        self._var_index: Dict[str, int] = {}
        self._filters: Dict[str, FilterGate] = {}
        self._top: Optional[int] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_variable(self, variable: MultiValuedVariable) -> MultiValuedVariable:
        """Register a multiple-valued input variable."""
        if variable.name in self._var_index:
            raise CircuitError("variable %r already registered" % (variable.name,))
        self._var_index[variable.name] = len(self._variables)
        self._variables.append(variable)
        return variable

    def filter_eq(self, variable: MultiValuedVariable, constant: int) -> int:
        """Return the circuit node testing ``variable == constant``."""
        return self._filter(variable, FilterKind.EQ, constant)

    def filter_geq(self, variable: MultiValuedVariable, constant: int) -> int:
        """Return the circuit node testing ``variable >= constant``."""
        return self._filter(variable, FilterKind.GEQ, constant)

    def _filter(self, variable: MultiValuedVariable, kind: str, constant: int) -> int:
        if variable.name not in self._var_index:
            raise CircuitError("variable %r is not registered" % (variable.name,))
        gate = FilterGate(variable, kind, constant)
        label = gate.label()
        if label not in self._filters:
            self._filters[label] = gate
        return self._circuit.add_input(label)

    def gate(self, op: GateOp, fanins: Sequence[int]) -> int:
        """Add a binary gate over filter signals / previous gates."""
        return self._circuit.add_gate(op, fanins)

    def const(self, value: bool) -> int:
        """Add (or reuse) a boolean constant node."""
        return self._circuit.add_const(value)

    def set_top(self, index: int) -> None:
        """Declare the output node of the function."""
        self._circuit.set_output(index, "G")
        self._top = index

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[MultiValuedVariable, ...]:
        """The multiple-valued input variables, in registration order."""
        return tuple(self._variables)

    def variable(self, name: str) -> MultiValuedVariable:
        """Return the registered variable called ``name``."""
        try:
            return self._variables[self._var_index[name]]
        except KeyError:
            raise CircuitError("unknown variable %r" % (name,)) from None

    @property
    def filters(self) -> Mapping[str, FilterGate]:
        """Mapping from filter label to :class:`FilterGate`."""
        return dict(self._filters)

    @property
    def circuit(self) -> Circuit:
        """The underlying binary circuit whose inputs are the filter signals."""
        return self._circuit

    @property
    def num_gates(self) -> int:
        """Number of binary gates (filter gates are counted as inputs)."""
        return self._circuit.num_gates

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Evaluate the function on a complete multiple-valued assignment."""
        filter_values: Dict[str, bool] = {}
        for label, gate in self._filters.items():
            if gate.variable.name not in assignment:
                raise CircuitError("missing value for variable %r" % (gate.variable.name,))
            value = int(assignment[gate.variable.name])
            if value not in gate.variable.values:
                raise CircuitError(
                    "value %r outside the domain of %r" % (value, gate.variable.name)
                )
            filter_values[label] = gate.evaluate(value)
        # inputs of the underlying circuit that are not filters (should not
        # happen, but keep the error readable)
        for name in self._circuit.input_names:
            if name not in filter_values:
                raise CircuitError("input %r has no filter definition" % (name,))
        return self._circuit.evaluate_output(filter_values, "G")

    # ------------------------------------------------------------------ #
    # Binary expansion (Section 2 literal logic)
    # ------------------------------------------------------------------ #

    def binary_encode(self, name: Optional[str] = None) -> "Circuit":
        """Expand the function into a plain circuit over the encoding bits.

        Every multiple-valued variable contributes ``width`` binary inputs
        named ``"var[b]"`` (``b = 0`` is the most significant bit).  Filter
        gates are replaced by the literal logic of Section 2 of the paper:

        * ``var == c``  becomes the minterm of ``c``'s codeword;
        * ``var >= c``  becomes the chain
          ``(var >= c+1) OR (var == c)`` terminated at the top of the domain,
          which is exactly the ``z_k = z_{k+1} + lit(...)`` recurrence.

        The bit inputs are created variable by variable (in registration
        order), most significant bit first; the ordering heuristics may later
        reorder them freely, this method only fixes which inputs exist.
        """
        out = Circuit(name or (self._circuit.name + "-binary"))
        # create all bit inputs up front so each variable's bits exist even if
        # some are unused by the logic (keeps encodings predictable)
        bit_nodes: Dict[Tuple[str, int], int] = {}
        for var in self._variables:
            for b, bit_name in enumerate(var.bit_names()):
                bit_nodes[(var.name, b)] = out.add_input(bit_name)

        def minterm(var: MultiValuedVariable, value: int) -> int:
            literals = []
            word = var.code.codeword(value)
            for b, bit in enumerate(word):
                node = bit_nodes[(var.name, b)]
                if bit == 1:
                    literals.append(node)
                else:
                    literals.append(out.add_gate(GateOp.NOT, [node]))
            if len(literals) == 1:
                return literals[0]
            return out.add_gate(GateOp.AND, literals)

        geq_cache: Dict[Tuple[str, int], int] = {}

        def geq(var: MultiValuedVariable, constant: int) -> int:
            values_above = [v for v in var.values if v >= constant]
            if not values_above:
                return out.add_const(False)
            if len(values_above) == len(var.values):
                return out.add_const(True)
            key = (var.name, constant)
            if key in geq_cache:
                return geq_cache[key]
            # z_{>=c} = z_{>=c'} OR minterm(c) where c' is the next domain
            # value above c (the paper's recurrence specialised to contiguous
            # domains).
            this = minterm(var, constant) if constant in var.values else None
            above = sorted(v for v in var.values if v > constant)
            if above:
                rest = geq(var, above[0])
                node = out.add_gate(GateOp.OR, [rest, this]) if this is not None else rest
            else:
                node = this if this is not None else out.add_const(False)
            geq_cache[key] = node
            return node

        filter_nodes: Dict[str, int] = {}
        for label, gate in self._filters.items():
            if gate.kind == FilterKind.EQ:
                filter_nodes[label] = minterm(gate.variable, gate.constant)
            else:
                filter_nodes[label] = geq(gate.variable, gate.constant)

        # copy the gate structure, substituting filter inputs
        mapping: Dict[int, int] = {}
        for node in self._circuit.nodes:
            if node.is_input:
                mapping[node.index] = filter_nodes[node.name]
            elif node.is_const:
                mapping[node.index] = out.add_const(node.name == "1")
            else:
                mapping[node.index] = out.add_gate(node.op, [mapping[f] for f in node.fanins])
        if self._top is None:
            raise CircuitError("MV circuit has no output; call set_top() first")
        out.set_output(mapping[self._top], "G")
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MVCircuit(vars=%d, filters=%d, gates=%d)" % (
            len(self._variables),
            len(self._filters),
            self.num_gates,
        )

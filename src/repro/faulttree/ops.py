"""Gate operators for gate-level fault-tree descriptions.

The paper assumes a gate-level description of the fault-tree function
``F(x_1 .. x_C)`` is available (Section 1).  We support the usual monotone
fault-tree operators plus the non-monotone ones needed to express the binary
"filter" logic of Section 2 (complemented literals, XOR/XNOR).
"""

from __future__ import annotations

from enum import Enum
from typing import Sequence


class GateOp(Enum):
    """Boolean gate operators supported by :class:`repro.faulttree.circuit.Circuit`."""

    AND = "and"
    OR = "or"
    NOT = "not"
    BUF = "buf"
    XOR = "xor"
    XNOR = "xnor"
    NAND = "nand"
    NOR = "nor"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GateOp.%s" % self.name


#: Operators that take exactly one operand.
UNARY_OPS = frozenset({GateOp.NOT, GateOp.BUF})

#: Operators that accept two or more operands.
NARY_OPS = frozenset(
    {GateOp.AND, GateOp.OR, GateOp.XOR, GateOp.XNOR, GateOp.NAND, GateOp.NOR}
)


class CircuitError(ValueError):
    """Raised on malformed circuit construction or evaluation requests."""


def validate_arity(op: GateOp, fanin_count: int) -> None:
    """Raise :class:`CircuitError` if ``fanin_count`` is invalid for ``op``."""
    if op in UNARY_OPS:
        if fanin_count != 1:
            raise CircuitError("%s gate requires exactly 1 fanin, got %d" % (op.name, fanin_count))
    elif op in NARY_OPS:
        if fanin_count < 1:
            raise CircuitError("%s gate requires at least 1 fanin, got %d" % (op.name, fanin_count))
    else:  # pragma: no cover - exhaustiveness guard
        raise CircuitError("unknown gate operator %r" % (op,))


def evaluate_gate(op: GateOp, values: Sequence[bool]) -> bool:
    """Evaluate a single gate on concrete boolean fanin values."""
    if op is GateOp.AND:
        return all(values)
    if op is GateOp.OR:
        return any(values)
    if op is GateOp.NAND:
        return not all(values)
    if op is GateOp.NOR:
        return not any(values)
    if op is GateOp.XOR:
        acc = False
        for v in values:
            acc ^= bool(v)
        return acc
    if op is GateOp.XNOR:
        acc = False
        for v in values:
            acc ^= bool(v)
        return not acc
    if op is GateOp.NOT:
        return not values[0]
    if op is GateOp.BUF:
        return bool(values[0])
    raise CircuitError("unknown gate operator %r" % (op,))  # pragma: no cover

"""Minimum-width binary codes for multiple-valued variables.

Section 2 of the paper encodes each multiple-valued variable with a binary
code of minimum width: the defect-count variable ``w`` (values
``0 .. M+1``) is encoded directly, while the defect-location variables
``v_l`` (values ``1 .. C``) are encoded as ``v_l - 1`` "since they have
values in the domain {1, ..., C}".  :class:`BinaryCode` captures exactly
this: a value set, an integer offset and the resulting codewords, most
significant bit first.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from .ops import CircuitError


def bits_needed(count: int) -> int:
    """Return the minimum number of bits able to distinguish ``count`` values."""
    if count < 1:
        raise CircuitError("a code needs at least one value, got %d" % count)
    if count == 1:
        return 1
    return (count - 1).bit_length()


class BinaryCode:
    """Minimum-width binary encoding of a contiguous integer domain.

    Parameters
    ----------
    values:
        The domain, a sequence of distinct integers (ordered as given).
    offset:
        The integer subtracted from a value before encoding it in binary
        (the paper encodes ``v_i - 1``).  Defaults to the minimum value so
        that codes always start at 0.
    """

    def __init__(self, values: Sequence[int], offset: int = None) -> None:
        values = [int(v) for v in values]
        if not values:
            raise CircuitError("a code needs at least one value")
        if len(set(values)) != len(values):
            raise CircuitError("code values must be distinct")
        if offset is None:
            offset = min(values)
        self._values: Tuple[int, ...] = tuple(values)
        self._offset = int(offset)
        shifted = [v - self._offset for v in values]
        if min(shifted) < 0:
            raise CircuitError("offset %d larger than the minimum value" % self._offset)
        self._width = bits_needed(max(shifted) + 1)
        self._codewords: Dict[int, Tuple[int, ...]] = {
            v: self._encode_int(v - self._offset) for v in values
        }
        self._decode: Dict[Tuple[int, ...], int] = {
            bits: v for v, bits in self._codewords.items()
        }

    def _encode_int(self, raw: int) -> Tuple[int, ...]:
        return tuple((raw >> (self._width - 1 - b)) & 1 for b in range(self._width))

    # ------------------------------------------------------------------ #
    @property
    def values(self) -> Tuple[int, ...]:
        """The encoded domain, in the order supplied at construction."""
        return self._values

    @property
    def width(self) -> int:
        """Number of bits of the code."""
        return self._width

    @property
    def offset(self) -> int:
        """The offset subtracted before encoding."""
        return self._offset

    def codeword(self, value: int) -> Tuple[int, ...]:
        """Return the codeword of ``value``, most significant bit first."""
        try:
            return self._codewords[value]
        except KeyError:
            raise CircuitError("value %r is not in the coded domain" % (value,)) from None

    def bit(self, value: int, position: int) -> int:
        """Return bit ``position`` (0 = most significant) of ``value``'s codeword."""
        word = self.codeword(value)
        if not 0 <= position < self._width:
            raise CircuitError("bit position %d out of range" % position)
        return word[position]

    def decode(self, bits: Sequence[int]) -> int:
        """Return the domain value encoded by ``bits`` (MSB first).

        Raises :class:`CircuitError` for codewords that do not encode any
        domain value (the "don't care" codewords the conversion procedure of
        the paper has to skip).
        """
        key = tuple(int(b) & 1 for b in bits)
        if len(key) != self._width:
            raise CircuitError("expected %d bits, got %d" % (self._width, len(key)))
        if key not in self._decode:
            raise CircuitError("codeword %r does not encode a domain value" % (key,))
        return self._decode[key]

    def encodes(self, bits: Sequence[int]) -> bool:
        """Return whether ``bits`` is the codeword of some domain value."""
        key = tuple(int(b) & 1 for b in bits)
        return key in self._decode

    def unused_codewords(self) -> List[Tuple[int, ...]]:
        """Return the codewords of the code space that encode no domain value."""
        out = []
        for raw in range(1 << self._width):
            bits = self._encode_int(raw)
            if bits not in self._decode:
                out.append(bits)
        return out

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BinaryCode(values=%d, width=%d, offset=%d)" % (
            len(self._values),
            self._width,
            self._offset,
        )

"""Gate-level fault trees, multiple-valued variables and binary encodings.

The subpackage provides:

* :class:`~repro.faulttree.circuit.Circuit` — the plain gate-level netlist
  representation (what the paper calls "a gate-level description of the
  function");
* :class:`~repro.faulttree.builder.FaultTreeBuilder` — an expression DSL for
  writing structure functions, including k-out-of-n helpers;
* :class:`~repro.faulttree.encoding.BinaryCode` — minimum-width binary codes
  for multiple-valued variables;
* :class:`~repro.faulttree.multivalued.MVCircuit` — boolean functions of
  multiple-valued variables built from "filter" gates (the form of the
  generalized fault tree ``G`` of Fig. 1).
"""

from .builder import Expr, FaultTreeBuilder
from .circuit import Circuit, Node
from .encoding import BinaryCode, bits_needed
from .multivalued import FilterGate, FilterKind, MVCircuit, MultiValuedVariable
from .ops import CircuitError, GateOp, evaluate_gate
from .parser import FaultTreeParseError, dump, dumps, load, loads

__all__ = [
    "Circuit",
    "Node",
    "Expr",
    "FaultTreeBuilder",
    "FaultTreeParseError",
    "load",
    "loads",
    "dump",
    "dumps",
    "BinaryCode",
    "bits_needed",
    "MVCircuit",
    "MultiValuedVariable",
    "FilterGate",
    "FilterKind",
    "CircuitError",
    "GateOp",
    "evaluate_gate",
]

"""A small textual format for fault trees and component defect probabilities.

The format is line-oriented and modeled on the classic Galileo / OpenFTA
style so that structure functions can live next to the design instead of in
Python code::

    # MS-like toy system
    toplevel SYSTEM;
    SYSTEM   and MASTERS CLUSTER1;
    MASTERS  and IPM_1 IPM_2;
    CLUSTER1 2of3 IPS_1 IPS_2 IPS_3;
    IPM_1 prob 0.1;
    IPM_2 prob 0.1;
    IPS_1 prob 0.05;
    IPS_2 prob 0.05;
    IPS_3 prob 0.05;

Rules
-----
* every statement ends with ``;``; ``#`` starts a comment;
* ``toplevel NAME;`` declares the top event (exactly once);
* ``NAME <op> CHILD...;`` declares a gate; ``op`` is ``and``, ``or``,
  ``not``, ``xor`` or ``<k>of<n>`` (at-least-k);
* ``NAME prob P;`` declares a basic event (a component) with its per-defect
  lethal-hit probability ``P_i``;
* the top event is the *failure* of the system, exactly as in the paper
  (gate inputs are failures, so an ``and`` gate is a parallel/redundant
  structure and an ``or`` gate a series structure).

:func:`loads` returns ``(circuit, component_model)``; :func:`dumps` writes a
circuit and model back in the same format (gates are emitted in topological
order, so a dump/parse round trip preserves the function).
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..distributions import ComponentDefectModel
from .builder import Expr, FaultTreeBuilder
from .circuit import Circuit
from .ops import CircuitError, GateOp

_KOFN_PATTERN = re.compile(r"^(\d+)of(\d+)$")


class FaultTreeParseError(ValueError):
    """Raised on malformed fault-tree text."""

    def __init__(self, message: str, line: Optional[int] = None) -> None:
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)
        self.line = line


def _statements(text: str):
    """Yield ``(line_number, tokens)`` for every ``;``-terminated statement."""
    buffer: List[str] = []
    start_line = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        if start_line is None:
            start_line = line_number
        buffer.append(line)
        while ";" in " ".join(buffer):
            joined = " ".join(buffer)
            statement, _, rest = joined.partition(";")
            tokens = statement.split()
            if tokens:
                yield start_line, tokens
            buffer = [rest.strip()] if rest.strip() else []
            start_line = line_number if buffer else None
    if buffer and " ".join(buffer).strip():
        raise FaultTreeParseError("unterminated statement: %r" % " ".join(buffer))


def loads(text: str, *, name: str = "fault-tree") -> Tuple[Circuit, ComponentDefectModel]:
    """Parse fault-tree text into ``(circuit, component_model)``."""
    toplevel: Optional[str] = None
    gates: Dict[str, Tuple[str, List[str], int]] = {}
    probabilities: Dict[str, float] = {}
    declaration_order: List[str] = []

    for line, tokens in _statements(text):
        head = tokens[0]
        if head == "toplevel":
            if len(tokens) != 2:
                raise FaultTreeParseError("toplevel takes exactly one name", line)
            if toplevel is not None:
                raise FaultTreeParseError("toplevel declared twice", line)
            toplevel = tokens[1]
            continue
        if len(tokens) >= 3 and tokens[1] == "prob":
            if len(tokens) != 3:
                raise FaultTreeParseError("prob takes exactly one value", line)
            try:
                value = float(tokens[2])
            except ValueError:
                raise FaultTreeParseError("invalid probability %r" % tokens[2], line)
            if head in probabilities or head in gates:
                raise FaultTreeParseError("duplicate declaration of %r" % head, line)
            probabilities[head] = value
            declaration_order.append(head)
            continue
        if len(tokens) < 3:
            raise FaultTreeParseError("gate %r needs an operator and children" % head, line)
        if head in gates or head in probabilities:
            raise FaultTreeParseError("duplicate declaration of %r" % head, line)
        gates[head] = (tokens[1].lower(), tokens[2:], line)
        declaration_order.append(head)

    if toplevel is None:
        raise FaultTreeParseError("missing 'toplevel' declaration")
    if not probabilities:
        raise FaultTreeParseError("no basic events ('NAME prob P;') declared")
    if toplevel not in gates and toplevel not in probabilities:
        raise FaultTreeParseError("toplevel %r is never declared" % toplevel)

    builder = FaultTreeBuilder(name)
    cache: Dict[str, Expr] = {}
    building: List[str] = []

    def resolve(node_name: str, line: Optional[int] = None) -> Expr:
        if node_name in cache:
            return cache[node_name]
        if node_name in building:
            raise FaultTreeParseError(
                "cycle through %r" % " -> ".join(building + [node_name]), line
            )
        if node_name in probabilities:
            expr = builder.failed(node_name)
        elif node_name in gates:
            operator, children, gate_line = gates[node_name]
            building.append(node_name)
            child_exprs = [resolve(child, gate_line) for child in children]
            building.pop()
            expr = _apply_operator(builder, operator, child_exprs, gate_line)
        else:
            raise FaultTreeParseError("undeclared node %r" % node_name, line)
        cache[node_name] = expr
        return expr

    builder.set_top(resolve(toplevel))
    circuit = builder.build()
    circuit.name = name

    unused_gates = [g for g in gates if g not in cache]
    if unused_gates:
        # gates that are declared but unreachable from the top are almost
        # always an authoring error
        raise FaultTreeParseError(
            "gates not reachable from the toplevel: %s" % ", ".join(sorted(unused_gates))
        )

    ordered_probabilities = {
        component: probabilities[component]
        for component in declaration_order
        if component in probabilities
    }
    model = ComponentDefectModel(ordered_probabilities)
    return circuit, model


def _apply_operator(
    builder: FaultTreeBuilder, operator: str, children: List[Expr], line: int
) -> Expr:
    if operator == "and":
        return builder.and_(*children)
    if operator == "or":
        return builder.or_(*children)
    if operator == "xor":
        return builder.xor_(*children)
    if operator == "not":
        if len(children) != 1:
            raise FaultTreeParseError("'not' takes exactly one child", line)
        return builder.not_(children[0])
    match = _KOFN_PATTERN.match(operator)
    if match:
        k, n = int(match.group(1)), int(match.group(2))
        if n != len(children):
            raise FaultTreeParseError(
                "%s gate declares %d children but has %d" % (operator, n, len(children)),
                line,
            )
        return builder.at_least(k, children)
    raise FaultTreeParseError("unknown operator %r" % operator, line)


def load(path: str, *, name: Optional[str] = None) -> Tuple[Circuit, ComponentDefectModel]:
    """Parse a fault-tree file; the file stem becomes the circuit name."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if name is None:
        import os

        name = os.path.splitext(os.path.basename(path))[0]
    return loads(text, name=name)


def dumps(circuit: Circuit, model: ComponentDefectModel) -> str:
    """Serialize a fault tree and its component probabilities to text.

    Gates are emitted as ``g<N>`` in topological order; the special gate
    operators used internally (``nand``/``nor``/``xnor``/``buf``) are
    expressed through ``not`` so that the output stays within the documented
    grammar.
    """
    output = circuit.primary_output
    cone = sorted(circuit.cone(output))
    lines: List[str] = []
    node_names: Dict[int, str] = {}
    gate_counter = 0
    pending: List[str] = []

    for index in cone:
        node = circuit.node(index)
        if node.is_input:
            node_names[index] = node.name
            continue
        if node.is_const:
            raise CircuitError("constant nodes cannot be serialized in this format")
        gate_counter += 1
        gate_name = "g%d" % gate_counter
        node_names[index] = gate_name
        children = [node_names[f] for f in node.fanins]
        op = node.op
        if op in (GateOp.AND, GateOp.OR, GateOp.XOR):
            pending.append("%s %s %s;" % (gate_name, op.value, " ".join(children)))
        elif op is GateOp.NOT:
            pending.append("%s not %s;" % (gate_name, children[0]))
        elif op is GateOp.BUF:
            pending.append("%s or %s %s;" % (gate_name, children[0], children[0]))
        elif op in (GateOp.NAND, GateOp.NOR, GateOp.XNOR):
            inner = {"nand": "and", "nor": "or", "xnor": "xor"}[op.value]
            gate_counter += 1
            inner_name = "g%d" % gate_counter
            pending.append("%s %s %s;" % (inner_name, inner, " ".join(children)))
            pending.append("%s not %s;" % (gate_name, inner_name))
        else:  # pragma: no cover - exhaustiveness guard
            raise CircuitError("cannot serialize operator %r" % (op,))

    lines.append("# fault tree %s" % circuit.name)
    lines.append("toplevel %s;" % node_names[output])
    lines.extend(pending)
    for component in model.names:
        lines.append("%s prob %.12g;" % (component, model.raw_probability(component)))
    return "\n".join(lines) + "\n"


def dump(circuit: Circuit, model: ComponentDefectModel, path: str) -> None:
    """Serialize to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(circuit, model))

"""Expression-style construction of gate-level fault trees.

:class:`FaultTreeBuilder` wraps a :class:`repro.faulttree.circuit.Circuit`
with a small expression DSL so that structure functions can be written the
way reliability engineers think about them::

    ft = FaultTreeBuilder("duplex")
    a, b = ft.failed("A"), ft.failed("B")
    ft.set_top(ft.and_(a, b))          # system fails when both modules fail
    circuit = ft.build()

Variables created with :meth:`FaultTreeBuilder.failed` are the ``x_i`` of the
paper (1 = component failed); :meth:`FaultTreeBuilder.set_top` declares the
fault-tree top event (1 = system not functioning).  Helpers are provided for
the patterns fault-tolerant SoCs need constantly: k-out-of-n survival /
failure, voting and series/parallel composition.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .circuit import Circuit
from .ops import CircuitError, GateOp


class Expr:
    """A handle to a node of the builder's underlying circuit."""

    __slots__ = ("builder", "index")

    def __init__(self, builder: "FaultTreeBuilder", index: int) -> None:
        self.builder = builder
        self.index = index

    # Operator sugar -- the paper's fault trees are small enough that the
    # readability gain is worth the indirection.
    def __and__(self, other: "Expr") -> "Expr":
        return self.builder.and_(self, other)

    def __or__(self, other: "Expr") -> "Expr":
        return self.builder.or_(self, other)

    def __invert__(self) -> "Expr":
        return self.builder.not_(self)

    def __xor__(self, other: "Expr") -> "Expr":
        return self.builder.xor_(self, other)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "Expr(node=%d)" % self.index


class FaultTreeBuilder:
    """Incrementally builds the gate-level description of a fault tree."""

    def __init__(self, name: str = "fault-tree") -> None:
        self._circuit = Circuit(name)
        self._top: Optional[int] = None
        self._component_order: List[str] = []

    # ------------------------------------------------------------------ #
    # Leaves
    # ------------------------------------------------------------------ #

    def failed(self, component: str) -> Expr:
        """Return the basic event "component ``component`` is failed" (``x_i``)."""
        known = component in self._circuit.input_names
        index = self._circuit.add_input(component)
        if not known:
            self._component_order.append(component)
        return Expr(self, index)

    def working(self, component: str) -> Expr:
        """Return the complement event "component ``component`` is working"."""
        return self.not_(self.failed(component))

    def const(self, value: bool) -> Expr:
        """Return a constant expression."""
        return Expr(self, self._circuit.add_const(value))

    # ------------------------------------------------------------------ #
    # Gates
    # ------------------------------------------------------------------ #

    def _gate(self, op: GateOp, operands: Sequence[Expr]) -> Expr:
        for operand in operands:
            if operand.builder is not self:
                raise CircuitError("expression belongs to a different builder")
        if len(operands) == 1 and op in (GateOp.AND, GateOp.OR):
            return operands[0]
        index = self._circuit.add_gate(op, [o.index for o in operands])
        return Expr(self, index)

    def and_(self, *operands: Expr) -> Expr:
        """Return the conjunction of the operands (accepts 1..n operands)."""
        return self._gate(GateOp.AND, self._flatten(operands))

    def or_(self, *operands: Expr) -> Expr:
        """Return the disjunction of the operands (accepts 1..n operands)."""
        return self._gate(GateOp.OR, self._flatten(operands))

    def not_(self, operand: Expr) -> Expr:
        """Return the complement of the operand."""
        return self._gate(GateOp.NOT, [operand])

    def xor_(self, *operands: Expr) -> Expr:
        """Return the exclusive-or of the operands."""
        return self._gate(GateOp.XOR, self._flatten(operands))

    @staticmethod
    def _flatten(operands: Sequence) -> List[Expr]:
        flat: List[Expr] = []
        for operand in operands:
            if isinstance(operand, Expr):
                flat.append(operand)
            else:
                flat.extend(operand)
        if not flat:
            raise CircuitError("gate requires at least one operand")
        return flat

    # ------------------------------------------------------------------ #
    # Reliability-structure helpers
    # ------------------------------------------------------------------ #

    def at_least(self, k: int, operands: Sequence[Expr]) -> Expr:
        """Return the event "at least ``k`` of the operands are true".

        The expansion is the standard recursive two-way split
        ``atleast(k, x::rest) = x & atleast(k-1, rest)  |  atleast(k, rest)``
        with memoization on (position, k), which produces a DAG of size
        ``O(k * n)`` rather than the exponential sum-of-products form.
        """
        operands = list(operands)
        n = len(operands)
        if k <= 0:
            return self.const(True)
        if k > n:
            return self.const(False)
        memo: Dict[Tuple[int, int], Expr] = {}

        def build(pos: int, need: int) -> Expr:
            if need <= 0:
                return self.const(True)
            remaining = n - pos
            if need > remaining:
                return self.const(False)
            if need == remaining:
                return self.and_(*operands[pos:])
            if need == 1:
                return self.or_(*operands[pos:])
            key = (pos, need)
            if key in memo:
                return memo[key]
            with_this = self.and_(operands[pos], build(pos + 1, need - 1))
            without_this = build(pos + 1, need)
            result = self.or_(with_this, without_this)
            memo[key] = result
            return result

        return build(0, k)

    def at_most(self, k: int, operands: Sequence[Expr]) -> Expr:
        """Return the event "at most ``k`` of the operands are true"."""
        return self.not_(self.at_least(k + 1, list(operands)))

    def exactly(self, k: int, operands: Sequence[Expr]) -> Expr:
        """Return the event "exactly ``k`` of the operands are true"."""
        operands = list(operands)
        return self.and_(self.at_least(k, operands), self.at_most(k, operands))

    def k_out_of_n_failed(self, k: int, components: Sequence[str]) -> Expr:
        """Return the event "at least ``k`` of the named components are failed"."""
        return self.at_least(k, [self.failed(c) for c in components])

    def series_fails(self, components: Sequence[str]) -> Expr:
        """Series structure: fails when *any* of the named components fails."""
        return self.or_(*[self.failed(c) for c in components])

    def parallel_fails(self, components: Sequence[str]) -> Expr:
        """Parallel structure: fails only when *all* named components fail."""
        return self.and_(*[self.failed(c) for c in components])

    # ------------------------------------------------------------------ #
    # Output management
    # ------------------------------------------------------------------ #

    def set_top(self, expr: Expr) -> None:
        """Declare ``expr`` as the fault-tree top event (1 = system failed)."""
        if expr.builder is not self:
            raise CircuitError("expression belongs to a different builder")
        self._top = expr.index

    def set_top_from_functioning(self, expr: Expr) -> None:
        """Declare the top event as the complement of a "system works" expression."""
        self.set_top(self.not_(expr))

    @property
    def component_names(self) -> Tuple[str, ...]:
        """Component names in the order they were introduced."""
        return tuple(self._component_order)

    def build(self) -> Circuit:
        """Finalize and return the circuit (single output named ``"F"``)."""
        if self._top is None:
            raise CircuitError("fault tree has no top event; call set_top() first")
        self._circuit.set_output(self._top, "F")
        return self._circuit

    @property
    def circuit(self) -> Circuit:
        """The underlying circuit (also available before :meth:`build`)."""
        return self._circuit

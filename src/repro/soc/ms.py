"""The MSn benchmark: a master/slave bus-based fault-tolerant SoC (Fig. 4).

The system contains one cluster of two "master" IP cores (IPM) and ``n``
clusters of two "slave" IP cores (IPS).  Every IPM and every IPS is attached
to two buses (A and B) through its own communication modules (CM for
masters, CS for slaves); the buses themselves are assumed immune to
manufacturing defects.  The system is operational if some unfailed IPM can
communicate *directly* (one bus, two communication modules) with at least
one unfailed IPS of every cluster.

Component inventory (matches Table 1 of the paper: ``C = 6n + 6``):

========================  =============================
``IPM_j``                 master cores, ``j = 1, 2``
``CM_j_b``                master communication modules, ``b = A, B``
``IPS_i_k``               slave cores, cluster ``i = 1..n``, ``k = 1, 2``
``CS_i_k_b``              slave communication modules
========================  =============================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..distributions import (
    ComponentDefectModel,
    DefectCountDistribution,
    NegativeBinomialDefectDistribution,
)
from ..core.problem import YieldProblem
from ..faulttree.builder import FaultTreeBuilder
from ..faulttree.circuit import Circuit

#: Bus labels of the MSn architecture.
BUSES = ("A", "B")

#: Default ratio ``P_IPS / P_IPM`` (the exact value in the paper is unreadable).
DEFAULT_IPS_TO_IPM = 1.0

#: Default ratio ``P_C / P_IPM`` for the communication modules.
DEFAULT_COMM_TO_IPM = 0.1

#: Default per-defect lethality ``P_L = sum_i P_i``.
DEFAULT_LETHALITY = 0.5

#: Default negative-binomial clustering parameter ``alpha``.
DEFAULT_CLUSTERING = 4.0


def ms_component_classes(n: int) -> Dict[str, List[str]]:
    """Return the component names of MSn grouped by class (IPM, CM, IPS, CS)."""
    if n < 1:
        raise ValueError("MSn requires n >= 1 slave clusters, got %d" % n)
    ipm = ["IPM_%d" % j for j in (1, 2)]
    cm = ["CM_%d_%s" % (j, b) for j in (1, 2) for b in BUSES]
    ips = ["IPS_%d_%d" % (i, k) for i in range(1, n + 1) for k in (1, 2)]
    cs = [
        "CS_%d_%d_%s" % (i, k, b)
        for i in range(1, n + 1)
        for k in (1, 2)
        for b in BUSES
    ]
    return {"IPM": ipm, "CM": cm, "IPS": ips, "CS": cs}


def ms_component_names(n: int) -> List[str]:
    """Return all component names of MSn (``6n + 6`` of them)."""
    classes = ms_component_classes(n)
    return classes["IPM"] + classes["CM"] + classes["IPS"] + classes["CS"]


def ms_fault_tree(n: int) -> Circuit:
    """Return the gate-level fault tree of MSn.

    The system is functioning when there exists an unfailed master ``IPM_j``
    such that, for every cluster ``i``, there exist a slave ``IPS_i_k`` and a
    bus ``b`` with ``IPS_i_k``, ``CS_i_k_b`` and ``CM_j_b`` all unfailed.
    """
    ft = FaultTreeBuilder("MS%d" % n)
    master_terms = []
    for j in (1, 2):
        cluster_terms = []
        for i in range(1, n + 1):
            slave_paths = []
            for k in (1, 2):
                for b in BUSES:
                    slave_paths.append(
                        ft.and_(
                            ft.working("IPS_%d_%d" % (i, k)),
                            ft.working("CS_%d_%d_%s" % (i, k, b)),
                            ft.working("CM_%d_%s" % (j, b)),
                        )
                    )
            cluster_terms.append(ft.or_(*slave_paths))
        master_terms.append(ft.and_(ft.working("IPM_%d" % j), ft.and_(*cluster_terms)))
    functioning = ft.or_(*master_terms)
    ft.set_top_from_functioning(functioning)
    return ft.build()


def ms_component_model(
    n: int,
    *,
    lethality: float = DEFAULT_LETHALITY,
    ips_to_ipm: float = DEFAULT_IPS_TO_IPM,
    comm_to_ipm: float = DEFAULT_COMM_TO_IPM,
) -> ComponentDefectModel:
    """Return the ``P_i`` model of MSn from the class ratios of Section 3."""
    classes = ms_component_classes(n)
    weights: Dict[str, float] = {}
    for name in classes["IPM"]:
        weights[name] = 1.0
    for name in classes["IPS"]:
        weights[name] = ips_to_ipm
    for name in classes["CM"] + classes["CS"]:
        weights[name] = comm_to_ipm
    # keep the declared component order (IPM, CM, IPS, CS)
    ordered = {name: weights[name] for name in ms_component_names(n)}
    return ComponentDefectModel.from_relative_weights(ordered, lethality)


def ms_problem(
    n: int,
    *,
    mean_defects: float = 2.0,
    clustering: float = DEFAULT_CLUSTERING,
    lethality: float = DEFAULT_LETHALITY,
    ips_to_ipm: float = DEFAULT_IPS_TO_IPM,
    comm_to_ipm: float = DEFAULT_COMM_TO_IPM,
    defect_distribution: Optional[DefectCountDistribution] = None,
) -> YieldProblem:
    """Return the full :class:`YieldProblem` for MSn.

    With the defaults (``mean_defects = 2``, ``lethality = 0.5``) the expected
    number of *lethal* defects is 1, the paper's "moderate" operating point;
    ``mean_defects = 4`` gives the "large" point (``lambda' = 2``).
    """
    circuit = ms_fault_tree(n)
    model = ms_component_model(
        n, lethality=lethality, ips_to_ipm=ips_to_ipm, comm_to_ipm=comm_to_ipm
    )
    if defect_distribution is None:
        defect_distribution = NegativeBinomialDefectDistribution(
            mean=mean_defects, clustering=clustering
        )
    return YieldProblem(circuit, model, defect_distribution, name="MS%d" % n)


def ms_architecture_summary(n: int) -> str:
    """Return a short textual description of the MSn architecture (Fig. 4)."""
    classes = ms_component_classes(n)
    lines = [
        "MS%d fault-tolerant SoC" % n,
        "  masters : %s" % ", ".join(classes["IPM"]),
        "  buses   : %s (defect free)" % ", ".join(BUSES),
        "  clusters: %d slave clusters of 2 IPS each" % n,
        "  comm    : every IP core reaches each bus through its own module",
        "  components: %d" % len(ms_component_names(n)),
    ]
    return "\n".join(lines)

"""Benchmark system-on-chip generators (Section 3 of the paper).

* :mod:`repro.soc.ms` — the MSn master/slave bus-based SoC (Fig. 4);
* :mod:`repro.soc.esen` — the ESEN n x m multistage-network SoC (Fig. 5);
* :data:`BENCHMARKS` / :func:`benchmark_problem` — a registry keyed by the
  names used in the paper's tables (``"MS2" .. "MS10"``,
  ``"ESEN4x1" .. "ESEN8x4"``).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..core.problem import YieldProblem
from .esen import (
    enumerate_paths,
    esen_architecture_summary,
    esen_component_classes,
    esen_component_model,
    esen_component_names,
    esen_fault_tree,
    esen_problem,
    num_stages,
    perfect_shuffle,
)
from .ms import (
    ms_architecture_summary,
    ms_component_classes,
    ms_component_model,
    ms_component_names,
    ms_fault_tree,
    ms_problem,
)

#: Benchmark factories keyed by the names used in the paper's tables.  Every
#: factory accepts the keyword arguments of the underlying ``*_problem``
#: function (``mean_defects``, ``clustering``, ``lethality``...).
BENCHMARKS: Dict[str, Callable[..., YieldProblem]] = {
    "MS2": lambda **kw: ms_problem(2, **kw),
    "MS4": lambda **kw: ms_problem(4, **kw),
    "MS6": lambda **kw: ms_problem(6, **kw),
    "MS8": lambda **kw: ms_problem(8, **kw),
    "MS10": lambda **kw: ms_problem(10, **kw),
    "ESEN4x1": lambda **kw: esen_problem(4, 1, **kw),
    "ESEN4x2": lambda **kw: esen_problem(4, 2, **kw),
    "ESEN4x4": lambda **kw: esen_problem(4, 4, **kw),
    "ESEN8x1": lambda **kw: esen_problem(8, 1, **kw),
    "ESEN8x2": lambda **kw: esen_problem(8, 2, **kw),
    "ESEN8x4": lambda **kw: esen_problem(8, 4, **kw),
}

#: The benchmark names in the order of Table 1.
BENCHMARK_NAMES: List[str] = list(BENCHMARKS.keys())


def benchmark_problem(name: str, **kwargs) -> YieldProblem:
    """Instantiate one of the paper's benchmarks by name."""
    try:
        factory = BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            "unknown benchmark %r (known: %s)" % (name, ", ".join(BENCHMARK_NAMES))
        ) from None
    return factory(**kwargs)


__all__ = [
    "BENCHMARKS",
    "BENCHMARK_NAMES",
    "benchmark_problem",
    "ms_problem",
    "ms_fault_tree",
    "ms_component_model",
    "ms_component_names",
    "ms_component_classes",
    "ms_architecture_summary",
    "esen_problem",
    "esen_fault_tree",
    "esen_component_model",
    "esen_component_names",
    "esen_component_classes",
    "esen_architecture_summary",
    "enumerate_paths",
    "perfect_shuffle",
    "num_stages",
]

"""The ESEN n x m benchmark: IP cores behind an extra-stage shuffle-exchange
network (Fig. 5).

Component inventory
-------------------

The paper's description of this benchmark lost its numeric parameters to the
scanning process; the reconstruction below reproduces the component counts of
Table 1 exactly (14 / 26 / 34 / 32 / 56 / 72 for ESEN4x1 .. ESEN8x4):

* an extra-stage shuffle-exchange network (SEN+) with ``n`` inputs, i.e.
  ``log2(n) + 1`` stages of ``n / 2`` 2x2 switching elements (SE), in which
  every SE of the first and of the last stage has a redundant spare;
* ``n * m / 2`` IPA cores on the input side and ``n * m / 2`` IPB cores on
  the output side;
* for ``m >= 2``, two redundant concentrators per network input (``2 n``
  concentrators); for ``m = 1`` the IPAs drive their input ports directly.

With ``m = 1`` only the first ``n / 2`` input and output ports carry cores;
with ``m >= 2`` every port carries ``m / 2`` cores.

Operational condition (interpretation, see DESIGN.md)
------------------------------------------------------

The sentence of the paper that fixes how many IPAs/IPBs must survive is
unreadable, so the generator exposes the thresholds:

* every *used* input port must be *served*: for ``m >= 2`` at least one of
  its two concentrators is unfailed (for ``m = 1`` ports are always served);
* the network must provide full access between used input and output ports:
  for every such pair at least one of the two SEN+ paths is made of unfailed
  switch positions (a first/last-stage position is unfailed when the primary
  or its spare is unfailed);
* at least ``required_ipa`` IPA cores must be unfailed and sit on a served
  port, and at least ``required_ipb`` IPB cores must be unfailed.  The
  defaults tolerate the loss of one core on each side
  (``n*m/2 - 1``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..distributions import (
    ComponentDefectModel,
    DefectCountDistribution,
    NegativeBinomialDefectDistribution,
)
from ..core.problem import YieldProblem
from ..faulttree.builder import Expr, FaultTreeBuilder
from ..faulttree.circuit import Circuit

#: Default ratio ``P_IPB / P_IPA``.
DEFAULT_IPB_TO_IPA = 1.0

#: Default ratio ``P_SE / P_IPA``.
DEFAULT_SE_TO_IPA = 0.2

#: Default ratio ``P_C / P_IPA`` (concentrators).
DEFAULT_CONC_TO_IPA = 0.1

#: Default per-defect lethality ``P_L``.
DEFAULT_LETHALITY = 0.5

#: Default negative-binomial clustering parameter ``alpha``.
DEFAULT_CLUSTERING = 4.0


# --------------------------------------------------------------------------- #
# Network topology
# --------------------------------------------------------------------------- #


def _log2(n: int) -> int:
    if n < 2 or n & (n - 1):
        raise ValueError("ESEN requires a power-of-two number of inputs >= 2, got %d" % n)
    return n.bit_length() - 1


def perfect_shuffle(position: int, n: int) -> int:
    """Return the perfect-shuffle image of a line position (left bit rotation)."""
    bits = _log2(n)
    return ((position << 1) | (position >> (bits - 1))) & (n - 1)


def num_stages(n: int) -> int:
    """Number of switching stages of the SEN+ network (``log2(n) + 1``)."""
    return _log2(n) + 1


def enumerate_paths(n: int, source: int, destination: int) -> List[Tuple[Tuple[int, int], ...]]:
    """Enumerate the SE positions of every path from input ``source`` to output ``destination``.

    Every path is returned as a tuple of ``(stage, switch_index)`` pairs, one
    per stage.  A SEN+ network offers exactly two paths between any
    input/output pair.
    """
    stages = num_stages(n)
    paths: List[Tuple[Tuple[int, int], ...]] = []

    def explore(stage: int, line: int, visited: Tuple[Tuple[int, int], ...]) -> None:
        position = perfect_shuffle(line, n)
        switch = position // 2
        taken = visited + ((stage, switch),)
        for out_line in (2 * switch, 2 * switch + 1):
            if stage == stages - 1:
                if out_line == destination:
                    paths.append(taken)
            else:
                explore(stage + 1, out_line, taken)

    explore(0, source, ())
    return paths


# --------------------------------------------------------------------------- #
# Component naming
# --------------------------------------------------------------------------- #


def esen_component_classes(n: int, m: int) -> Dict[str, List[str]]:
    """Return the component names of ESEN n x m grouped by class."""
    stages = num_stages(n)
    if m < 1:
        raise ValueError("m must be >= 1, got %d" % m)
    if m > 1 and m % 2:
        raise ValueError("m must be 1 or an even number, got %d" % m)
    _log2(n)

    cores_per_side = n * m // 2
    ipa = ["IPA_%d" % g for g in range(cores_per_side)]
    ipb = ["IPB_%d" % g for g in range(cores_per_side)]

    se = [
        "SE_%d_%d" % (stage, switch)
        for stage in range(stages)
        for switch in range(n // 2)
    ]
    spares = [
        "SE_%d_%d_R" % (stage, switch)
        for stage in (0, stages - 1)
        for switch in range(n // 2)
    ]
    concentrators = (
        ["C_%d_%s" % (port, side) for port in range(n) for side in ("A", "B")]
        if m >= 2
        else []
    )
    return {"IPA": ipa, "IPB": ipb, "SE": se, "SE_SPARE": spares, "C": concentrators}


def esen_component_names(n: int, m: int) -> List[str]:
    """Return all component names of ESEN n x m (order: IPA, IPB, C, SE, spares)."""
    classes = esen_component_classes(n, m)
    return (
        classes["IPA"]
        + classes["IPB"]
        + classes["C"]
        + classes["SE"]
        + classes["SE_SPARE"]
    )


def used_ports(n: int, m: int) -> List[int]:
    """Return the network ports that carry IP cores (all for ``m >= 2``)."""
    if m == 1:
        return list(range(n // 2))
    return list(range(n))


def ipa_port(core_index: int, n: int, m: int) -> int:
    """Return the input port the given IPA core is attached to."""
    ports = used_ports(n, m)
    return ports[core_index % len(ports)]


def ipb_port(core_index: int, n: int, m: int) -> int:
    """Return the output port the given IPB core is attached to."""
    ports = used_ports(n, m)
    return ports[core_index % len(ports)]


# --------------------------------------------------------------------------- #
# Fault tree
# --------------------------------------------------------------------------- #


def esen_fault_tree(
    n: int,
    m: int,
    *,
    required_ipa: Optional[int] = None,
    required_ipb: Optional[int] = None,
) -> Circuit:
    """Return the gate-level fault tree of ESEN n x m.

    ``required_ipa`` / ``required_ipb`` default to ``n*m/2 - 1`` (tolerate the
    loss of one core on each side).
    """
    classes = esen_component_classes(n, m)
    cores_per_side = len(classes["IPA"])
    stages = num_stages(n)
    if required_ipa is None:
        required_ipa = max(1, cores_per_side - 1)
    if required_ipb is None:
        required_ipb = max(1, cores_per_side - 1)
    if not 1 <= required_ipa <= cores_per_side:
        raise ValueError("required_ipa must be in [1, %d]" % cores_per_side)
    if not 1 <= required_ipb <= cores_per_side:
        raise ValueError("required_ipb must be in [1, %d]" % cores_per_side)

    ft = FaultTreeBuilder("ESEN%dx%d" % (n, m))

    # switch position OK: first/last stage positions have a redundant spare
    def switch_ok(stage: int, switch: int) -> Expr:
        primary = ft.working("SE_%d_%d" % (stage, switch))
        if stage in (0, stages - 1):
            spare = ft.working("SE_%d_%d_R" % (stage, switch))
            return ft.or_(primary, spare)
        return primary

    switch_ok_cache: Dict[Tuple[int, int], Expr] = {}
    for stage in range(stages):
        for switch in range(n // 2):
            switch_ok_cache[(stage, switch)] = switch_ok(stage, switch)

    # input port served through its redundant concentrator pair
    def port_served(port: int) -> Expr:
        if m == 1:
            return ft.const(True)
        return ft.or_(ft.working("C_%d_A" % port), ft.working("C_%d_B" % port))

    served: Dict[int, Expr] = {port: port_served(port) for port in used_ports(n, m)}

    # full access between every used input port and every used output port
    access_terms: List[Expr] = []
    for source in used_ports(n, m):
        for destination in used_ports(n, m):
            path_terms = []
            for path in enumerate_paths(n, source, destination):
                path_terms.append(
                    ft.and_(*[switch_ok_cache[position] for position in path])
                )
            access_terms.append(ft.or_(*path_terms))
    full_access = ft.and_(*access_terms)

    # core liveness and quorum requirements
    ipa_live = [
        ft.and_(ft.working(name), served[ipa_port(index, n, m)])
        for index, name in enumerate(classes["IPA"])
    ]
    ipb_live = [ft.working(name) for name in classes["IPB"]]

    functioning = ft.and_(
        ft.at_least(required_ipa, ipa_live),
        ft.at_least(required_ipb, ipb_live),
        full_access,
    )
    ft.set_top_from_functioning(functioning)
    return ft.build()


# --------------------------------------------------------------------------- #
# Defect model and problem assembly
# --------------------------------------------------------------------------- #


def esen_component_model(
    n: int,
    m: int,
    *,
    lethality: float = DEFAULT_LETHALITY,
    ipb_to_ipa: float = DEFAULT_IPB_TO_IPA,
    se_to_ipa: float = DEFAULT_SE_TO_IPA,
    conc_to_ipa: float = DEFAULT_CONC_TO_IPA,
) -> ComponentDefectModel:
    """Return the ``P_i`` model of ESEN n x m from the class ratios of Section 3."""
    classes = esen_component_classes(n, m)
    weights: Dict[str, float] = {}
    for name in classes["IPA"]:
        weights[name] = 1.0
    for name in classes["IPB"]:
        weights[name] = ipb_to_ipa
    for name in classes["SE"] + classes["SE_SPARE"]:
        weights[name] = se_to_ipa
    for name in classes["C"]:
        weights[name] = conc_to_ipa
    ordered = {name: weights[name] for name in esen_component_names(n, m)}
    return ComponentDefectModel.from_relative_weights(ordered, lethality)


def esen_problem(
    n: int,
    m: int,
    *,
    mean_defects: float = 2.0,
    clustering: float = DEFAULT_CLUSTERING,
    lethality: float = DEFAULT_LETHALITY,
    ipb_to_ipa: float = DEFAULT_IPB_TO_IPA,
    se_to_ipa: float = DEFAULT_SE_TO_IPA,
    conc_to_ipa: float = DEFAULT_CONC_TO_IPA,
    required_ipa: Optional[int] = None,
    required_ipb: Optional[int] = None,
    defect_distribution: Optional[DefectCountDistribution] = None,
) -> YieldProblem:
    """Return the full :class:`YieldProblem` for ESEN n x m."""
    circuit = esen_fault_tree(n, m, required_ipa=required_ipa, required_ipb=required_ipb)
    model = esen_component_model(
        n,
        m,
        lethality=lethality,
        ipb_to_ipa=ipb_to_ipa,
        se_to_ipa=se_to_ipa,
        conc_to_ipa=conc_to_ipa,
    )
    if defect_distribution is None:
        defect_distribution = NegativeBinomialDefectDistribution(
            mean=mean_defects, clustering=clustering
        )
    return YieldProblem(circuit, model, defect_distribution, name="ESEN%dx%d" % (n, m))


def esen_architecture_summary(n: int, m: int) -> str:
    """Return a short textual description of the ESEN n x m architecture (Fig. 5)."""
    classes = esen_component_classes(n, m)
    return "\n".join(
        [
            "ESEN%dx%d fault-tolerant SoC" % (n, m),
            "  network : SEN+ with %d inputs, %d stages of %d switches"
            % (n, num_stages(n), n // 2),
            "  spares  : first/last stage switches duplicated (%d spares)"
            % len(classes["SE_SPARE"]),
            "  cores   : %d IPA + %d IPB" % (len(classes["IPA"]), len(classes["IPB"])),
            "  concentrators: %d" % len(classes["C"]),
            "  components: %d" % len(esen_component_names(n, m)),
        ]
    )

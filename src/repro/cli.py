"""Command-line interface.

``python -m repro <command>`` gives access to the library without writing
Python:

* ``evaluate FILE``     — yield of a fault tree in the textual format of
  :mod:`repro.faulttree.parser` under a negative-binomial defect model;
* ``benchmark NAME``    — run one of the paper's benchmarks end to end
  (optionally with a Monte-Carlo cross-check);
* ``sweep NAME``        — evaluate a defect-density sweep through the
  engine's batch service: one diagram build per truncation level, all defect
  models of a build evaluated in a single fused-kernel pass, optional
  ``--workers``/``--jobs`` fan-out with intra-group point sharding
  (``--shard-size``, zero-copy shared-memory dispatch unless
  ``--no-shared-memory``), a ``--cache-dir`` result cache and ``--stats``
  engine diagnostics;
* ``importance NAME``   — rank the components of a benchmark by yield
  sensitivity (analytic reverse-mode gradients over the linearized ROMDD,
  or ``--fd`` for the legacy central finite difference) and by hardening
  potential (immune-component perturbations, batched through the sweep
  service with optional ``--jobs`` fan-out);
* ``cache``             — inspect and manage the persistent structure store
  (``ls``/``info``/``warm``/``clear``): compiled decision-diagram
  structures serialized under ``--store-dir`` so later processes (and
  worker shards) warm-start from disk instead of rebuilding;
* ``serve``             — long-lived asyncio HTTP front end over one shared
  sweep service (:mod:`repro.server`): JSON sweep/importance endpoints with
  per-structure-key request coalescing, NDJSON streaming, bounded admission
  control (429 + ``Retry-After``), ``/healthz`` and a Prometheus ``/stats``,
  graceful drain on SIGTERM;
* ``worker``            — long-lived remote shard worker
  (:mod:`repro.engine.fabric`): resolves digest-addressed structures from
  a shared ``--store-dir`` and evaluates model spans posted by a parent
  sweep started with ``--remote-worker URL`` flags;
* ``trace FILE``        — summarize a Chrome trace-event file exported with
  ``sweep/importance --trace`` as an indented span tree;
* ``table {1,2,3,4}``   — regenerate one of the paper's tables on the small
  benchmark set;
* ``list``              — list the available benchmark names.

Every method command accepts ``--sift`` to improve the static variable
order by dynamic (group-preserving) sifting before the ROMDD conversion,
and ``--sift-converge`` to repeat sifting passes (plus a group window
permutation) until the diagram stops shrinking.

Every command prints a plain-text report to stdout and returns a non-zero
exit code on user errors (unknown benchmark, malformed file...).
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence

from . import __version__
from .analysis import format_table, table1, table2, table3, table4
from .core.method import evaluate_yield
from .core.montecarlo import estimate_yield_montecarlo
from .core.problem import YieldProblem
from .distributions import DistributionError, NegativeBinomialDefectDistribution
from .faulttree.parser import FaultTreeParseError, load
from .ordering import OrderingSpec
from .ordering.grouped import OrderingError
from .soc import BENCHMARK_NAMES, benchmark_problem


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser (exposed for the test-suite and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Combinatorial yield evaluation of fault-tolerant systems-on-chip "
        "(DSN 2003 reproduction).",
    )
    parser.add_argument("--version", action="version", version="repro %s" % __version__)
    subparsers = parser.add_subparsers(dest="command", required=True)

    evaluate = subparsers.add_parser(
        "evaluate", help="evaluate the yield of a fault-tree file"
    )
    evaluate.add_argument("file", help="fault-tree file (see repro.faulttree.parser)")
    _add_defect_options(evaluate)
    _add_method_options(evaluate)
    evaluate.add_argument(
        "--montecarlo",
        type=int,
        metavar="SAMPLES",
        default=0,
        help="also run a Monte-Carlo cross-check with this many samples",
    )

    bench = subparsers.add_parser("benchmark", help="run one of the paper's benchmarks")
    bench.add_argument("name", help="benchmark name, e.g. MS2 or ESEN4x1")
    _add_defect_options(bench, include_lethality=False)
    _add_method_options(bench)
    bench.add_argument(
        "--montecarlo",
        type=int,
        metavar="SAMPLES",
        default=0,
        help="also run a Monte-Carlo cross-check with this many samples",
    )

    sweep = subparsers.add_parser(
        "sweep", help="defect-density sweep through the engine's batch service"
    )
    sweep.add_argument("name", help="benchmark name, e.g. MS2 or ESEN4x1")
    sweep.add_argument(
        "--densities",
        type=float,
        nargs="+",
        metavar="MEAN",
        default=[0.5, 1.0, 1.5, 2.0, 2.5, 3.0],
        help="mean manufacturing defect counts to sweep (default 0.5..3.0)",
    )
    sweep.add_argument(
        "--clustering",
        type=float,
        default=4.0,
        help="negative-binomial clustering parameter alpha (default 4.0)",
    )
    _add_method_options(sweep)
    _add_kernel_option(sweep)
    sweep.add_argument(
        "--workers",
        "--jobs",
        dest="workers",
        type=int,
        default=0,
        metavar="N",
        help="evaluate structure groups (and shards of large groups) in N processes",
    )
    sweep.add_argument(
        "--shard-size",
        type=int,
        default=16,
        metavar="POINTS",
        help="minimum points per intra-group worker shard (default 16)",
    )
    sweep.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist sweep results under DIR and reuse them on later runs",
    )
    sweep.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist compiled structures under DIR: later processes (and "
        "worker shards) warm-start from disk instead of rebuilding",
    )
    sweep.add_argument(
        "--no-shared-memory",
        dest="shared_memory",
        action="store_false",
        help="disable zero-copy shared-memory shard dispatch (results are "
        "identical; shards fall back to pickled payloads)",
    )
    sweep.add_argument(
        "--max-retries",
        type=int,
        default=2,
        metavar="N",
        help="retry a failed worker shard up to N times (with exponential "
        "backoff) before the parent evaluates it itself (default 2)",
    )
    sweep.add_argument(
        "--shard-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="fixed per-shard worker deadline; the default scales one from "
        "the measured per-model latency",
    )
    _add_fabric_options(sweep)
    sweep.add_argument(
        "--no-degrade",
        dest="degrade",
        action="store_false",
        help="keep no shm -> pickled -> in-parent degradation state across "
        "shards (each faulty shard still falls back individually)",
    )
    sweep.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics (cache hits, linearization reuse, "
        "fused kernel passes, shared-memory bytes, fault/retry counters, "
        "phase times)",
    )
    _add_telemetry_options(sweep)

    importance = subparsers.add_parser(
        "importance",
        help="rank components by yield sensitivity and hardening potential",
    )
    importance.add_argument("name", help="benchmark name, e.g. MS2 or ESEN4x1")
    importance.add_argument(
        "--mean-defects",
        type=float,
        default=2.0,
        help="expected number of manufacturing defects (default 2.0)",
    )
    importance.add_argument(
        "--clustering",
        type=float,
        default=4.0,
        help="negative-binomial clustering parameter alpha (default 4.0)",
    )
    _add_method_options(importance)
    _add_kernel_option(importance)
    importance.add_argument(
        "--components",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict the ranking to these components (default: all)",
    )
    importance.add_argument(
        "--measure",
        choices=("sensitivity", "hardening", "both"),
        default="both",
        help="which importance measure(s) to report (default both)",
    )
    importance.add_argument(
        "--fd",
        action="store_true",
        help="use the legacy central finite-difference sensitivity route "
        "instead of analytic reverse-mode gradients",
    )
    importance.add_argument(
        "--relative-step",
        type=float,
        default=0.05,
        metavar="H",
        help="relative perturbation step of the --fd route, in (0, 1) "
        "(default 0.05)",
    )
    importance.add_argument(
        "--workers",
        "--jobs",
        dest="workers",
        type=int,
        default=0,
        metavar="N",
        help="evaluate perturbed structure groups in N processes",
    )
    importance.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist compiled structures under DIR and warm-start from disk",
    )
    importance.add_argument(
        "--stats",
        action="store_true",
        help="print engine statistics (gradient passes, batched passes, "
        "cache hits, phase times)",
    )
    _add_telemetry_options(importance)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and manage the persistent structure store",
    )
    cache_commands = cache.add_subparsers(dest="cache_command", required=True)

    cache_ls = cache_commands.add_parser("ls", help="list the stored structures")
    cache_ls.add_argument("store_dir", metavar="DIR", help="structure store directory")

    cache_info = cache_commands.add_parser(
        "info", help="print the metadata of one stored structure"
    )
    cache_info.add_argument("store_dir", metavar="DIR", help="structure store directory")
    cache_info.add_argument(
        "digest", help="entry digest (a unique prefix is enough, see `cache ls`)"
    )

    cache_warm = cache_commands.add_parser(
        "warm",
        help="compile a benchmark's structure into the store ahead of time",
    )
    cache_warm.add_argument("store_dir", metavar="DIR", help="structure store directory")
    cache_warm.add_argument("name", help="benchmark name, e.g. MS2 or ESEN4x1")
    cache_warm.add_argument(
        "--mean-defects",
        type=float,
        default=2.0,
        help="expected number of manufacturing defects (used to resolve M "
        "when --max-defects is not given; default 2.0)",
    )
    cache_warm.add_argument(
        "--clustering",
        type=float,
        default=4.0,
        help="negative-binomial clustering parameter alpha (default 4.0)",
    )
    _add_method_options(cache_warm)

    cache_clear = cache_commands.add_parser(
        "clear", help="remove stored structures"
    )
    cache_clear.add_argument("store_dir", metavar="DIR", help="structure store directory")
    cache_clear.add_argument(
        "digest",
        nargs="?",
        default=None,
        help="only remove entries matching this digest prefix (default: all)",
    )

    cache_verify = cache_commands.add_parser(
        "verify",
        help="deep-check every stored structure (checksums, shapes, restore)",
    )
    cache_verify.add_argument(
        "store_dir", metavar="DIR", help="structure store directory"
    )
    cache_verify.add_argument(
        "--repair",
        action="store_true",
        help="move corrupt entries into the store's quarantine/ directory "
        "(they are rebuilt on the next sweep that needs them)",
    )

    serve = subparsers.add_parser(
        "serve",
        help="serve sweep/importance queries over HTTP from one shared engine",
    )
    serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; 0.0.0.0 in containers)",
    )
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port to bind (default 8000)"
    )
    _add_method_options(serve)
    _add_kernel_option(serve)
    serve.add_argument(
        "--workers",
        "--jobs",
        dest="workers",
        type=int,
        default=0,
        metavar="N",
        help="evaluate structure groups (and shards of large groups) in N processes",
    )
    serve.add_argument(
        "--shard-size",
        type=int,
        default=16,
        metavar="POINTS",
        help="minimum points per intra-group worker shard (default 16)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist sweep results under DIR and reuse them across requests",
    )
    serve.add_argument(
        "--store-dir",
        default=None,
        metavar="DIR",
        help="persist compiled structures under DIR: restarts (and worker "
        "shards) warm-start from disk instead of rebuilding",
    )
    serve.add_argument(
        "--no-shared-memory",
        dest="shared_memory",
        action="store_false",
        help="disable zero-copy shared-memory shard dispatch",
    )
    _add_fabric_options(serve)
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        metavar="N",
        help="admit at most N concurrent sweep/importance requests; the "
        "next one gets 429 + Retry-After (default 64)",
    )
    serve.add_argument(
        "--http-threads",
        type=int,
        default=8,
        metavar="N",
        help="threads executing (blocking) engine calls for the event loop "
        "(default 8)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long a SIGTERM drain waits for in-flight requests "
        "(default 10)",
    )

    worker = subparsers.add_parser(
        "worker",
        help="serve remote shard evaluations over HTTP from a shared store",
    )
    worker.add_argument(
        "store_dir",
        metavar="DIR",
        help="structure store directory shared with the parent sweep",
    )
    worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; 0.0.0.0 in containers)",
    )
    worker.add_argument(
        "--port",
        type=int,
        default=8100,
        help="TCP port to bind; 0 picks an ephemeral port (default 8100)",
    )
    _add_kernel_option(worker)

    table = subparsers.add_parser("table", help="regenerate one of the paper's tables")
    table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    table.add_argument(
        "--benchmarks",
        nargs="+",
        default=None,
        metavar="NAME",
        help="benchmarks to include (default: the small set)",
    )
    table.add_argument("--max-defects", type=int, default=None, help="truncation override")

    trace = subparsers.add_parser(
        "trace",
        help="summarize a Chrome trace file exported with --trace as a span tree",
    )
    trace.add_argument("file", help="Chrome trace-event JSON file (from --trace)")
    trace.add_argument(
        "--min-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="hide spans shorter than MS milliseconds (default: show all)",
    )

    subparsers.add_parser("list", help="list the available benchmark names")
    return parser


def _add_fabric_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--remote-worker",
        dest="remote_workers",
        action="append",
        default=None,
        metavar="URL",
        help="dispatch shards of large groups to this `repro worker` "
        "(repeatable; requires --store-dir shared with the workers)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="probe remote workers' /healthz this often (default 1.0)",
    )


def _add_kernel_option(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel",
        choices=("auto", "python", "layered", "fused", "native"),
        default="auto",
        help="traversal backend for every evaluate/gradient pass: auto "
        "(default) picks the native compiled kernel when the library "
        "loads and the pass is large enough, else the fused numpy "
        "kernel; native pins the compiled backend (falls back to fused "
        "on hosts without a working C compiler)",
    )


def _add_telemetry_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="export a hierarchical span trace (including worker-process "
        "spans) as Chrome trace-event JSON to FILE; inspect with "
        "chrome://tracing, Perfetto, or `repro trace FILE`",
    )
    parser.add_argument(
        "--metrics",
        default=None,
        metavar="FILE",
        help="write the engine's metrics registry to FILE in Prometheus "
        "text exposition format",
    )


def _add_defect_options(parser: argparse.ArgumentParser, include_lethality: bool = True) -> None:
    parser.add_argument(
        "--mean-defects",
        type=float,
        default=2.0,
        help="expected number of manufacturing defects (default 2.0)",
    )
    parser.add_argument(
        "--clustering",
        type=float,
        default=4.0,
        help="negative-binomial clustering parameter alpha (default 4.0)",
    )
    if include_lethality:
        parser.add_argument(
            "--poisson",
            action="store_true",
            help="use a Poisson defect count instead of the negative binomial",
        )


def _add_method_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--epsilon",
        type=float,
        default=1e-4,
        help="guaranteed absolute error of the yield estimate (default 1e-4)",
    )
    parser.add_argument("--max-defects", type=int, default=None, help="truncation override")
    parser.add_argument(
        "--ordering",
        default="w",
        help="multiple-valued variable ordering: wv, wvr, vw, vrw, t, w, h (default w)",
    )
    parser.add_argument(
        "--bit-ordering",
        default="ml",
        help="bit-group ordering: ml, lm, t, w, h (default ml)",
    )
    parser.add_argument(
        "--sift",
        action="store_true",
        help="improve the static order by dynamic (group-preserving) sifting",
    )
    parser.add_argument(
        "--sift-converge",
        action="store_true",
        help="repeat sifting passes (with a group window permutation) until "
        "the diagram stops shrinking (implies --sift)",
    )


def _ordering_from(args) -> OrderingSpec:
    return OrderingSpec(
        args.ordering,
        args.bit_ordering,
        sift=args.sift,
        sift_converge=args.sift_converge,
    )


def _report_result(result, montecarlo_result=None) -> None:
    print(result.summary())
    print("  guaranteed interval : [%.6f, %.6f]" % (result.yield_estimate, result.yield_upper_bound))
    print("  truncation level M  : %d" % result.truncation)
    print("  coded ROBDD nodes   : %d" % result.coded_robdd_size)
    print("  ROMDD nodes         : %d" % result.romdd_size)
    print("  variable ordering   : %s / %s" % result.ordering)
    print("  time (s)            : %.2f" % result.timings.total)
    if montecarlo_result is not None:
        print("  Monte-Carlo check   : %s" % montecarlo_result.summary())


def _run_evaluate(args) -> int:
    try:
        circuit, model = load(args.file)
    except OSError as exc:
        print("error: cannot read %s: %s" % (args.file, exc), file=sys.stderr)
        return 2
    except FaultTreeParseError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    if args.poisson:
        from .distributions import PoissonDefectDistribution

        distribution = PoissonDefectDistribution(args.mean_defects)
    else:
        distribution = NegativeBinomialDefectDistribution(args.mean_defects, args.clustering)
    try:
        problem = YieldProblem(circuit, model, distribution)
        result = evaluate_yield(
            problem,
            epsilon=args.epsilon,
            max_defects=args.max_defects,
            ordering=_ordering_from(args),
        )
    except (DistributionError, OrderingError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    montecarlo_result = None
    if args.montecarlo:
        montecarlo_result = estimate_yield_montecarlo(problem, args.montecarlo, seed=0)
    _report_result(result, montecarlo_result)
    return 0


def _run_benchmark(args) -> int:
    try:
        problem = benchmark_problem(
            args.name, mean_defects=args.mean_defects, clustering=args.clustering
        )
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    try:
        result = evaluate_yield(
            problem,
            epsilon=args.epsilon,
            max_defects=args.max_defects,
            ordering=_ordering_from(args),
        )
    except (OrderingError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    montecarlo_result = None
    if args.montecarlo:
        montecarlo_result = estimate_yield_montecarlo(problem, args.montecarlo, seed=0)
    _report_result(result, montecarlo_result)
    return 0


def _run_sweep(args) -> int:
    import time

    from .engine.service import SweepService
    from .obs import trace as obs_trace

    try:
        probe = benchmark_problem(
            args.name, mean_defects=args.densities[0], clustering=args.clustering
        )
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    except (DistributionError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    tracer = obs_trace.start() if args.trace else None
    try:
        service = SweepService(
            ordering=_ordering_from(args),
            epsilon=args.epsilon,
            workers=args.workers,
            shard_size=args.shard_size,
            kernel=args.kernel,
            cache_dir=args.cache_dir,
            store_dir=args.store_dir,
            use_shared_memory=args.shared_memory,
            max_retries=args.max_retries,
            shard_timeout=args.shard_timeout,
            degrade=args.degrade,
            remote_workers=args.remote_workers,
            heartbeat_interval=args.heartbeat_interval,
        )
        started = time.perf_counter()
        with obs_trace.span(
            "cli.sweep", benchmark=args.name, points=len(args.densities)
        ):
            rows = service.density_sweep(
                lambda mean: benchmark_problem(
                    args.name, mean_defects=mean, clustering=args.clustering
                ),
                args.densities,
                max_defects=args.max_defects,
            )
        elapsed = time.perf_counter() - started
    except (OrderingError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            obs_trace.stop()
    print("Defect-density sweep for %s (%d points)" % (probe.name, len(rows)))
    print(
        format_table(
            ("mean defects", "M", "yield >="),
            [("%g" % mean, "%d" % m, "%.6f" % y) for mean, y, m in rows],
        )
    )
    stats = service.stats
    print(
        "  structures built    : %d (%d reused, %d cache hits)"
        % (
            stats.structures_built,
            stats.structure_reuses,
            stats.result_cache_hits + stats.disk_cache_hits,
        )
    )
    print("  time (s)            : %.2f" % elapsed)
    _write_telemetry(args, service, tracer)
    if args.stats:
        _report_engine_stats(service)
    return 0


def _write_telemetry(args, service, tracer) -> None:
    """Write the ``--trace`` / ``--metrics`` files requested on the CLI."""
    if tracer is not None:
        spans = tracer.write_chrome(args.trace)
        print("  trace               : %d spans -> %s" % (spans, args.trace))
    if getattr(args, "metrics", None):
        with open(args.metrics, "w") as handle:
            handle.write(service.registry.expose_text())
        print("  metrics             : %s" % args.metrics)


def _format_metric_value(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return "%g" % value
    return "%d" % value


def _report_engine_stats(service) -> None:
    """Print the engine diagnostics behind ``repro sweep/importance --stats``.

    Every line is generated from the metrics registry, so the labels are
    the namespaced metric names — the same names used by the Prometheus
    exposition (``--metrics``) and by the worker-aggregated snapshots.
    """
    snapshot = service.registry.snapshot()
    print("Engine statistics")
    for name in sorted(snapshot["counters"]):
        print("  %-34s %s" % (name, _format_metric_value(snapshot["counters"][name])))
    for name in sorted(snapshot["gauges"]):
        print("  %-34s %s" % (name, snapshot["gauges"][name]))
    for name in sorted(snapshot["histograms"]):
        hist = snapshot["histograms"][name]
        count = hist["count"]
        mean = hist["sum"] / count if count else 0.0
        print(
            "  %-34s count=%d sum=%.3fs mean=%.3fs"
            % (name, count, hist["sum"], mean)
        )


def _run_importance(args) -> int:
    import time

    from .analysis.importance import hardening_potential, yield_sensitivity
    from .engine.service import SweepService
    from .obs import trace as obs_trace

    try:
        problem = benchmark_problem(
            args.name, mean_defects=args.mean_defects, clustering=args.clustering
        )
    except KeyError as exc:
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    service = None
    tracer = obs_trace.start() if args.trace else None
    try:
        service = SweepService(
            ordering=_ordering_from(args),
            epsilon=args.epsilon,
            workers=args.workers,
            kernel=args.kernel,
            store_dir=args.store_dir,
        )
        started = time.perf_counter()
        rows = []
        with obs_trace.span(
            "cli.importance", benchmark=args.name, measure=args.measure
        ):
            if args.measure in ("sensitivity", "both"):
                sensitivity = yield_sensitivity(
                    problem,
                    components=args.components,
                    relative_step=args.relative_step,
                    max_defects=args.max_defects,
                    epsilon=args.epsilon,
                    method="fd" if args.fd else "analytic",
                    service=service,
                )
                route = (
                    "central finite differences, h=%g" % args.relative_step
                    if args.fd
                    else "analytic reverse-mode gradients"
                )
                rows.append(
                    (
                        "Yield sensitivity (%s)" % route,
                        ("component", "dY / d(rel. P_i)"),
                        [(name, "%+.3e" % value) for name, value in sensitivity],
                    )
                )
            if args.measure in ("hardening", "both"):
                hardening = hardening_potential(
                    problem,
                    components=args.components,
                    max_defects=args.max_defects,
                    epsilon=args.epsilon,
                    service=service,
                )
                rows.append(
                    (
                        "Hardening potential (immune-component perturbation, batched)",
                        ("component", "yield gain"),
                        [(name, "%+.3e" % value) for name, value in hardening],
                    )
                )
        elapsed = time.perf_counter() - started
    except KeyError as exc:
        # importance-layer KeyErrors already carry "unknown component ..."
        print("error: %s" % exc.args[0], file=sys.stderr)
        return 2
    except (DistributionError, OrderingError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    finally:
        if tracer is not None:
            obs_trace.stop()
        if service is not None:
            service.close()
    print(
        "Component importance for %s (C=%d, mean defects %g)"
        % (problem.name, problem.num_components, args.mean_defects)
    )
    for title, headers, table_rows in rows:
        print()
        print(title)
        print(format_table(headers, table_rows))
    print()
    print("  time (s)            : %.2f" % elapsed)
    _write_telemetry(args, service, tracer)
    if args.stats:
        _report_engine_stats(service)
    return 0


def _run_serve(args) -> int:
    import asyncio

    from .engine.service import SweepService
    from .server import YieldServer

    try:
        service = SweepService(
            ordering=_ordering_from(args),
            epsilon=args.epsilon,
            workers=args.workers,
            shard_size=args.shard_size,
            kernel=args.kernel,
            cache_dir=args.cache_dir,
            store_dir=args.store_dir,
            use_shared_memory=args.shared_memory,
            remote_workers=args.remote_workers,
            heartbeat_interval=args.heartbeat_interval,
        )
    except (OrderingError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2
    server = YieldServer(
        service,
        host=args.host,
        port=args.port,
        max_queue=args.max_queue,
        http_threads=args.http_threads,
        drain_grace=args.drain_grace,
    )

    async def main() -> None:
        await server.start()
        print(
            "repro serve: listening on http://%s:%d (workers=%d, max-queue=%d)"
            % (server.host, server.port, args.workers, args.max_queue),
            flush=True,
        )
        if args.workers > 1:
            service.ensure_workers()
        await server.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - signal-timing dependent
        pass
    except OSError as exc:
        # bind failures (port in use, privileged port, bad interface)
        print("error: cannot listen on %s:%d: %s" % (args.host, args.port, exc),
              file=sys.stderr)
        return 2
    finally:
        service.close()
    print("repro serve: drained, bye")
    return 0


def _run_worker(args) -> int:
    import asyncio

    from .engine.fabric import ShardWorker

    try:
        worker = ShardWorker(
            args.store_dir, host=args.host, port=args.port, kernel=args.kernel
        )
    except (OSError, RuntimeError, ValueError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2

    async def main() -> None:
        await worker.start()
        print(
            "repro worker: listening on http://%s:%d (store %s)"
            % (worker.host, worker.port, args.store_dir),
            flush=True,
        )
        await worker.serve_forever()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:  # pragma: no cover - signal-timing dependent
        pass
    except OSError as exc:
        # bind failures (port in use, privileged port, bad interface)
        print("error: cannot listen on %s:%d: %s" % (args.host, args.port, exc),
              file=sys.stderr)
        return 2
    print("repro worker: stopped after %d shards" % worker.shards_served)
    return 0


def _run_trace(args) -> int:
    import json

    from .obs.trace import tree_from_chrome

    try:
        with open(args.file, "r") as handle:
            trace = json.load(handle)
    except (OSError, ValueError) as exc:
        print("error: cannot read trace %s: %s" % (args.file, exc), file=sys.stderr)
        return 2
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        print("error: %s is not a Chrome trace-event file" % args.file, file=sys.stderr)
        return 2
    rendered = tree_from_chrome(trace, min_us=args.min_ms * 1000.0)
    if not rendered:
        print("trace %s contains no complete spans" % args.file)
        return 0
    print(rendered)
    return 0


def _run_cache(args) -> int:
    import json

    from .engine.service import structure_key
    from .engine.store import StoreError, StructureStore

    store = StructureStore(args.store_dir)
    if args.cache_command == "ls":
        entries = store.entries()
        if not entries:
            print("structure store %s is empty" % args.store_dir)
            return 0
        print(
            "structure store %s: %d entries, %d bytes"
            % (args.store_dir, len(entries), sum(e.nbytes for e in entries))
        )
        for entry in entries:
            print("  %s" % entry.summary())
        return 0
    if args.cache_command == "info":
        try:
            meta = store.meta_of(args.digest)
        except StoreError as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        if meta is None:
            print("error: no entry matches %r" % args.digest, file=sys.stderr)
            return 2
        meta = dict(meta)
        # the layer arrays are bulk payload, not metadata
        meta.get("linearized", {}).pop("layers", None)
        print(json.dumps(meta, indent=2, sort_keys=True))
        return 0
    if args.cache_command == "warm":
        from .core.method import YieldAnalyzer

        try:
            problem = benchmark_problem(
                args.name, mean_defects=args.mean_defects, clustering=args.clustering
            )
        except KeyError as exc:
            print("error: %s" % exc.args[0], file=sys.stderr)
            return 2
        try:
            ordering = _ordering_from(args)
            if args.max_defects is not None:
                truncation = int(args.max_defects)
            else:
                truncation = problem.lethal_defect_distribution().truncation_level(
                    args.epsilon
                )
            analyzer = YieldAnalyzer(ordering, epsilon=args.epsilon)
            compiled = analyzer.compile_for_truncation(problem, truncation)
            nbytes = store.save(
                structure_key(problem, truncation, ordering), compiled
            )
        except (DistributionError, OrderingError, OSError, ValueError) as exc:
            print("error: %s" % exc, file=sys.stderr)
            return 2
        from .engine.store import digest_of

        digest = digest_of(structure_key(problem, truncation, ordering))
        print(
            "warmed %s (M=%d, %d ROMDD nodes) -> %s (%d bytes)"
            % (problem.name, truncation, compiled.romdd_size, digest[:16], nbytes)
        )
        return 0
    if args.cache_command == "clear":
        removed = store.remove(args.digest) if args.digest else store.clear()
        print("removed %d entries from %s" % (removed, args.store_dir))
        return 0
    if args.cache_command == "verify":
        if not os.path.isdir(args.store_dir):
            # "verified 0 entries" on a typo'd path would read as a pass
            print(
                "error: %s is not a structure store directory" % args.store_dir,
                file=sys.stderr,
            )
            return 2
        rows = store.verify_all(repair=args.repair)
        corrupt = [(digest, problems) for digest, ok, problems in rows if not ok]
        print(
            "verified %d entries in %s: %d ok, %d corrupt"
            % (len(rows), args.store_dir, len(rows) - len(corrupt), len(corrupt))
        )
        for digest, problems in corrupt:
            print("  %s CORRUPT" % digest[:16])
            for problem in problems:
                print("    - %s" % problem)
            if args.repair:
                print("    -> quarantined")
        if corrupt and not args.repair:
            return 1
        return 0
    print("error: unknown cache command %r" % args.cache_command, file=sys.stderr)
    return 2  # pragma: no cover - argparse enforces the choices


def _run_table(args) -> int:
    kwargs = {}
    if args.benchmarks is not None:
        unknown = [name for name in args.benchmarks if name not in BENCHMARK_NAMES]
        if unknown:
            print("error: unknown benchmarks: %s" % ", ".join(unknown), file=sys.stderr)
            return 2
        kwargs["benchmarks"] = args.benchmarks
    if args.number == 1:
        headers, rows = table1()
    elif args.number == 2:
        headers, rows = table2(max_defects=args.max_defects, **kwargs)
    elif args.number == 3:
        headers, rows = table3(max_defects=args.max_defects, **kwargs)
    else:
        headers, rows = table4(max_defects=args.max_defects, **kwargs)
    print("Table %d" % args.number)
    print(format_table(headers, rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _dispatch(parser, args)
    except BrokenPipeError:  # pragma: no cover - needs a real closed pipe
        # the reader (head, a pager...) went away mid-report; silence the
        # interpreter's shutdown flush and exit the way a SIGPIPE'd tool does
        try:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        except OSError:
            pass
        return 141


def _dispatch(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    if args.command == "evaluate":
        return _run_evaluate(args)
    if args.command == "benchmark":
        return _run_benchmark(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "importance":
        return _run_importance(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "worker":
        return _run_worker(args)
    if args.command == "cache":
        return _run_cache(args)
    if args.command == "table":
        return _run_table(args)
    if args.command == "trace":
        return _run_trace(args)
    if args.command == "list":
        for name in BENCHMARK_NAMES:
            print(name)
        return 0
    parser.error("unknown command %r" % args.command)  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

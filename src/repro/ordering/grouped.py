"""Grouped variable orders: multiple-valued variables plus their code bits.

The method needs two nested orders (Section 2 of the paper):

* an order of the **multiple-valued** variables ``w, v_1, ..., v_M`` — it
  determines the ROMDD and, through the grouping requirement, the macro
  structure of the coded ROBDD;
* an order of the **binary** variables *within* each group — it only affects
  the size of the coded ROBDD.

:class:`GroupedVariableOrder` captures both: an ordered list of
``(variable, bit_names)`` pairs whose concatenation is the coded-ROBDD
variable order.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from ..faulttree.multivalued import MultiValuedVariable


class OrderingError(ValueError):
    """Raised when an ordering specification is inconsistent."""


class GroupedVariableOrder:
    """An ordered list of multiple-valued variables with ordered bit groups."""

    def __init__(self, groups: Sequence[Tuple[MultiValuedVariable, Sequence[str]]]) -> None:
        if not groups:
            raise OrderingError("a grouped order needs at least one variable")
        normalized: List[Tuple[MultiValuedVariable, Tuple[str, ...]]] = []
        seen_vars = set()
        seen_bits = set()
        for variable, bit_names in groups:
            if variable.name in seen_vars:
                raise OrderingError("variable %r appears twice" % (variable.name,))
            seen_vars.add(variable.name)
            bit_names = tuple(str(b) for b in bit_names)
            canonical = set(variable.bit_names())
            if set(bit_names) != canonical or len(bit_names) != len(canonical):
                raise OrderingError(
                    "group of %r must be a permutation of its %d code bits"
                    % (variable.name, variable.width)
                )
            for bit in bit_names:
                if bit in seen_bits:
                    raise OrderingError("bit %r appears in more than one group" % (bit,))
                seen_bits.add(bit)
            normalized.append((variable, bit_names))
        self._groups: Tuple[Tuple[MultiValuedVariable, Tuple[str, ...]], ...] = tuple(normalized)

    # ------------------------------------------------------------------ #
    @property
    def groups(self) -> Tuple[Tuple[MultiValuedVariable, Tuple[str, ...]], ...]:
        """The ``(variable, bit_names)`` pairs, top of the diagrams first."""
        return self._groups

    @property
    def variables(self) -> Tuple[MultiValuedVariable, ...]:
        """The multiple-valued variables in order."""
        return tuple(variable for variable, _ in self._groups)

    @property
    def variable_names(self) -> Tuple[str, ...]:
        """The multiple-valued variable names in order."""
        return tuple(variable.name for variable, _ in self._groups)

    def flat_bit_order(self) -> List[str]:
        """Return the coded-ROBDD variable order (concatenation of the groups)."""
        flat: List[str] = []
        for _, bit_names in self._groups:
            flat.extend(bit_names)
        return flat

    def bits_of(self, variable_name: str) -> Tuple[str, ...]:
        """Return the ordered bits of the named variable."""
        for variable, bit_names in self._groups:
            if variable.name == variable_name:
                return bit_names
        raise OrderingError("unknown variable %r" % (variable_name,))

    def __len__(self) -> int:
        return len(self._groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GroupedVariableOrder(%s)" % ", ".join(self.variable_names)

"""The multiple-valued and bit-group ordering strategies of the paper.

Section 2 experiments with seven orderings for the multiple-valued variables
``w, v_1, ..., v_M``:

==========  =============================================================
``wv``      ``w, v_1, ..., v_M``
``wvr``     ``w, v_M, ..., v_1``
``vw``      ``v_1, ..., v_M, w``
``vrw``     ``v_M, ..., v_1, w``
``t``       binary *topology* heuristic on the gate-level description of
            ``G`` in binary logic; the multiple-valued variables are sorted
            by the average index of their code bits
``w``       same with the *weight* heuristic
``h``       same with the *H4* heuristic
==========  =============================================================

and five orderings for the bits within each group:

==========  =============================================================
``ml``      most significant to least significant bit
``lm``      least significant to most significant bit
``t``       bits sorted by increasing index in the *topology* order
``w``       same with the *weight* heuristic
``h``       same with the *H4* heuristic
==========  =============================================================

As in the paper, the heuristic bit orders are only allowed together with the
matching multiple-valued heuristic (``t`` with ``t``, ``w`` with ``w``,
``h`` with ``h``); ``ml`` and ``lm`` combine with every multiple-valued
order.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..faulttree.circuit import Circuit
from ..faulttree.multivalued import MultiValuedVariable
from .grouped import GroupedVariableOrder, OrderingError
from .heuristics import HEURISTICS

#: Multiple-valued variable orderings recognized by :func:`compute_grouped_order`.
MV_ORDERINGS = ("wv", "wvr", "vw", "vrw", "t", "w", "h")

#: Bit-group orderings recognized by :func:`compute_grouped_order`.
BIT_ORDERINGS = ("ml", "lm", "t", "w", "h")

_HEURISTIC_NAMES = ("t", "w", "h")


class OrderingSpec:
    """A validated pair of (multiple-valued order, bit-group order).

    Parameters
    ----------
    mv:
        One of :data:`MV_ORDERINGS`.  The paper's best performer (and our
        default) is the weight heuristic ``"w"``.
    bits:
        One of :data:`BIT_ORDERINGS`.  The paper's best performer (and our
        default) is most-significant-first, ``"ml"``.
    strict:
        Enforce the paper's combination rule (heuristic bit orders only with
        the matching multiple-valued heuristic).  Set to ``False`` to explore
        other combinations.
    sift:
        Improve the static order dynamically: after the coded ROBDD is
        built, run group-preserving Rudell sifting
        (:func:`repro.engine.reorder.sift_grouped`) before converting to the
        ROMDD.  The static ``mv``/``bits`` pair still provides the starting
        point, so ``OrderingSpec("w", "ml", sift=True)`` means "the paper's
        best static order, then sift".
    sift_converge:
        Instead of a single sifting pass, repeat group-preserving passes
        (plus a group-aware window permutation) until the node count stops
        improving (:func:`repro.engine.reorder.sift_grouped` with
        ``converge=True``).  Implies ``sift``.
    """

    def __init__(
        self,
        mv: str = "w",
        bits: str = "ml",
        *,
        strict: bool = True,
        sift: bool = False,
        sift_converge: bool = False,
    ) -> None:
        if mv not in MV_ORDERINGS:
            raise OrderingError("unknown multiple-valued ordering %r" % (mv,))
        if bits not in BIT_ORDERINGS:
            raise OrderingError("unknown bit-group ordering %r" % (bits,))
        if strict and bits in _HEURISTIC_NAMES and bits != mv:
            raise OrderingError(
                "bit ordering %r may only be combined with multiple-valued ordering %r"
                % (bits, bits)
            )
        self.mv = mv
        self.bits = bits
        self.sift_converge = bool(sift_converge)
        self.sift = bool(sift) or self.sift_converge

    def needs_circuit(self) -> bool:
        """Return whether this spec requires the binary gate-level description."""
        return self.mv in _HEURISTIC_NAMES or self.bits in _HEURISTIC_NAMES

    def key(self) -> Tuple[str, str, object]:
        """Return a hashable identity (used by the engine's caches).

        The third element encodes the dynamic-reordering mode: ``False``
        (static), ``True`` (one sifting pass) or ``"converge"``
        (sift-to-convergence) — still truthy exactly when sifting runs, so
        existing ``(mv, bits, sift)`` unpacking keeps working.
        """
        mode: object = "converge" if self.sift_converge else self.sift
        return (self.mv, self.bits, mode)

    @classmethod
    def from_key(cls, key: Tuple[str, str, object], *, strict: bool = False) -> "OrderingSpec":
        """Rebuild a spec from :meth:`key` (used by the worker processes)."""
        mv, bits, mode = key
        return cls(
            mv,
            bits,
            strict=strict,
            sift=bool(mode),
            sift_converge=(mode == "converge"),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.sift_converge:
            return "OrderingSpec(mv=%r, bits=%r, sift_converge=True)" % (self.mv, self.bits)
        if self.sift:
            return "OrderingSpec(mv=%r, bits=%r, sift=True)" % (self.mv, self.bits)
        return "OrderingSpec(mv=%r, bits=%r)" % (self.mv, self.bits)


def compute_grouped_order(
    count_variable: MultiValuedVariable,
    location_variables: Sequence[MultiValuedVariable],
    spec: OrderingSpec,
    binary_circuit: Optional[Circuit] = None,
) -> GroupedVariableOrder:
    """Compute the grouped variable order for the generalized fault tree.

    Parameters
    ----------
    count_variable:
        The defect-count variable ``w``.
    location_variables:
        The defect-location variables ``v_1 .. v_M`` in index order.
    spec:
        The ordering strategy.
    binary_circuit:
        The gate-level description of ``G`` in binary logic (required for the
        heuristic strategies ``t``, ``w``, ``h``); its inputs must be the
        canonical bit names ``"var[b]"`` of the variables.
    """
    location_variables = list(location_variables)
    all_variables = [count_variable] + location_variables

    heuristic_positions: Optional[Dict[str, int]] = None
    if spec.needs_circuit():
        if binary_circuit is None:
            raise OrderingError(
                "ordering %r requires the binary gate-level description of G" % (spec.mv,)
            )
        heuristic = HEURISTICS[spec.mv if spec.mv in _HEURISTIC_NAMES else spec.bits]
        ordered_bits = heuristic(binary_circuit)
        heuristic_positions = {name: i for i, name in enumerate(ordered_bits)}
        missing = [
            bit
            for variable in all_variables
            for bit in variable.bit_names()
            if bit not in heuristic_positions
        ]
        if missing:
            raise OrderingError(
                "binary circuit is missing code bits: %s" % ", ".join(missing[:5])
            )

    mv_order = _multi_valued_order(
        spec, count_variable, location_variables, heuristic_positions
    )
    groups: List[Tuple[MultiValuedVariable, Tuple[str, ...]]] = []
    for variable in mv_order:
        groups.append((variable, _bit_group(spec, variable, heuristic_positions)))
    return GroupedVariableOrder(groups)


def _multi_valued_order(
    spec: OrderingSpec,
    count_variable: MultiValuedVariable,
    location_variables: List[MultiValuedVariable],
    heuristic_positions: Optional[Dict[str, int]],
) -> List[MultiValuedVariable]:
    if spec.mv == "wv":
        return [count_variable] + location_variables
    if spec.mv == "wvr":
        return [count_variable] + list(reversed(location_variables))
    if spec.mv == "vw":
        return location_variables + [count_variable]
    if spec.mv == "vrw":
        return list(reversed(location_variables)) + [count_variable]
    # heuristic orders: sort by the average position of the variable's bits
    assert heuristic_positions is not None
    variables = [count_variable] + location_variables

    def average_index(variable: MultiValuedVariable) -> float:
        positions = [heuristic_positions[bit] for bit in variable.bit_names()]
        return sum(positions) / float(len(positions))

    return sorted(variables, key=average_index)


def _bit_group(
    spec: OrderingSpec,
    variable: MultiValuedVariable,
    heuristic_positions: Optional[Dict[str, int]],
) -> Tuple[str, ...]:
    canonical = variable.bit_names()  # most significant bit first
    if spec.bits == "ml":
        return tuple(canonical)
    if spec.bits == "lm":
        return tuple(reversed(canonical))
    assert heuristic_positions is not None
    return tuple(sorted(canonical, key=lambda bit: heuristic_positions[bit]))

"""Variable-ordering heuristics and grouped orders.

* :func:`~repro.ordering.heuristics.topology_order`,
  :func:`~repro.ordering.heuristics.weight_order`,
  :func:`~repro.ordering.heuristics.h4_order` — the three static heuristics
  of the paper for gate-level descriptions;
* :class:`~repro.ordering.grouped.GroupedVariableOrder` — a multiple-valued
  variable order with ordered code-bit groups (the shape the coded-ROBDD →
  ROMDD conversion requires);
* :class:`~repro.ordering.strategies.OrderingSpec` /
  :func:`~repro.ordering.strategies.compute_grouped_order` — the paper's
  ``wv, wvr, vw, vrw, t, w, h`` × ``ml, lm, t, w, h`` strategy matrix.
"""

from .grouped import GroupedVariableOrder, OrderingError
from .heuristics import HEURISTICS, h4_order, topology_order, weight_order
from .strategies import BIT_ORDERINGS, MV_ORDERINGS, OrderingSpec, compute_grouped_order

__all__ = [
    "GroupedVariableOrder",
    "OrderingError",
    "HEURISTICS",
    "topology_order",
    "weight_order",
    "h4_order",
    "OrderingSpec",
    "compute_grouped_order",
    "MV_ORDERINGS",
    "BIT_ORDERINGS",
]

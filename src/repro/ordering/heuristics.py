"""Static variable-ordering heuristics for gate-level descriptions.

The size of an ROBDD (and of an ROMDD) depends critically on the variable
order.  The paper uses three static heuristics that work on the gate-level
description of the function, all based on a depth-first, left-most traversal
from the output:

* **topology** [Nikolskaia, Rauzy & Sherman 1998]: inputs are ordered as
  first encountered by the plain depth-first, left-most traversal;
* **weight** [Minato, Ishiura & Yajima 1990]: every input gets weight 1,
  every gate the sum of its fanins' weights (computed bottom-up); the fanins
  of every gate are then re-sorted by increasing weight (stable), and the
  traversal of the re-ordered description gives the input order;
* **H4** [Bouissou, Bruyère & Rauzy 1997]: a depth-first, left-most traversal
  in which the fanins of a gate are sorted *when the gate is first visited*
  by (1) the number of not-yet-visited inputs in their dependency cone
  (fewest first) and (2) the sum of the order indices of the already-visited
  inputs in their cone (smallest first), preserving the original fanin order
  on ties.

Each heuristic returns the circuit's input *names*; inputs outside the cone
of the output are appended at the end in their declaration order so that the
result is always a complete order.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ..faulttree.circuit import Circuit


def _complete(circuit: Circuit, partial: List[str]) -> List[str]:
    """Append inputs missing from ``partial`` in declaration order."""
    seen = set(partial)
    for name in circuit.input_names:
        if name not in seen:
            partial.append(name)
            seen.add(name)
    return partial


def topology_order(circuit: Circuit, root: int = None) -> List[str]:
    """Return the input order produced by the *topology* heuristic."""
    if root is None:
        root = circuit.primary_output
    order: List[str] = []
    for index in circuit.dfs_leftmost(root):
        node = circuit.node(index)
        if node.is_input:
            order.append(node.name)
    return _complete(circuit, order)


def weight_order(circuit: Circuit, root: int = None) -> List[str]:
    """Return the input order produced by the *weight* heuristic."""
    if root is None:
        root = circuit.primary_output
    cone = circuit.cone(root)

    weights: Dict[int, int] = {}
    for index in sorted(cone):
        node = circuit.node(index)
        if node.is_gate:
            weights[index] = sum(weights[f] for f in node.fanins)
        else:
            weights[index] = 1

    order: List[str] = []
    seen: Set[int] = set()

    def visit(index: int) -> None:
        if index in seen:
            return
        seen.add(index)
        node = circuit.node(index)
        if node.is_input:
            order.append(node.name)
            return
        if node.is_const:
            return
        # stable sort by increasing weight keeps the original order on ties
        for fanin in sorted(node.fanins, key=lambda f: weights[f]):
            visit(fanin)

    _visit_iteratively(circuit, root, visit)
    return _complete(circuit, order)


def h4_order(circuit: Circuit, root: int = None) -> List[str]:
    """Return the input order produced by the *H4* heuristic."""
    if root is None:
        root = circuit.primary_output
    cone = circuit.cone(root)

    # dependency cone (set of input indices) of every node in the cone
    cones: Dict[int, frozenset] = {}
    for index in sorted(cone):
        node = circuit.node(index)
        if node.is_input:
            cones[index] = frozenset((index,))
        elif node.is_const:
            cones[index] = frozenset()
        else:
            acc: Set[int] = set()
            for fanin in node.fanins:
                acc.update(cones[fanin])
            cones[index] = frozenset(acc)

    order: List[str] = []
    order_index: Dict[int, int] = {}
    seen: Set[int] = set()

    def visit(index: int) -> None:
        if index in seen:
            return
        seen.add(index)
        node = circuit.node(index)
        if node.is_input:
            order_index[index] = len(order)
            order.append(node.name)
            return
        if node.is_const:
            return

        def keys(fanin_position: int):
            fanin = node.fanins[fanin_position]
            unvisited = sum(1 for i in cones[fanin] if i not in order_index)
            visited_sum = sum(order_index[i] for i in cones[fanin] if i in order_index)
            return (unvisited, visited_sum, fanin_position)

        for position in sorted(range(len(node.fanins)), key=keys):
            visit(node.fanins[position])

    _visit_iteratively(circuit, root, visit)
    return _complete(circuit, order)


def _visit_iteratively(circuit: Circuit, root: int, visit) -> None:
    """Run a recursive visitor with a recursion limit suited to deep netlists."""
    import sys

    depth_needed = len(circuit.nodes) + 100
    old_limit = sys.getrecursionlimit()
    if depth_needed > old_limit:
        sys.setrecursionlimit(depth_needed)
    try:
        visit(root)
    finally:
        if depth_needed > old_limit:
            sys.setrecursionlimit(old_limit)


#: Registry of the binary-circuit heuristics keyed by the paper's short names.
HEURISTICS = {
    "t": topology_order,
    "w": weight_order,
    "h": h4_order,
}

"""A minimal HTTP/1.1 layer over ``asyncio`` streams.

The front end (:mod:`repro.server.app`) needs exactly four things from
HTTP — parse a request, send a JSON response, send an error, stream a
body incrementally — and the standard library offers no asyncio-native
server for them (``http.server`` is threaded/WSGI-shaped).  This module
implements that minimal surface directly on ``StreamReader`` /
``StreamWriter`` instead of pulling in a framework dependency:

* :func:`read_request` parses one request (line, headers, body) with
  hard limits on line length, header count and body size — a malformed
  or oversized request raises :class:`HTTPError` with the right status
  instead of wedging the connection;
* :func:`response_bytes` renders a complete fixed-length response;
* :class:`ChunkedWriter` renders a ``Transfer-Encoding: chunked`` body
  for streaming endpoints (one NDJSON line per chunk).

Connections are single-request (``Connection: close``): the clients this
serves (load generators, health checks, scrapers) open cheap local
connections, and close-per-response keeps the protocol state machine
trivial — there is no pipelining or keep-alive bookkeeping to get wrong.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, Tuple

__all__ = [
    "ChunkedWriter",
    "HTTPError",
    "Request",
    "error_bytes",
    "read_request",
    "response_bytes",
]

#: Hard request limits: longer lines / more headers / bigger bodies are
#: rejected up front so one abusive connection cannot balloon memory.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 64
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HTTPError(Exception):
    """An error that maps straight to an HTTP status response."""

    def __init__(self, status: int, message: str, headers: Optional[Dict[str, str]] = None):
        super().__init__(message)
        self.status = int(status)
        self.message = message
        self.headers = dict(headers or {})


class Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "query", "headers", "body")

    def __init__(self, method: str, path: str, query: str, headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.query = query
        self.headers = headers
        self.body = body

    def json(self):
        """Decode the body as a JSON object (400 on anything else)."""
        if not self.body:
            raise HTTPError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError):
            raise HTTPError(400, "request body is not valid JSON") from None
        if not isinstance(payload, dict):
            raise HTTPError(400, "request body must be a JSON object")
        return payload


def _split_target(target: str) -> Tuple[str, str]:
    if "?" in target:
        path, query = target.split("?", 1)
        return path, query
    return target, ""


async def read_request(reader, *, max_body: int = MAX_BODY_BYTES) -> Optional[Request]:
    """Parse one request off ``reader``; ``None`` on a clean EOF.

    Protocol violations raise :class:`HTTPError` (the caller renders it
    and closes); the function never returns a half-parsed request.
    ``max_body`` overrides the default body bound for servers that accept
    large binary payloads (the shard worker's float64 matrices).
    """
    try:
        line = await reader.readline()
    except (ConnectionError, OSError):
        return None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HTTPError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HTTPError(400, "malformed request line")
    method, target = parts[0].upper(), parts[1]
    path, query = _split_target(target)

    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if not line:
            raise HTTPError(400, "connection closed inside headers")
        if len(line) > MAX_REQUEST_LINE:
            raise HTTPError(400, "header line too long")
        if line in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADERS:
            raise HTTPError(400, "too many headers")
        text = line.decode("latin-1")
        name, sep, value = text.partition(":")
        if not sep:
            raise HTTPError(400, "malformed header line")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HTTPError(501, "chunked request bodies are not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HTTPError(400, "malformed Content-Length") from None
        if length < 0:
            raise HTTPError(400, "malformed Content-Length")
        if length > max_body:
            raise HTTPError(413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except Exception:
                raise HTTPError(400, "connection closed inside body") from None
    elif method in ("POST", "PUT", "PATCH"):
        raise HTTPError(411, "Content-Length required")
    return Request(method, path, query, headers, body)


def response_bytes(
    status: int,
    body: bytes,
    *,
    content_type: str = "application/json",
    headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Render one complete fixed-length HTTP/1.1 response."""
    reason = _REASONS.get(status, "Unknown")
    lines = [
        "HTTP/1.1 %d %s" % (status, reason),
        "Content-Type: %s" % content_type,
        "Content-Length: %d" % len(body),
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append("%s: %s" % (name, value))
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def error_bytes(exc: HTTPError) -> bytes:
    """Render an :class:`HTTPError` as a JSON error response."""
    body = json.dumps({"error": exc.message, "status": exc.status}).encode("utf-8")
    return response_bytes(exc.status, body, headers=exc.headers)


class ChunkedWriter:
    """``Transfer-Encoding: chunked`` body writer for streaming responses.

    The head goes out with :meth:`start`; each :meth:`send` is one chunk
    (for NDJSON endpoints: one line = one chunk, so clients can consume
    results as they are produced); :meth:`finish` sends the terminator.
    """

    def __init__(self, writer, *, content_type: str = "application/x-ndjson"):
        self._writer = writer
        self._content_type = content_type
        self._started = False

    async def start(self, status: int = 200, headers: Optional[Dict[str, str]] = None) -> None:
        reason = _REASONS.get(status, "Unknown")
        lines = [
            "HTTP/1.1 %d %s" % (status, reason),
            "Content-Type: %s" % self._content_type,
            "Transfer-Encoding: chunked",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append("%s: %s" % (name, value))
        self._writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"))
        await self._writer.drain()
        self._started = True

    async def send(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
        await self._writer.drain()

    async def finish(self) -> None:
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()

    @property
    def started(self) -> bool:
        return self._started

"""The asyncio HTTP front end over a shared :class:`SweepService`.

One process, one service, many concurrent clients: the event loop owns
admission control and **request coalescing per structure key**, a small
thread pool runs the (blocking, now thread-safe) service calls, and the
worker-pool fan-out below stays exactly as the CLI uses it.

Endpoints
---------

``GET /healthz``
    Liveness: ``200 {"status": "ok"}`` while the loop is serving, 503
    once a drain has started.  A serving loop whose engine is limping —
    a degradation-ladder route is blocked, or the worker pool was
    respawned within the last ``respawn_window`` seconds — still answers
    200 (the process is alive) but with ``{"status": "degraded",
    "reason": ...}`` so orchestrators can distinguish "up" from "well".
``GET /stats``
    The service's entire :class:`~repro.obs.metrics.MetricsRegistry` in
    Prometheus text exposition format — the same numbers the CLI's
    ``--metrics`` writes, plus the ``server.*`` namespace.
``POST /v1/sweep``
    Body: ``{"benchmark": "MS2", "densities": [0.5, 1.0], "clustering":
    4.0, "max_defects": null, "epsilon": null, "stream": false}``.
    Evaluates one yield point per density through
    :meth:`SweepService.evaluate_batch`.  With ``"stream": true`` the
    response is NDJSON (``Transfer-Encoding: chunked``): one line per
    point, written as each structure group completes, each line carrying
    its request ``index`` so clients may reorder.
``POST /v1/importance``
    Body: ``{"benchmark": "MS2", "mean_defects": 2.0, "clustering":
    4.0, ...}``.  One analytic reverse-mode gradient pass
    (:meth:`SweepService.gradient_batch`); responds with the component
    ranking.

Coalescing
----------

Every sweep/importance request resolves its points to structure keys
*before* touching the caches.  Keys not yet resident are primed through
a per-key in-flight table on the event loop: the first request starts
the build (``server.builds_started``), every concurrent request for the
same key awaits the same future (``server.coalesced_joins``) — K clients
asking for one cold structure cause exactly one compile.  The service's
own per-key locks make this safe even for callers that bypass the
server.

Backpressure
------------

At most ``max_queue`` sweep/importance requests are in flight; the next
one is rejected with ``429`` and a ``Retry-After`` header *before* any
service work happens.  ``/healthz`` and ``/stats`` bypass admission so
operators can always see in.

Shutdown
--------

SIGTERM/SIGINT stop the listener, let in-flight requests drain for
``drain_grace`` seconds, then cancel stragglers.  A periodic task also
sweeps shared-memory blocks older than ``shm_max_age`` back to the OS
(:meth:`repro.engine.supervise.ShmJanitor.sweep_stale`) — a long-lived
server cannot rely on the atexit sweep alone.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from .http import ChunkedWriter, HTTPError, Request, error_bytes, read_request, response_bytes
from ..engine.service import SweepPoint, SweepService
from ..engine.supervise import janitor

__all__ = ["YieldServer", "ServerHandle", "serve_in_thread", "result_to_dict", "gradients_to_dict"]


def result_to_dict(result, index: int, mean_defects: Optional[float] = None) -> Dict:
    """JSON-ready view of one :class:`~repro.core.results.YieldResult`.

    Floats pass through ``json`` unrounded (shortest-repr encoding), so a
    decoded value compares bit-for-bit equal to the in-process result —
    the property the smoke tests assert.
    """
    out = {
        "index": index,
        "name": result.name,
        "yield": result.yield_estimate,
        "yield_upper_bound": result.yield_upper_bound,
        "error_bound": result.error_bound,
        "truncation": result.truncation,
        "probability_not_functioning": result.probability_not_functioning,
        "romdd_size": result.romdd_size,
        "ordering": list(result.ordering),
    }
    if mean_defects is not None:
        out["mean_defects"] = mean_defects
    return out


def gradients_to_dict(gradients) -> Dict:
    """JSON-ready view of one :class:`~repro.core.results.YieldGradients`."""
    return {
        "name": gradients.name,
        "truncation": gradients.truncation,
        "yield": gradients.yield_estimate,
        "ranking": [
            {"component": name, "sensitivity": value}
            for name, value in gradients.ranking()
        ],
    }


def _json_bytes(payload) -> bytes:
    return json.dumps(payload).encode("utf-8")


class YieldServer:
    """Serve one :class:`SweepService` over HTTP (see the module docs)."""

    def __init__(
        self,
        service: SweepService,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        max_queue: int = 64,
        http_threads: int = 8,
        drain_grace: float = 10.0,
        shm_sweep_interval: float = 60.0,
        shm_max_age: float = 300.0,
        respawn_window: float = 30.0,
    ) -> None:
        self.service = service
        self.registry = service.registry
        self.host = host
        self.port = int(port)
        self.max_queue = int(max_queue)
        self.drain_grace = float(drain_grace)
        self.shm_sweep_interval = float(shm_sweep_interval)
        self.shm_max_age = float(shm_max_age)
        self.respawn_window = float(respawn_window)
        self._executor = ThreadPoolExecutor(
            max_workers=int(http_threads), thread_name_prefix="repro-http"
        )
        #: skey -> in-flight build future (event-loop confined).
        self._builds: Dict[Tuple, "asyncio.Future"] = {}
        self._admitted = 0
        self._draining = False
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self._sweeper: Optional[asyncio.Task] = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    async def start(self) -> None:
        """Bind the listener (``self.port`` is updated when 0 was asked)."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]
        if self.shm_sweep_interval > 0:
            self._sweeper = asyncio.create_task(self._sweep_loop())

    async def serve_forever(self) -> None:
        """Serve until :meth:`initiate_stop` (or SIGTERM/SIGINT) fires."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        import signal

        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.initiate_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        await self._stopped.wait()
        await self._shutdown()

    def initiate_stop(self) -> None:
        """Begin a graceful drain (idempotent; callable from the loop)."""
        self._draining = True
        if self._stopped is not None and not self._stopped.is_set():
            self._stopped.set()

    async def _shutdown(self) -> None:
        if self._sweeper is not None:
            self._sweeper.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        deadline = time.monotonic() + self.drain_grace
        while self._admitted > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.05)
        self._executor.shutdown(wait=False)
        # the long-lived loop is going away: return adopted blocks now
        # rather than waiting for atexit
        janitor().sweep_stale(0.0, self.registry)

    async def _sweep_loop(self) -> None:
        while True:
            await asyncio.sleep(self.shm_sweep_interval)
            released = janitor().sweep_stale(self.shm_max_age, self.registry)
            if released:
                self.registry.inc("server.shm_sweeps", 1)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #

    async def _handle_client(self, reader, writer) -> None:
        try:
            try:
                request = await read_request(reader)
            except HTTPError as exc:
                writer.write(error_bytes(exc))
                await writer.drain()
                return
            if request is None:
                return
            await self._respond(request, writer)
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request: Request, writer) -> None:
        started = time.perf_counter()
        route, handler, needs_admission = self._route(request)
        self.registry.inc("server.requests")
        self.registry.inc("server.requests.%s" % route)
        status = 500
        try:
            if needs_admission:
                if self._draining:
                    raise HTTPError(503, "server is draining", {"Retry-After": "1"})
                if self._admitted >= self.max_queue:
                    self.registry.inc("server.rejected")
                    raise HTTPError(
                        429,
                        "too many in-flight requests (max %d)" % self.max_queue,
                        {"Retry-After": "1"},
                    )
                self._admitted += 1
                self.registry.set_gauge("server.inflight", self._admitted)
                try:
                    status = await handler(request, writer)
                finally:
                    self._admitted -= 1
                    self.registry.set_gauge("server.inflight", self._admitted)
            else:
                status = await handler(request, writer)
        except HTTPError as exc:
            status = exc.status
            writer.write(error_bytes(exc))
            await writer.drain()
        except Exception as exc:
            status = 500
            self.registry.inc("server.errors")
            writer.write(error_bytes(HTTPError(500, "internal error: %s" % exc)))
            await writer.drain()
        finally:
            self.registry.inc("server.responses.%d" % status)
            self.registry.observe("server.request_seconds", time.perf_counter() - started)

    def _route(self, request: Request):
        path, method = request.path, request.method
        if path == "/healthz":
            if method != "GET":
                return "healthz", self._method_not_allowed("GET"), False
            return "healthz", self._handle_healthz, False
        if path == "/stats":
            if method != "GET":
                return "stats", self._method_not_allowed("GET"), False
            return "stats", self._handle_stats, False
        if path == "/v1/sweep":
            if method != "POST":
                return "sweep", self._method_not_allowed("POST"), False
            return "sweep", self._handle_sweep, True
        if path == "/v1/importance":
            if method != "POST":
                return "importance", self._method_not_allowed("POST"), False
            return "importance", self._handle_importance, True
        return "unknown", self._handle_not_found, False

    @staticmethod
    def _method_not_allowed(allow: str):
        async def handler(request, writer):
            raise HTTPError(405, "method not allowed", {"Allow": allow})

        return handler

    @staticmethod
    async def _handle_not_found(request, writer):
        raise HTTPError(404, "no such endpoint")

    async def _handle_healthz(self, request, writer) -> int:
        if self._draining:
            status, payload = 503, {"status": "draining"}
        else:
            status = 200
            reason = self._degraded_reason()
            if reason is None:
                payload = {"status": "ok"}
            else:
                payload = {"status": "degraded", "reason": reason}
        writer.write(response_bytes(status, _json_bytes(payload)))
        await writer.drain()
        return status

    def _degraded_reason(self) -> Optional[str]:
        """Why the engine is limping, or ``None`` while it is healthy.

        Reads :meth:`SweepService.health`; services without it (tests
        stub the service with a bare object) count as healthy.
        """
        health = getattr(self.service, "health", None)
        if not callable(health):
            return None
        snapshot = health()
        blocked = snapshot.get("blocked_routes") or []
        if blocked:
            return "degraded dispatch routes: %s" % ", ".join(sorted(blocked))
        last_respawn = snapshot.get("last_respawn")
        if last_respawn is not None and self.respawn_window > 0:
            age = time.time() - last_respawn
            if age < self.respawn_window:
                return "worker pool respawned %.1fs ago" % age
        return None

    async def _handle_stats(self, request, writer) -> int:
        text = self.registry.expose_text()
        writer.write(
            response_bytes(
                200,
                text.encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        )
        await writer.drain()
        return 200

    # ------------------------------------------------------------------ #
    # Service endpoints
    # ------------------------------------------------------------------ #

    def _sweep_points(self, payload) -> Tuple[str, List[float], List[SweepPoint]]:
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str):
            raise HTTPError(400, "'benchmark' must be a string")
        densities = payload.get("densities")
        if not isinstance(densities, list) or not densities:
            raise HTTPError(400, "'densities' must be a non-empty list of numbers")
        try:
            densities = [float(value) for value in densities]
        except (TypeError, ValueError):
            raise HTTPError(400, "'densities' must be a non-empty list of numbers") from None
        clustering = payload.get("clustering", 4.0)
        max_defects = payload.get("max_defects")
        epsilon = payload.get("epsilon")
        from ..soc import benchmark_problem

        try:
            points = [
                SweepPoint(
                    benchmark_problem(
                        benchmark, mean_defects=mean, clustering=float(clustering)
                    ),
                    max_defects=None if max_defects is None else int(max_defects),
                    epsilon=None if epsilon is None else float(epsilon),
                )
                for mean in densities
            ]
        except KeyError as exc:
            raise HTTPError(400, str(exc.args[0])) from None
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, "invalid sweep parameters: %s" % exc) from None
        return benchmark, densities, points

    async def _in_executor(self, func, *args):
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._executor, func, *args)

    async def _prime_structures(self, points: List[SweepPoint]) -> Dict[Tuple, List[int]]:
        """Coalesce structure builds; return ``skey -> point indices``.

        The in-flight table lives on the event loop, so membership checks
        and future creation are race-free without locks; the build itself
        runs on the thread pool.
        """
        resolved = await self._in_executor(
            lambda: [self.service.resolve_point(point) for point in points]
        )
        groups: Dict[Tuple, List[int]] = {}
        waits = []
        for idx, (skey, truncation) in enumerate(resolved):
            first_sight = skey not in groups
            groups.setdefault(skey, []).append(idx)
            if not first_sight:
                continue
            pending = self._builds.get(skey)
            if pending is not None:
                self.registry.inc("server.coalesced_joins")
                waits.append(pending)
                continue
            if self.service.has_structure(skey):
                continue
            future = asyncio.get_running_loop().create_future()
            self._builds[skey] = future
            self.registry.inc("server.builds_started")
            waits.append(
                asyncio.ensure_future(
                    self._build_structure(skey, points[idx], truncation, future)
                )
            )
        for waited in waits:
            outcome = await waited
            if isinstance(outcome, BaseException):
                raise outcome
        return groups

    async def _build_structure(self, skey, point: SweepPoint, truncation: int, future):
        """Run one coalesced structure build; resolve its future for joiners.

        The future always resolves with the outcome (an exception instance
        on failure, ``None`` on success) rather than raising, so joiners
        that were cancelled never leave an unretrieved-exception warning.
        """
        outcome = None
        try:
            await self._in_executor(
                self.service.prime_structure, point.problem, truncation, skey
            )
        except Exception as exc:
            outcome = exc
        finally:
            self._builds.pop(skey, None)
            if not future.done():
                future.set_result(outcome)
        return outcome

    async def _handle_sweep(self, request: Request, writer) -> int:
        payload = request.json()
        benchmark, densities, points = self._sweep_points(payload)
        stream = bool(payload.get("stream", False))
        groups = await self._prime_structures(points)
        if not stream:
            results = await self._in_executor(self.service.evaluate_batch, points)
            body = {
                "benchmark": benchmark,
                "points": [
                    result_to_dict(result, idx, densities[idx])
                    for idx, result in enumerate(results)
                ],
            }
            writer.write(response_bytes(200, _json_bytes(body)))
            await writer.drain()
            return 200
        # streaming: evaluate one structure group at a time (each still a
        # single batched pass) and flush that group's lines immediately —
        # clients see results as groups complete, tagged with the request
        # index for reordering
        chunked = ChunkedWriter(writer)
        await chunked.start(200)
        for indices in groups.values():
            results = await self._in_executor(
                self.service.evaluate_batch, [points[idx] for idx in indices]
            )
            lines = b"".join(
                _json_bytes(result_to_dict(result, idx, densities[idx])) + b"\n"
                for idx, result in zip(indices, results)
            )
            await chunked.send(lines)
        await chunked.finish()
        return 200

    async def _handle_importance(self, request: Request, writer) -> int:
        payload = request.json()
        benchmark = payload.get("benchmark")
        if not isinstance(benchmark, str):
            raise HTTPError(400, "'benchmark' must be a string")
        from ..soc import benchmark_problem

        try:
            problem = benchmark_problem(
                benchmark,
                mean_defects=float(payload.get("mean_defects", 2.0)),
                clustering=float(payload.get("clustering", 4.0)),
            )
        except KeyError as exc:
            raise HTTPError(400, str(exc.args[0])) from None
        except (TypeError, ValueError) as exc:
            raise HTTPError(400, "invalid importance parameters: %s" % exc) from None
        max_defects = payload.get("max_defects")
        epsilon = payload.get("epsilon")
        point = SweepPoint(
            problem,
            max_defects=None if max_defects is None else int(max_defects),
            epsilon=None if epsilon is None else float(epsilon),
        )
        await self._prime_structures([point])
        gradients = await self._in_executor(self.service.gradient_batch, [point])
        body = dict(gradients_to_dict(gradients[0]), benchmark=benchmark)
        writer.write(response_bytes(200, _json_bytes(body)))
        await writer.drain()
        return 200


# ---------------------------------------------------------------------- #
# Embedding helpers (tests, notebooks)
# ---------------------------------------------------------------------- #


class ServerHandle:
    """A server running on a background thread (see :func:`serve_in_thread`)."""

    def __init__(self):
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[YieldServer] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def address(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain and stop the server; joins the background thread."""
        if self._loop is not None and self._server is not None:
            try:
                self._loop.call_soon_threadsafe(self._server.initiate_stop)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)


def serve_in_thread(service: SweepService, **kwargs) -> ServerHandle:
    """Start a :class:`YieldServer` on a daemon thread; return its handle.

    Binds an ephemeral port by default (pass ``port=`` to pin one) and
    returns only after the listener is accepting connections — tests can
    hit ``handle.address`` immediately.  Raises if startup failed.
    """
    kwargs.setdefault("port", 0)
    handle = ServerHandle()

    def run():
        async def main():
            server = YieldServer(service, **kwargs)
            try:
                await server.start()
            except BaseException as exc:
                handle.error = exc
                handle._ready.set()
                return
            handle.host = server.host
            handle.port = server.port
            handle._loop = asyncio.get_running_loop()
            handle._server = server
            handle._ready.set()
            await server.serve_forever()

        asyncio.run(main())

    handle._thread = threading.Thread(
        target=run, name="repro-server", daemon=True
    )
    handle._thread.start()
    if not handle._ready.wait(30.0):
        raise RuntimeError("server thread did not start in time")
    if handle.error is not None:
        raise RuntimeError("server failed to start: %r" % handle.error)
    return handle

"""HTTP serving layer: a long-lived front end over the sweep engine.

``repro serve`` (or :func:`serve_in_thread` for tests and notebooks)
wraps one shared, concurrency-safe :class:`repro.engine.service.SweepService`
in an asyncio HTTP server — stdlib only, no framework dependency:

* JSON endpoints for sweep and importance batches (``POST /v1/sweep``,
  ``POST /v1/importance``), with optional NDJSON streaming;
* request **coalescing per structure key**: concurrent queries for the
  same fault tree / truncation / ordering join one in-flight compile;
* bounded admission control (``max_queue`` → ``429`` + ``Retry-After``)
  and graceful drain on SIGTERM;
* ``GET /stats`` (Prometheus text exposition of the whole metrics
  registry) and ``GET /healthz``.

See :mod:`repro.server.app` for the protocol details and
:mod:`repro.server.http` for the minimal HTTP/1.1 layer underneath.
"""

from .app import ServerHandle, YieldServer, serve_in_thread

__all__ = ["ServerHandle", "YieldServer", "serve_in_thread"]

"""Problem definition: a fault-tolerant SoC plus its defect model.

A :class:`YieldProblem` is the single object the yield method consumes: the
gate-level fault tree ``F(x_1 .. x_C)`` of the system, the per-component
defect probabilities ``P_i`` and the distribution ``Q_k`` of the number of
manufacturing defects.  It also owns the mapping to the computationally
convenient lethal-defect model ``(Q'_k, P'_i)`` described in Section 1 of
the paper.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Tuple

from ..distributions import ComponentDefectModel, DefectCountDistribution
from ..faulttree.circuit import Circuit
from ..faulttree.ops import CircuitError


class ProblemError(ValueError):
    """Raised when a yield problem is inconsistent."""


class YieldProblem:
    """A fault-tolerant system-on-chip yield evaluation problem.

    Parameters
    ----------
    fault_tree:
        Gate-level circuit of the structure function ``F``; its single output
        must be 1 exactly when the system is *not* functioning, and its
        inputs must be named after components of ``components``.
    components:
        The component defect model (names and ``P_i`` probabilities).  It may
        contain components that do not appear in the fault tree (defects on
        them are lethal to the component but never fail the system).
    defect_distribution:
        Distribution of the number of manufacturing defects (``Q_k``).
    name:
        Optional label used in reports.
    """

    def __init__(
        self,
        fault_tree: Circuit,
        components: ComponentDefectModel,
        defect_distribution: DefectCountDistribution,
        *,
        name: Optional[str] = None,
    ) -> None:
        try:
            fault_tree.primary_output
        except CircuitError as exc:
            raise ProblemError("fault tree must have exactly one output: %s" % exc) from exc
        unknown = [
            input_name
            for input_name in fault_tree.input_names
            if input_name not in components.names
        ]
        if unknown:
            raise ProblemError(
                "fault tree inputs missing from the component model: %s"
                % ", ".join(sorted(unknown))
            )
        self.fault_tree = fault_tree
        self.components = components
        self.defect_distribution = defect_distribution
        self.name = name or fault_tree.name

    # ------------------------------------------------------------------ #
    # Lethal-defect model
    # ------------------------------------------------------------------ #

    @property
    def lethality(self) -> float:
        """The per-defect lethality probability ``P_L``."""
        return self.components.lethality

    def lethal_defect_distribution(self) -> DefectCountDistribution:
        """Return ``Q'_k``, the distribution of the number of *lethal* defects."""
        return self.defect_distribution.thinned(self.lethality)

    def lethal_component_probabilities(self) -> Tuple[float, ...]:
        """Return the ``P'_i`` vector (conditional hit probabilities, sums to 1)."""
        return self.components.lethal_probabilities()

    @property
    def component_names(self) -> Tuple[str, ...]:
        """Component names in model (index) order."""
        return self.components.names

    @property
    def num_components(self) -> int:
        """The number of components ``C``."""
        return self.components.count

    # ------------------------------------------------------------------ #
    # Structure-function evaluation helpers
    # ------------------------------------------------------------------ #

    def system_fails(self, failed_components: Sequence[str]) -> bool:
        """Evaluate the structure function for a set of failed components."""
        failed = set(failed_components)
        unknown = failed.difference(self.components.names)
        if unknown:
            raise ProblemError("unknown components: %s" % ", ".join(sorted(unknown)))
        assignment = {name: (name in failed) for name in self.fault_tree.input_names}
        return self.fault_tree.evaluate_output(assignment, "F")

    def truncation_level(self, epsilon: float) -> int:
        """Return the smallest ``M`` meeting the absolute error budget ``epsilon``."""
        return self.lethal_defect_distribution().truncation_level(epsilon)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "YieldProblem(%r, C=%d, gates=%d)" % (
            self.name,
            self.num_components,
            self.fault_tree.num_gates,
        )

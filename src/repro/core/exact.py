"""Exact yield computation by enumeration (cross-validation baseline).

For small systems the conditional yields ``Y_k = P(functioning | k lethal
defects)`` can be computed exactly by enumerating the *multisets* of
components hit by the ``k`` lethal defects: a multiset with multiplicities
``(m_1, ..., m_C)`` has probability ``k! / (m_1! ... m_C!) * prod_i P'_i^{m_i}``
and fails the system exactly when the set of components with ``m_i > 0``
fails it.  The number of multisets is ``C(C + k - 1, k)``, so this is only
usable for the small fault trees the test-suite uses — which is exactly its
purpose: an independent implementation of ``Y_M`` that validates the
decision-diagram pipeline end to end.
"""

from __future__ import annotations

import math
from itertools import combinations_with_replacement
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from .problem import YieldProblem
from .results import ExactResult


def exact_conditional_yield(problem: YieldProblem, defects: int) -> float:
    """Return ``Y_k`` for ``k = defects`` by exact enumeration."""
    if defects < 0:
        raise ValueError("defects must be >= 0, got %d" % defects)
    if defects == 0:
        return 0.0 if problem.system_fails(()) else 1.0

    names = problem.component_names
    probabilities = problem.lethal_component_probabilities()
    num_components = len(names)

    structure_cache: Dict[FrozenSet[int], bool] = {}

    def functioning(hit_indices: FrozenSet[int]) -> bool:
        if hit_indices not in structure_cache:
            failed = [names[i] for i in hit_indices]
            structure_cache[hit_indices] = not problem.system_fails(failed)
        return structure_cache[hit_indices]

    log_factorial_k = math.lgamma(defects + 1)
    total = 0.0
    for multiset in combinations_with_replacement(range(num_components), defects):
        hit = frozenset(multiset)
        if not functioning(hit):
            continue
        counts: Dict[int, int] = {}
        for index in multiset:
            counts[index] = counts.get(index, 0) + 1
        log_prob = log_factorial_k
        for index, count in counts.items():
            log_prob -= math.lgamma(count + 1)
            log_prob += count * math.log(probabilities[index])
        total += math.exp(log_prob)
    return total


def exact_yield(
    problem: YieldProblem,
    *,
    epsilon: float = 1e-4,
    max_defects: Optional[int] = None,
) -> ExactResult:
    """Return the truncated yield ``Y_M`` computed by exact enumeration.

    The truncation level is chosen exactly as in the combinatorial method, so
    results from both routes are directly comparable (same ``M``, same error
    bound).
    """
    lethal_distribution = problem.lethal_defect_distribution()
    if max_defects is None:
        truncation = lethal_distribution.truncation_level(epsilon)
    else:
        truncation = int(max_defects)
    error_bound = lethal_distribution.tail(truncation)

    conditional: list = []
    total = 0.0
    for k in range(truncation + 1):
        y_k = exact_conditional_yield(problem, k)
        conditional.append(y_k)
        total += lethal_distribution.pmf(k) * y_k
    return ExactResult(
        name=problem.name,
        yield_estimate=total,
        error_bound=error_bound,
        truncation=truncation,
        conditional_yields=tuple(conditional),
    )

"""Construction of the generalized fault tree ``G(w, v_1 .. v_M)``.

Equation (3) and Fig. 1 of the paper define ``G`` from the fault tree ``F``:

* ``w`` counts the lethal defects, saturated at ``M + 1``;
* ``v_l`` is the component affected by the ``l``-th lethal defect;
* component ``i`` is failed exactly when some of the first ``M`` lethal
  defects hit it, i.e. ``OR_l ( I_{>=l}(w) AND I_{=i}(v_l) )``;
* ``G = I_{>=M+1}(w)  OR  F(failed_1, ..., failed_C)`` so that ``G = 1``
  exactly when the system is not functioning *or* more than ``M`` defects
  occurred (the pessimistic truncation).

The class produces the filter-gate circuit (:class:`repro.faulttree.MVCircuit`),
the binary-encoded gate-level description used by the ordering heuristics and
the coded-ROBDD builder, and the per-variable probability distributions used
by the final ROMDD traversal.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..distributions import DefectCountDistribution
from ..faulttree.circuit import Circuit
from ..faulttree.multivalued import MVCircuit, MultiValuedVariable
from ..faulttree.ops import CircuitError, GateOp


class GFunctionError(ValueError):
    """Raised when the generalized fault tree cannot be constructed."""


class GeneralizedFaultTree:
    """The boolean function ``G`` with multiple-valued variables of Theorem 1.

    Parameters
    ----------
    fault_tree:
        The gate-level circuit of ``F(x_1 .. x_C)``.
    component_names:
        Component names in index order; component ``i`` of the paper is
        ``component_names[i - 1]``.  Every fault-tree input must be listed.
    max_defects:
        The truncation level ``M`` (>= 0).
    """

    COUNT_VARIABLE_NAME = "w"

    def __init__(
        self,
        fault_tree: Circuit,
        component_names: Sequence[str],
        max_defects: int,
    ) -> None:
        if max_defects < 0:
            raise GFunctionError("max_defects must be >= 0, got %d" % max_defects)
        component_names = [str(n) for n in component_names]
        if len(set(component_names)) != len(component_names):
            raise GFunctionError("component names must be unique")
        missing = [
            name for name in fault_tree.input_names if name not in component_names
        ]
        if missing:
            raise GFunctionError(
                "fault tree inputs are not components: %s" % ", ".join(missing)
            )
        self.fault_tree = fault_tree
        self.component_names: Tuple[str, ...] = tuple(component_names)
        self.max_defects = int(max_defects)

        num_components = len(component_names)
        self.count_variable = MultiValuedVariable(
            self.COUNT_VARIABLE_NAME, range(0, self.max_defects + 2)
        )
        # v_l - 1 is what gets encoded (minimum-width code on {0 .. C-1}),
        # exactly as prescribed in Section 2.
        self.location_variables: Tuple[MultiValuedVariable, ...] = tuple(
            MultiValuedVariable("v%d" % l, range(1, num_components + 1))
            for l in range(1, self.max_defects + 1)
        )
        self.mv_circuit = self._build_mv_circuit()
        self._binary_circuit: Optional[Circuit] = None

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def _build_mv_circuit(self) -> MVCircuit:
        mv = MVCircuit("G[%s,M=%d]" % (self.fault_tree.name, self.max_defects))
        mv.add_variable(self.count_variable)
        for variable in self.location_variables:
            mv.add_variable(variable)

        # failed_i = OR_l ( w >= l AND v_l == i )
        component_failed: Dict[str, int] = {}
        needed = set(self.fault_tree.input_names)
        for index, name in enumerate(self.component_names, start=1):
            if name not in needed:
                continue
            terms: List[int] = []
            for position, variable in enumerate(self.location_variables, start=1):
                at_least_l = mv.filter_geq(self.count_variable, position)
                hits_component = mv.filter_eq(variable, index)
                terms.append(mv.gate(GateOp.AND, [at_least_l, hits_component]))
            if terms:
                component_failed[name] = mv.gate(GateOp.OR, terms) if len(terms) > 1 else terms[0]
            else:
                # M == 0: no defect is analyzed, no component can be failed
                component_failed[name] = mv.const(False)

        # copy the structure of F, substituting the component-failed signals
        mapping: Dict[int, int] = {}
        for node in self.fault_tree.nodes:
            if node.is_input:
                mapping[node.index] = component_failed[node.name]
            elif node.is_const:
                mapping[node.index] = mv.const(node.name == "1")
            else:
                mapping[node.index] = mv.gate(node.op, [mapping[f] for f in node.fanins])
        f_top = mapping[self.fault_tree.primary_output]

        overflow = mv.filter_geq(self.count_variable, self.max_defects + 1)
        mv.set_top(mv.gate(GateOp.OR, [overflow, f_top]))
        return mv

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[MultiValuedVariable, ...]:
        """All multiple-valued variables, ``w`` first then ``v_1 .. v_M``."""
        return (self.count_variable,) + self.location_variables

    @property
    def num_components(self) -> int:
        return len(self.component_names)

    def binary_circuit(self) -> Circuit:
        """Return (and cache) the gate-level description of ``G`` in binary logic."""
        if self._binary_circuit is None:
            self._binary_circuit = self.mv_circuit.binary_encode(
                "%s-binary" % self.mv_circuit.circuit.name
            )
        return self._binary_circuit

    # ------------------------------------------------------------------ #
    # Semantics
    # ------------------------------------------------------------------ #

    def evaluate(self, defect_count: int, hit_components: Sequence[int]) -> bool:
        """Evaluate ``G`` on a concrete defect scenario.

        Parameters
        ----------
        defect_count:
            The number of lethal defects (values above ``M`` are treated as
            the saturated value ``M + 1``).
        hit_components:
            1-based component indices hit by the first ``min(defect_count, M)``
            lethal defects; extra entries are ignored, missing entries
            (possible only when they cannot influence the result) default to
            component 1.
        """
        w_value = min(defect_count, self.max_defects + 1)
        assignment: Dict[str, int] = {self.count_variable.name: w_value}
        for position, variable in enumerate(self.location_variables):
            if position < len(hit_components):
                assignment[variable.name] = int(hit_components[position])
            else:
                assignment[variable.name] = 1
        return self.mv_circuit.evaluate(assignment)

    def failed_set(self, defect_count: int, hit_components: Sequence[int]) -> List[str]:
        """Return the component names failed by the given defect scenario."""
        effective = min(defect_count, self.max_defects)
        failed = []
        for position in range(effective):
            index = int(hit_components[position])
            if not 1 <= index <= self.num_components:
                raise GFunctionError("component index %d out of range" % index)
            name = self.component_names[index - 1]
            if name not in failed:
                failed.append(name)
        return failed

    # ------------------------------------------------------------------ #
    # Probability distributions for the ROMDD traversal
    # ------------------------------------------------------------------ #

    def variable_distributions(
        self,
        lethal_distribution: DefectCountDistribution,
        lethal_component_probabilities: Sequence[float],
    ) -> Dict[str, Dict[int, float]]:
        """Return ``{variable: {value: probability}}`` for the traversal.

        ``P(w = k) = Q'_k`` for ``k <= M`` and
        ``P(w = M+1) = 1 - sum_{k<=M} Q'_k``; ``P(v_l = i) = P'_i``.
        """
        probabilities = [float(p) for p in lethal_component_probabilities]
        if len(probabilities) != self.num_components:
            raise GFunctionError(
                "expected %d component probabilities, got %d"
                % (self.num_components, len(probabilities))
            )
        total = sum(probabilities)
        if abs(total - 1.0) > 1e-6:
            raise GFunctionError(
                "lethal component probabilities must sum to 1, got %g" % total
            )

        count_pmf = [lethal_distribution.pmf(k) for k in range(self.max_defects + 1)]
        overflow = max(0.0, 1.0 - sum(count_pmf))
        w_distribution = {k: count_pmf[k] for k in range(self.max_defects + 1)}
        w_distribution[self.max_defects + 1] = overflow

        distributions: Dict[str, Dict[int, float]] = {
            self.count_variable.name: w_distribution
        }
        location_distribution = {
            index + 1: probabilities[index] for index in range(self.num_components)
        }
        for variable in self.location_variables:
            distributions[variable.name] = dict(location_distribution)
        return distributions

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "GeneralizedFaultTree(C=%d, M=%d, filters=%d, gates=%d)" % (
            self.num_components,
            self.max_defects,
            len(self.mv_circuit.filters),
            self.mv_circuit.num_gates,
        )

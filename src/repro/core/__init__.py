"""The combinatorial yield-evaluation method and its baselines.

* :class:`~repro.core.problem.YieldProblem` — fault tree + defect model;
* :class:`~repro.core.gfunction.GeneralizedFaultTree` — the function
  ``G(w, v_1 .. v_M)`` of Theorem 1;
* :class:`~repro.core.method.YieldAnalyzer` /
  :func:`~repro.core.method.evaluate_yield` — the full pipeline;
* :class:`~repro.core.montecarlo.MonteCarloYieldEstimator` — the simulation
  baseline;
* :func:`~repro.core.exact.exact_yield` — enumeration-based cross-check for
  small systems.
"""

from .exact import exact_conditional_yield, exact_yield
from .gfunction import GeneralizedFaultTree, GFunctionError
from .method import CompiledYield, YieldAnalyzer, evaluate_yield
from .montecarlo import MonteCarloYieldEstimator, estimate_yield_montecarlo
from .problem import ProblemError, YieldProblem
from .results import ExactResult, MonteCarloResult, StageTimings, YieldResult

__all__ = [
    "YieldProblem",
    "ProblemError",
    "GeneralizedFaultTree",
    "GFunctionError",
    "YieldAnalyzer",
    "CompiledYield",
    "evaluate_yield",
    "MonteCarloYieldEstimator",
    "estimate_yield_montecarlo",
    "exact_yield",
    "exact_conditional_yield",
    "YieldResult",
    "MonteCarloResult",
    "ExactResult",
    "StageTimings",
]

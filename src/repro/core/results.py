"""Result records produced by the yield analyses.

Every analysis route (combinatorial method, Monte-Carlo simulation, exact
enumeration) returns a small frozen record so that benchmark harnesses and
reports can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple


@dataclass(frozen=True)
class StageTimings:
    """Wall-clock seconds spent in each stage of the combinatorial method."""

    ordering: float = 0.0
    robdd_build: float = 0.0
    mdd_conversion: float = 0.0
    probability: float = 0.0

    @property
    def total(self) -> float:
        """Total wall-clock time of the pipeline."""
        return self.ordering + self.robdd_build + self.mdd_conversion + self.probability


@dataclass(frozen=True)
class YieldResult:
    """Outcome of the combinatorial yield evaluation (the paper's Table 4 row).

    Attributes
    ----------
    yield_estimate:
        The pessimistic estimate ``Y_M``; the true yield lies in
        ``[yield_estimate, yield_estimate + error_bound]``.
    error_bound:
        The truncation error bound ``1 - sum_{k<=M} Q'_k``.
    truncation:
        The number of lethal defects analyzed, ``M``.
    probability_not_functioning:
        ``P(G = 1)``, i.e. ``1 - Y_M``.
    coded_robdd_size:
        Number of nodes of the final coded ROBDD.
    robdd_peak:
        Maximum number of live ROBDD nodes during the build (0 when peak
        tracking is disabled).
    romdd_size:
        Number of nodes of the ROMDD used for the probability traversal.
    ordering:
        The ``(mv, bits)`` strategy pair that was used.
    variable_order:
        The multiple-valued variable names, top of the ROMDD first.
    timings:
        Per-stage wall-clock timings.
    extra:
        Free-form diagnostic values (e.g. allocated node counts).
    """

    name: str
    yield_estimate: float
    error_bound: float
    truncation: int
    probability_not_functioning: float
    coded_robdd_size: int
    robdd_peak: int
    romdd_size: int
    ordering: Tuple[str, str]
    variable_order: Tuple[str, ...]
    timings: StageTimings
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def yield_upper_bound(self) -> float:
        """The upper end of the guaranteed yield interval."""
        return min(1.0, self.yield_estimate + self.error_bound)

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return (
            "%s: yield >= %.6f (error <= %.2e, M=%d, ROBDD=%d, ROMDD=%d, %.2fs)"
            % (
                self.name,
                self.yield_estimate,
                self.error_bound,
                self.truncation,
                self.coded_robdd_size,
                self.romdd_size,
                self.timings.total,
            )
        )


@dataclass(frozen=True)
class YieldGradients:
    """Analytic derivatives of one defect model's yield estimate ``Y_M``.

    Produced by :meth:`repro.core.method.CompiledYield.gradients_many`: one
    forward plus one reverse pass over the linearized ROMDD, then the chain
    rule through the lethal-defect model, instead of one perturbed sweep per
    component.

    Attributes
    ----------
    name:
        The problem label the gradients belong to.
    truncation:
        The truncation level ``M`` the structure was compiled for.
    probability_not_functioning:
        ``P(G = 1)`` at the unperturbed defect model.
    yield_estimate:
        ``Y_M = 1 - P(G = 1)`` (same value :meth:`evaluate_many` reports).
    d_yield_d_raw:
        ``{component: dY_M / dP_i}`` — the exact derivative of the estimate
        with respect to the component's raw per-defect lethal-hit
        probability ``P_i`` (all other ``P_j`` held fixed; the induced
        changes of the lethality ``P_L``, the lethal count distribution
        ``Q'_k`` and the conditional hit vector ``P'`` are all accounted
        for).
    sensitivity:
        ``{component: P_i * dY_M / dP_i}`` — the derivative with respect to
        a *relative* change of ``P_i``, i.e. the analytic limit of the
        finite-difference measure ``(Y(P_i(1+h)) - Y(P_i(1-h))) / 2h``.
    d_failure_d_count:
        ``dP(G=1) / dP(w = k)`` for ``k = 0 .. M+1`` (diagram-level).
    d_failure_d_location:
        ``{component: sum_l dP(G=1) / dP(v_l = i)}`` (diagram-level).
    """

    name: str
    truncation: int
    probability_not_functioning: float
    yield_estimate: float
    d_yield_d_raw: Dict[str, float]
    sensitivity: Dict[str, float]
    d_failure_d_count: Tuple[float, ...]
    d_failure_d_location: Dict[str, float]

    def ranking(self) -> Tuple[Tuple[str, float], ...]:
        """Components most sensitive first (most negative ``sensitivity``)."""
        return tuple(sorted(self.sensitivity.items(), key=lambda item: item[1]))


@dataclass(frozen=True)
class MonteCarloResult:
    """Outcome of the Monte-Carlo yield estimation baseline."""

    name: str
    yield_estimate: float
    standard_error: float
    samples: int
    confidence: float
    confidence_interval: Tuple[float, float]
    elapsed_seconds: float

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        low, high = self.confidence_interval
        return "%s: yield ~= %.6f  [%.6f, %.6f] @%.0f%% (%d samples, %.2fs)" % (
            self.name,
            self.yield_estimate,
            low,
            high,
            100.0 * self.confidence,
            self.samples,
            self.elapsed_seconds,
        )


@dataclass(frozen=True)
class ExactResult:
    """Outcome of the exact (enumeration-based) yield computation."""

    name: str
    yield_estimate: float
    error_bound: float
    truncation: int
    conditional_yields: Tuple[float, ...]

    def summary(self) -> str:
        """Return a one-line human-readable summary."""
        return "%s: yield >= %.6f (error <= %.2e, M=%d, exact enumeration)" % (
            self.name,
            self.yield_estimate,
            self.error_bound,
            self.truncation,
        )

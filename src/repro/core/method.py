"""The combinatorial yield-evaluation method (the paper's contribution).

:class:`YieldAnalyzer` wires the full pipeline of Section 2 together:

1. map the defect model to the lethal-defect model ``(Q'_k, P'_i)``;
2. pick the truncation level ``M`` from the error budget ``epsilon``
   (or accept an explicit ``M``);
3. build the generalized fault tree ``G(w, v_1 .. v_M)`` and its gate-level
   description in binary logic;
4. compute the grouped variable order with the requested heuristics;
5. build the coded ROBDD of ``G`` gate by gate (optionally improving the
   order in place by group-preserving sifting, see
   :mod:`repro.engine.reorder`);
6. convert the coded ROBDD into the ROMDD (bottom-up layer procedure);
7. evaluate ``P(G = 1)`` by the depth-first probability traversal and return
   ``Y_M = 1 - P(G = 1)`` together with the error bound and the size /
   timing statistics the paper reports.

Steps 3-6 only depend on the fault-tree *structure*, the truncation level
and the ordering — not on the defect densities.  :meth:`YieldAnalyzer.compile`
exposes them as a reusable :class:`CompiledYield` so that sweeps over defect
densities re-run only step 7; the batch front-end for that reuse is
:class:`repro.engine.service.SweepService`.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..bdd.builder import CircuitBDDBuilder
from ..bdd.manager import BDDManager
from ..distributions import thinned_count_columns
from ..engine.batch import LinearizedDiagram
from ..mdd.from_bdd import convert_bdd_to_mdd
from ..mdd.probability import (
    LevelProfile,
    columns_for_models,
    columns_from_matrices,
    model_matrices_from_columns,
    validate_model_columns,
)
from ..obs import trace as obs_trace
from ..ordering.grouped import GroupedVariableOrder
from ..ordering.strategies import OrderingSpec, compute_grouped_order
from .gfunction import GeneralizedFaultTree, GFunctionError
from .problem import YieldProblem
from .results import StageTimings, YieldGradients, YieldResult


class CompiledYield:
    """The decision-diagram structure of one (problem, M, ordering) triple.

    Holds everything of the pipeline that is independent of the defect
    densities: the generalized fault tree, the grouped variable order, the
    ROMDD and the build statistics.  :meth:`evaluate` runs only the final
    probability traversal, so one compiled structure can serve a whole sweep
    of defect models over the same fault tree.

    Evaluation and differentiation no longer touch the MDD node tables at
    all: they run over the linearized arrays plus the
    :class:`~repro.mdd.probability.LevelProfile` captured at compile time.
    A structure restored from the persistent store
    (:mod:`repro.engine.store`) therefore works with ``gfunction``,
    ``grouped_order`` and ``mdd_manager`` all ``None`` — it carries the
    linearized arrays, the profile and the flat identity fields instead.
    """

    def __init__(
        self,
        *,
        gfunction: Optional[GeneralizedFaultTree],
        grouped_order: Optional[GroupedVariableOrder],
        mdd_manager,
        mdd_root: Optional[int],
        truncation: int,
        coded_robdd_size: int,
        robdd_peak: int,
        robdd_allocated: int,
        gates_processed: int,
        romdd_size: int,
        ordering: OrderingSpec,
        build_timings: Tuple[float, float, float],
        sift_swaps: int = 0,
        reorder_seconds: float = 0.0,
        reorder_triggers: int = 0,
        component_names: Optional[Tuple[str, ...]] = None,
        count_variable_name: Optional[str] = None,
        location_variable_names: Optional[Tuple[str, ...]] = None,
        variable_names: Optional[Tuple[str, ...]] = None,
        binary_variables: Optional[int] = None,
        level_profile: Optional[LevelProfile] = None,
        mdd_allocated: Optional[int] = None,
        linearized: Optional[LinearizedDiagram] = None,
        from_store: bool = False,
        kernel_cache_stats: Optional[Dict[str, Dict[str, int]]] = None,
    ) -> None:
        self.gfunction = gfunction
        self.grouped_order = grouped_order
        self.mdd_manager = mdd_manager
        self.mdd_root = mdd_root
        self.truncation = truncation
        self.coded_robdd_size = coded_robdd_size
        self.robdd_peak = robdd_peak
        self.robdd_allocated = robdd_allocated
        self.gates_processed = gates_processed
        self.romdd_size = romdd_size
        self.ordering = ordering
        self.build_timings = build_timings
        self.sift_swaps = sift_swaps
        #: Wall-clock seconds spent in dynamic reordering during the build.
        self.reorder_seconds = reorder_seconds
        #: Times the kernel's checkpoint fired mid-build reordering.
        self.reorder_triggers = reorder_triggers
        #: Flat identity fields (derived from the heavyweight objects when
        #: they are present; supplied explicitly by the store's restore).
        if gfunction is not None:
            component_names = gfunction.component_names
            count_variable_name = gfunction.count_variable.name
            location_variable_names = tuple(
                v.name for v in gfunction.location_variables
            )
        self.component_names = tuple(component_names or ())
        self.count_variable_name = count_variable_name or "w"
        self.location_variable_names = tuple(location_variable_names or ())
        if grouped_order is not None:
            variable_names = grouped_order.variable_names
            binary_variables = len(grouped_order.flat_bit_order())
        self.variable_names = tuple(variable_names or ())
        self.binary_variables = int(binary_variables or 0)
        if mdd_manager is not None:
            if mdd_allocated is None:
                mdd_allocated = mdd_manager.num_nodes_allocated
            if level_profile is None:
                level_profile = LevelProfile.from_manager(
                    mdd_manager, self.count_variable_name
                )
        self.mdd_allocated = int(mdd_allocated or 0)
        self.level_profile = level_profile
        #: Per-manager computed-table totals captured right after the build
        #: (``{"bdd": {...}, "mdd": {...}}``); not persisted by the store.
        self.kernel_cache_stats = kernel_cache_stats
        #: Whether this structure was warm-started from the persistent store,
        #: and whether that load memory-mapped the fused arrays (store v2).
        self.from_store = from_store
        self.store_mmapped = False
        #: Number of :meth:`evaluate` calls served by this structure.
        self.evaluations = 0
        #: Number of defect models differentiated by :meth:`gradients_many`.
        self.gradient_evaluations = 0
        #: Linearized-array cache of the ROMDD plus its reuse counters.
        self._linearized: Optional[LinearizedDiagram] = linearized
        self.linearize_builds = 0
        self.linearize_reuses = 0

    def linearized(self) -> LinearizedDiagram:
        """Return the flat arrays of the ROMDD, linearizing at most once.

        The compiled diagram never mutates, so repeat sweeps over the same
        structure skip linearization entirely (``linearize_reuses`` counts
        the skips).  Store-restored structures arrive with the arrays
        pre-built (the store persists them), so they never linearize.
        """
        if self._linearized is None:
            if self.mdd_manager is None:
                raise RuntimeError(
                    "structure has neither an MDD manager nor linearized arrays"
                )
            with obs_trace.span("kernel.linearize", nodes=self.romdd_size):
                self._linearized = LinearizedDiagram.from_mdd(
                    self.mdd_manager, self.mdd_root
                )
            self.linearize_builds += 1
        else:
            self.linearize_reuses += 1
        return self._linearized

    def evaluate(self, problem: YieldProblem, *, reused: bool = False) -> YieldResult:
        """Run the probability traversal for ``problem`` on this structure.

        ``problem`` must share the fault-tree structure and component names
        the structure was compiled from; only its defect model (densities,
        lethality, count distribution) may differ.  ``reused`` marks the
        result's ``extra`` diagnostics so reports can tell a fresh build
        from a structure-cache hit.
        """
        return self.evaluate_many([problem], reused=reused)[0]

    def evaluate_many(
        self,
        problems: Sequence[YieldProblem],
        *,
        reused: bool = False,
        use_numpy: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> List[YieldResult]:
        """Evaluate every defect model in one batched bottom-up pass.

        All ``problems`` must share the fault-tree structure and component
        names the structure was compiled from; only their defect models may
        differ.  The ROMDD is walked **once** for the whole batch (see
        :mod:`repro.engine.batch`), so K models cost one linearized pass
        instead of K traversals.  ``kernel`` rides through to the pass
        (and steers the column layout: matrix columns for the vectorized
        and native kernels, tuple rows for the pure-Python one).  The
        first result carries the build diagnostics (``reused`` flag and
        build timings); the rest are marked as structure reuses,
        mirroring the per-point route.
        """
        problems = list(problems)
        if not problems:
            return []

        t0 = time.perf_counter()
        linearized = self.linearized()
        if kernel in (None, "auto"):
            use_numpy = linearized.resolve_numpy(use_numpy, len(problems))
        else:
            use_numpy = kernel != "python"
        lethal_distributions, columns = self._model_columns(
            problems, linearized, as_matrix=use_numpy
        )
        probabilities_failed = linearized.evaluate(
            columns, len(problems), use_numpy=use_numpy, kernel=kernel
        )
        elapsed = time.perf_counter() - t0
        return self.package_results(
            problems,
            lethal_distributions,
            probabilities_failed,
            reused=reused,
            per_point=elapsed / len(problems),
        )

    def package_results(
        self,
        problems: Sequence[YieldProblem],
        lethal_distributions: Sequence[object],
        probabilities_failed: Sequence[float],
        *,
        reused: bool = False,
        per_point: float = 0.0,
    ) -> List[YieldResult]:
        """Turn raw traversal probabilities into :class:`YieldResult` records.

        Split out of :meth:`evaluate_many` so dispatch routes that run the
        kernel elsewhere (a worker shard writing probabilities into a
        shared-memory result vector) can package the results in the parent
        without re-running the pass.
        """
        self.evaluations += len(problems)
        ordering_t, build_t, conversion_t = self.build_timings
        results: List[YieldResult] = []
        for index, (problem, lethal, probability_failed) in enumerate(
            zip(problems, lethal_distributions, probabilities_failed)
        ):
            point_reused = reused if index == 0 else True
            timings = StageTimings(
                ordering=0.0 if point_reused else ordering_t,
                robdd_build=0.0 if point_reused else build_t,
                mdd_conversion=0.0 if point_reused else conversion_t,
                probability=per_point,
            )
            extra = {
                "robdd_allocated": float(self.robdd_allocated),
                "mdd_allocated": float(self.mdd_allocated),
                "binary_variables": float(self.binary_variables),
                "gates_processed": float(self.gates_processed),
                "structure_reused": 1.0 if point_reused else 0.0,
                "batched_models": float(len(problems)),
            }
            if self.from_store:
                extra["structure_from_store"] = 1.0
            if self.ordering.sift:
                extra["sift_swaps"] = float(self.sift_swaps)
            if self.reorder_triggers:
                extra["reorder_triggers"] = float(self.reorder_triggers)
            results.append(
                YieldResult(
                    name=problem.name,
                    yield_estimate=1.0 - probability_failed,
                    error_bound=lethal.tail(self.truncation),
                    truncation=self.truncation,
                    probability_not_functioning=probability_failed,
                    coded_robdd_size=self.coded_robdd_size,
                    robdd_peak=self.robdd_peak,
                    romdd_size=self.romdd_size,
                    ordering=(self.ordering.mv, self.ordering.bits),
                    variable_order=self.variable_names,
                    timings=timings,
                    extra=extra,
                )
            )
        return results

    def _model_column_lists(self, problems: Sequence[YieldProblem]):
        """Validated per-model probability columns for a batch of models.

        Returns ``(lethal_distributions, count_columns, location_columns)``
        — one ``[Q'_0 .. Q'_M, overflow]`` column and one ``[P'_1 .. P'_C]``
        column per model, both validated (non-negative, sum to 1).
        """
        lethal_distributions = [p.lethal_defect_distribution() for p in problems]
        location_columns: List[List[float]] = []
        expected = len(self.component_names)
        for problem in problems:
            probabilities = [
                float(p) for p in problem.lethal_component_probabilities()
            ]
            if len(probabilities) != expected:
                raise GFunctionError(
                    "expected %d component probabilities, got %d"
                    % (expected, len(probabilities))
                )
            total = sum(probabilities)
            if abs(total - 1.0) > 1e-6:
                raise GFunctionError(
                    "lethal component probabilities must sum to 1, got %g" % total
                )
            location_columns.append(probabilities)
        count_columns = thinned_count_columns(lethal_distributions, self.truncation)
        validate_model_columns(count_columns, what="count")
        validate_model_columns(location_columns, what="location")
        return lethal_distributions, count_columns, location_columns

    def model_matrices(
        self,
        problems: Sequence[YieldProblem],
        *,
        out_count=None,
        out_location=None,
    ):
        """Assemble the two shared ``cardinality x K`` model matrices.

        Returns ``(lethal_distributions, count_matrix, location_matrix)``
        for a batch of defect models — the exact float64 inputs of the
        linearized kernel.  ``out_count`` / ``out_location`` let callers
        assemble directly into preallocated buffers (the sweep service
        points them at a shared-memory block, so worker shards read the
        matrices zero-copy instead of unpickling them).
        """
        lethal_distributions, count_columns, location_columns = (
            self._model_column_lists(problems)
        )
        count_matrix, location_matrix = model_matrices_from_columns(
            count_columns,
            location_columns,
            out_count=out_count,
            out_location=out_location,
        )
        return lethal_distributions, count_matrix, location_matrix

    def evaluate_probabilities(
        self,
        count_matrix,
        location_matrix,
        num_models: int,
        *,
        use_numpy: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> List[float]:
        """Run only the kernel pass over pre-assembled model matrices.

        The shared-memory shard protocol uses this in workers: the parent
        assembles (and validates) the matrices once for the whole group,
        the worker maps them out of a shared-memory block, slices its model
        range and runs the pass on whatever kernel the payload requested
        (each worker process resolves the native backend independently) —
        no problems, no distributions, no pickled columns.
        """
        linearized = self.linearized()
        columns = columns_from_matrices(
            linearized, self.level_profile, count_matrix, location_matrix
        )
        return linearized.evaluate(
            columns, num_models, use_numpy=use_numpy, kernel=kernel
        )

    def _model_columns(
        self,
        problems: Sequence[YieldProblem],
        linearized: LinearizedDiagram,
        *,
        as_matrix: bool,
    ):
        """Vectorized model-column assembly for a batch of defect models.

        Builds the two per-level probability inputs of the linearized kernel
        in one shot — a ``(M + 2) x K`` count matrix and a ``C x K``
        location matrix shared by every location level — instead of one
        probability dict per (model, variable) pair.  The floats are the
        same values the dict route produced (plain sums, same overflow
        clamp), so evaluation stays bit-for-bit identical; only the Python
        dict churn around them is gone.

        Returns ``(lethal_distributions, columns)`` where ``columns`` maps
        every level of the linearized diagram to its probability rows —
        float64 matrices when ``as_matrix``, tuple rows otherwise.
        """
        if as_matrix:
            lethal_distributions, count_matrix, location_matrix = (
                self.model_matrices(problems)
            )
            columns = columns_from_matrices(
                linearized, self.level_profile, count_matrix, location_matrix
            )
            return lethal_distributions, columns
        lethal_distributions, count_columns, location_columns = (
            self._model_column_lists(problems)
        )
        columns = columns_for_models(
            linearized,
            self.level_profile,
            count_columns,
            location_columns,
            as_matrix=False,
        )
        return lethal_distributions, columns


    def gradients_many(
        self,
        problems: Sequence[YieldProblem],
        *,
        use_numpy: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> List[YieldGradients]:
        """Differentiate ``Y_M`` for every defect model in one extra pass.

        Runs the linearized forward pass plus one reverse (adjoint) pass —
        K models at once — to obtain the exact diagram-level gradients
        ``dP(G=1)/dP(w=k)`` and ``dP(G=1)/dP(v_l=i)``, then closes the chain
        rule through the lethal-defect model:

        * the conditional hit probabilities ``P'_j = P_j / P_L`` give
          ``dP'_j / dP_i = (delta_ij - P'_j) / P_L``;
        * the thinned count distribution satisfies the exact identity
          ``dQ'_k / dP_L = (k Q'_k - (k+1) Q'_{k+1}) / P_L`` (differentiate
          ``Q'_k = sum_n Q_n C(n,k) p^k (1-p)^{n-k}`` and use
          ``(n-k) C(n,k) = (k+1) C(n,k+1)``), which holds for *any* count
          distribution under binomial thinning — so no per-family derivative
          code is needed;
        * the saturated entry ``P(w = M+1) = P(N' > M)`` telescopes to
          ``d/dP_L = (M+1) Q'_{M+1} / P_L``.

        The result is ``dY_M/dP_i`` for every component of every model — the
        quantity the finite-difference importance route needed two full
        evaluations per component to approximate.
        """
        problems = list(problems)
        if not problems:
            return []
        linearized = self.linearized()
        if kernel in (None, "auto"):
            use_numpy = linearized.resolve_numpy(use_numpy, len(problems))
        else:
            use_numpy = kernel != "python"
        lethal_distributions, columns = self._model_columns(
            problems, linearized, as_matrix=use_numpy
        )
        probabilities_failed, level_gradients = linearized.backward(
            columns, len(problems), use_numpy=use_numpy, kernel=kernel
        )
        self.gradient_evaluations += len(problems)

        names = self.component_names
        truncation = self.truncation
        profile = self.level_profile
        # per-level gradient rows mapped back to the variables; levels the
        # diagram skips have identically-zero gradients (their probability
        # entries are never read), matching the old dict route's zero fill
        count_level = (
            profile.level_of(self.count_variable_name) if profile is not None else None
        )
        count_rows = (
            level_gradients.get(count_level) if count_level is not None else None
        )
        location_row_sets = []
        for variable_name in self.location_variable_names:
            level = profile.level_of(variable_name) if profile is not None else None
            rows = level_gradients.get(level) if level is not None else None
            if rows is not None:
                location_row_sets.append(rows)
        out: List[YieldGradients] = []
        for model, (problem, lethal, probability_failed) in enumerate(
            zip(problems, lethal_distributions, probabilities_failed)
        ):
            lethality = problem.lethality
            conditional = problem.lethal_component_probabilities()
            raw = problem.components.raw_probabilities()

            # diagram-level gradients: the count variable and the per-defect
            # location variables (summed over defect positions l, in
            # v_1 .. v_M order so the float accumulation matches the
            # per-variable route bit for bit)
            if count_rows is not None:
                d_failure_d_count = tuple(
                    count_rows[value][model] for value in range(truncation + 2)
                )
            else:
                d_failure_d_count = (0.0,) * (truncation + 2)
            location_sums = [0.0] * len(names)
            for rows in location_row_sets:
                for index in range(len(names)):
                    location_sums[index] += rows[index][model]

            # chain rule through the thinned count distribution Q'_k(P_L)
            qprime = [lethal.pmf(k) for k in range(truncation + 2)]
            d_count_d_lethality = [
                (k * qprime[k] - (k + 1) * qprime[k + 1]) / lethality
                for k in range(truncation + 1)
            ]
            d_overflow_d_lethality = (truncation + 1) * qprime[truncation + 1] / lethality
            d_failure_d_lethality = sum(
                g * d for g, d in zip(d_failure_d_count, d_count_d_lethality)
            ) + d_failure_d_count[truncation + 1] * d_overflow_d_lethality

            # chain rule through the conditional hit vector P'_j(P_1..P_C)
            location_dot = sum(
                s * p for s, p in zip(location_sums, conditional)
            )
            d_yield_d_raw = {}
            sensitivity = {}
            for index, name in enumerate(names):
                d_failure = d_failure_d_lethality + (
                    location_sums[index] - location_dot
                ) / lethality
                d_yield_d_raw[name] = -d_failure
                sensitivity[name] = -d_failure * raw[index]
            out.append(
                YieldGradients(
                    name=problem.name,
                    truncation=truncation,
                    probability_not_functioning=probability_failed,
                    yield_estimate=1.0 - probability_failed,
                    d_yield_d_raw=d_yield_d_raw,
                    sensitivity=sensitivity,
                    d_failure_d_count=d_failure_d_count,
                    d_failure_d_location=dict(zip(names, location_sums)),
                )
            )
        return out


class YieldAnalyzer:
    """Evaluates the yield of a fault-tolerant SoC with the combinatorial method.

    Parameters
    ----------
    ordering:
        The variable-ordering strategy.  Defaults to the pair the paper found
        best: weight heuristic for the multiple-valued variables, most
        significant bit first inside each group.  Pass a spec with
        ``sift=True`` to additionally run dynamic reordering on the coded
        ROBDD before conversion.
    epsilon:
        Absolute error budget used to select the truncation level ``M`` when
        :meth:`evaluate` is not given an explicit ``max_defects``.
    track_peak:
        Record the live ROBDD peak (the paper's "ROBDD peak" column).  Costs
        one reachability sweep every ``peak_stride`` gates.
    peak_stride:
        Stride for peak sampling.
    node_limit:
        Optional cap on allocated ROBDD nodes; exceeding it raises
        :class:`repro.bdd.builder.ResourceLimitExceeded` (the paper's
        "failed" entries).
    reorder_on_growth:
        Optional live-node threshold after which the kernel's checkpoint
        triggers group-preserving sifting *during* the coded-ROBDD build
        (see :meth:`repro.engine.kernel.DDKernel.set_reorder_trigger`).
        Keeps ballooning intermediate diagrams in check before the final
        sift/conversion.  ``None`` disables mid-build reordering.
    """

    def __init__(
        self,
        ordering: Optional[OrderingSpec] = None,
        *,
        epsilon: float = 1e-4,
        track_peak: bool = False,
        peak_stride: int = 1,
        node_limit: Optional[int] = None,
        reorder_on_growth: Optional[int] = None,
    ) -> None:
        self.ordering = ordering or OrderingSpec("w", "ml")
        self.epsilon = float(epsilon)
        self.track_peak = track_peak
        self.peak_stride = peak_stride
        self.node_limit = node_limit
        self.reorder_on_growth = reorder_on_growth

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        problem: YieldProblem,
        *,
        max_defects: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> YieldResult:
        """Run the full method on ``problem`` and return a :class:`YieldResult`.

        ``max_defects`` overrides the error-driven choice of ``M``; when it is
        given, the reported error bound is still the exact tail mass beyond
        it, so the result remains a guaranteed lower bound on the yield.
        """
        compiled = self.compile(problem, max_defects=max_defects, epsilon=epsilon)
        return compiled.evaluate(problem)

    def compile(
        self,
        problem: YieldProblem,
        *,
        max_defects: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> CompiledYield:
        """Build the reusable decision-diagram structure for ``problem``.

        Runs steps 3-6 of the pipeline (fault-tree generalization, ordering,
        coded ROBDD, optional sifting, ROMDD conversion).  The returned
        :class:`CompiledYield` evaluates any defect model over the same
        fault-tree structure without rebuilding.
        """
        truncation = self._resolve_truncation(problem, max_defects, epsilon)
        return self.compile_for_truncation(problem, truncation)

    def compile_for_truncation(
        self, problem: YieldProblem, truncation: int
    ) -> CompiledYield:
        """Build the structure for an explicit truncation level ``M``."""
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, int(truncation)
        )

        t0 = time.perf_counter()
        with obs_trace.span("compile.ordering", strategy=self.ordering.key()):
            grouped_order = self._grouped_order(gfunction)
        t1 = time.perf_counter()

        with obs_trace.span("compile.robdd", truncation=int(truncation)) as robdd_span:
            bdd_manager, bdd_root, build_stats, grouped_order, trigger_state = (
                self._build_coded_robdd(gfunction, grouped_order)
            )
            sift_swaps = trigger_state["swaps"]
            reorder_seconds = trigger_state["seconds"]
            if self.ordering.sift:
                t_sift = time.perf_counter()
                grouped_order, pass_swaps = self._sift(
                    bdd_manager, bdd_root, grouped_order
                )
                reorder_seconds += time.perf_counter() - t_sift
                sift_swaps += pass_swaps
                build_stats.final_size = bdd_manager.size(bdd_root)
                if build_stats.final_size > build_stats.peak_live_nodes:
                    build_stats.peak_live_nodes = build_stats.final_size
            robdd_span.set(nodes=build_stats.final_size, sift_swaps=sift_swaps)
        t2 = time.perf_counter()

        with obs_trace.span("compile.romdd") as romdd_span:
            mdd_manager, mdd_root = convert_bdd_to_mdd(
                bdd_manager, bdd_root, grouped_order.groups
            )
            mdd_manager.ref(mdd_root)
            romdd_size = mdd_manager.size(mdd_root)
            romdd_span.set(nodes=romdd_size)
        t3 = time.perf_counter()

        return CompiledYield(
            gfunction=gfunction,
            grouped_order=grouped_order,
            mdd_manager=mdd_manager,
            mdd_root=mdd_root,
            truncation=int(truncation),
            coded_robdd_size=build_stats.final_size,
            robdd_peak=build_stats.peak_live_nodes if self.track_peak else 0,
            robdd_allocated=build_stats.allocated_nodes,
            gates_processed=build_stats.gates_processed,
            romdd_size=romdd_size,
            ordering=self.ordering,
            build_timings=(t1 - t0, t2 - t1, t3 - t2),
            sift_swaps=sift_swaps,
            reorder_seconds=reorder_seconds,
            reorder_triggers=trigger_state["triggers"],
            kernel_cache_stats={
                "bdd": bdd_manager.cache_totals(),
                "mdd": mdd_manager.cache_totals(),
            },
        )

    # ------------------------------------------------------------------ #
    # Partial pipelines (used by the size-comparison benchmarks)
    # ------------------------------------------------------------------ #

    def grouped_order_for(self, problem: YieldProblem, max_defects: int) -> GroupedVariableOrder:
        """Return the grouped variable order for the problem at truncation ``M``."""
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, max_defects
        )
        return self._grouped_order(gfunction)

    def diagram_sizes(
        self, problem: YieldProblem, *, max_defects: Optional[int] = None
    ) -> Tuple[int, int]:
        """Return ``(coded_robdd_size, romdd_size)`` without the probability pass.

        This is what Tables 2 and 3 of the paper compare across orderings.
        """
        truncation = self._resolve_truncation(problem, max_defects, None)
        compiled = self.compile_for_truncation(problem, truncation)
        return compiled.coded_robdd_size, compiled.romdd_size

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve_truncation(
        self,
        problem: YieldProblem,
        max_defects: Optional[int],
        epsilon: Optional[float],
    ) -> int:
        if max_defects is not None:
            return int(max_defects)
        budget = self.epsilon if epsilon is None else float(epsilon)
        return problem.lethal_defect_distribution().truncation_level(budget)

    def _grouped_order(self, gfunction: GeneralizedFaultTree) -> GroupedVariableOrder:
        binary_circuit = (
            gfunction.binary_circuit() if self.ordering.needs_circuit() else None
        )
        return compute_grouped_order(
            gfunction.count_variable,
            gfunction.location_variables,
            self.ordering,
            binary_circuit,
        )

    def _build_coded_robdd(
        self, gfunction: GeneralizedFaultTree, grouped_order: GroupedVariableOrder
    ):
        builder = CircuitBDDBuilder(
            grouped_order.flat_bit_order(),
            track_peak=self.track_peak,
            peak_stride=self.peak_stride,
            node_limit=self.node_limit,
        )
        manager = BDDManager(grouped_order.flat_bit_order())
        trigger_state = {
            "groups": grouped_order.groups,
            "swaps": 0,
            "triggers": 0,
            "seconds": 0.0,
        }
        if self.reorder_on_growth is not None:
            from ..engine.reorder import sift_grouped

            def mid_build_reorder(mgr) -> None:
                # the builder ref-protects every live gate function before
                # its checkpoint, so this is a safe point to reorder; the
                # group state threads through so later triggers (and the
                # final conversion) see the current order
                started = time.perf_counter()
                new_groups, stats = sift_grouped(mgr, trigger_state["groups"])
                trigger_state["groups"] = new_groups
                trigger_state["swaps"] += stats.swaps
                trigger_state["triggers"] += 1
                trigger_state["seconds"] += time.perf_counter() - started

            manager.set_reorder_trigger(
                mid_build_reorder, threshold=int(self.reorder_on_growth)
            )
        bdd_manager, bdd_root, build_stats = builder.build(
            gfunction.binary_circuit(), manager
        )
        bdd_manager.clear_reorder_trigger()
        if trigger_state["triggers"]:
            grouped_order = GroupedVariableOrder(trigger_state["groups"])
            build_stats.final_size = bdd_manager.size(bdd_root)
        return bdd_manager, bdd_root, build_stats, grouped_order, trigger_state

    def _sift(self, bdd_manager, bdd_root: int, grouped_order: GroupedVariableOrder):
        from ..engine.reorder import sift_grouped

        bdd_manager.ref(bdd_root)
        try:
            new_groups, stats = sift_grouped(
                bdd_manager,
                grouped_order.groups,
                converge=self.ordering.sift_converge,
                window=3 if self.ordering.sift_converge else 0,
            )
        finally:
            bdd_manager.deref(bdd_root)
        return GroupedVariableOrder(new_groups), stats.swaps


def evaluate_yield(
    problem: YieldProblem,
    *,
    epsilon: float = 1e-4,
    max_defects: Optional[int] = None,
    ordering: Optional[OrderingSpec] = None,
    track_peak: bool = False,
    node_limit: Optional[int] = None,
) -> YieldResult:
    """One-call convenience wrapper around :class:`YieldAnalyzer`."""
    analyzer = YieldAnalyzer(
        ordering,
        epsilon=epsilon,
        track_peak=track_peak,
        node_limit=node_limit,
    )
    return analyzer.evaluate(problem, max_defects=max_defects)

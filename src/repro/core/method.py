"""The combinatorial yield-evaluation method (the paper's contribution).

:class:`YieldAnalyzer` wires the full pipeline of Section 2 together:

1. map the defect model to the lethal-defect model ``(Q'_k, P'_i)``;
2. pick the truncation level ``M`` from the error budget ``epsilon``
   (or accept an explicit ``M``);
3. build the generalized fault tree ``G(w, v_1 .. v_M)`` and its gate-level
   description in binary logic;
4. compute the grouped variable order with the requested heuristics;
5. build the coded ROBDD of ``G`` gate by gate;
6. convert the coded ROBDD into the ROMDD (bottom-up layer procedure);
7. evaluate ``P(G = 1)`` by the depth-first probability traversal and return
   ``Y_M = 1 - P(G = 1)`` together with the error bound and the size /
   timing statistics the paper reports.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from ..bdd.builder import CircuitBDDBuilder
from ..mdd.from_bdd import convert_bdd_to_mdd
from ..mdd.probability import probability_of_one
from ..ordering.grouped import GroupedVariableOrder
from ..ordering.strategies import OrderingSpec, compute_grouped_order
from .gfunction import GeneralizedFaultTree
from .problem import YieldProblem
from .results import StageTimings, YieldResult


class YieldAnalyzer:
    """Evaluates the yield of a fault-tolerant SoC with the combinatorial method.

    Parameters
    ----------
    ordering:
        The variable-ordering strategy.  Defaults to the pair the paper found
        best: weight heuristic for the multiple-valued variables, most
        significant bit first inside each group.
    epsilon:
        Absolute error budget used to select the truncation level ``M`` when
        :meth:`evaluate` is not given an explicit ``max_defects``.
    track_peak:
        Record the live ROBDD peak (the paper's "ROBDD peak" column).  Costs
        one reachability sweep every ``peak_stride`` gates.
    peak_stride:
        Stride for peak sampling.
    node_limit:
        Optional cap on allocated ROBDD nodes; exceeding it raises
        :class:`repro.bdd.builder.ResourceLimitExceeded` (the paper's
        "failed" entries).
    """

    def __init__(
        self,
        ordering: Optional[OrderingSpec] = None,
        *,
        epsilon: float = 1e-4,
        track_peak: bool = False,
        peak_stride: int = 1,
        node_limit: Optional[int] = None,
    ) -> None:
        self.ordering = ordering or OrderingSpec("w", "ml")
        self.epsilon = float(epsilon)
        self.track_peak = track_peak
        self.peak_stride = peak_stride
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        problem: YieldProblem,
        *,
        max_defects: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> YieldResult:
        """Run the full method on ``problem`` and return a :class:`YieldResult`.

        ``max_defects`` overrides the error-driven choice of ``M``; when it is
        given, the reported error bound is still the exact tail mass beyond
        it, so the result remains a guaranteed lower bound on the yield.
        """
        lethal_distribution = problem.lethal_defect_distribution()
        if max_defects is None:
            budget = self.epsilon if epsilon is None else float(epsilon)
            truncation = lethal_distribution.truncation_level(budget)
        else:
            truncation = int(max_defects)
        error_bound = lethal_distribution.tail(truncation)

        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, truncation
        )

        t0 = time.perf_counter()
        grouped_order = self._grouped_order(gfunction)
        t1 = time.perf_counter()

        bdd_manager, bdd_root, build_stats = self._build_coded_robdd(
            gfunction, grouped_order
        )
        t2 = time.perf_counter()

        mdd_manager, mdd_root = convert_bdd_to_mdd(
            bdd_manager, bdd_root, grouped_order.groups
        )
        romdd_size = mdd_manager.size(mdd_root)
        t3 = time.perf_counter()

        distributions = gfunction.variable_distributions(
            lethal_distribution, problem.lethal_component_probabilities()
        )
        probability_failed = probability_of_one(mdd_manager, mdd_root, distributions)
        yield_estimate = 1.0 - probability_failed
        t4 = time.perf_counter()

        timings = StageTimings(
            ordering=t1 - t0,
            robdd_build=t2 - t1,
            mdd_conversion=t3 - t2,
            probability=t4 - t3,
        )
        return YieldResult(
            name=problem.name,
            yield_estimate=yield_estimate,
            error_bound=error_bound,
            truncation=truncation,
            probability_not_functioning=probability_failed,
            coded_robdd_size=build_stats.final_size,
            robdd_peak=build_stats.peak_live_nodes if self.track_peak else 0,
            romdd_size=romdd_size,
            ordering=(self.ordering.mv, self.ordering.bits),
            variable_order=grouped_order.variable_names,
            timings=timings,
            extra={
                "robdd_allocated": float(build_stats.allocated_nodes),
                "mdd_allocated": float(mdd_manager.num_nodes_allocated),
                "binary_variables": float(len(grouped_order.flat_bit_order())),
                "gates_processed": float(build_stats.gates_processed),
            },
        )

    # ------------------------------------------------------------------ #
    # Partial pipelines (used by the size-comparison benchmarks)
    # ------------------------------------------------------------------ #

    def grouped_order_for(self, problem: YieldProblem, max_defects: int) -> GroupedVariableOrder:
        """Return the grouped variable order for the problem at truncation ``M``."""
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, max_defects
        )
        return self._grouped_order(gfunction)

    def diagram_sizes(
        self, problem: YieldProblem, *, max_defects: Optional[int] = None
    ) -> Tuple[int, int]:
        """Return ``(coded_robdd_size, romdd_size)`` without the probability pass.

        This is what Tables 2 and 3 of the paper compare across orderings.
        """
        lethal_distribution = problem.lethal_defect_distribution()
        if max_defects is None:
            truncation = lethal_distribution.truncation_level(self.epsilon)
        else:
            truncation = int(max_defects)
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, truncation
        )
        grouped_order = self._grouped_order(gfunction)
        bdd_manager, bdd_root, build_stats = self._build_coded_robdd(
            gfunction, grouped_order
        )
        mdd_manager, mdd_root = convert_bdd_to_mdd(
            bdd_manager, bdd_root, grouped_order.groups
        )
        return build_stats.final_size, mdd_manager.size(mdd_root)

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _grouped_order(self, gfunction: GeneralizedFaultTree) -> GroupedVariableOrder:
        binary_circuit = (
            gfunction.binary_circuit() if self.ordering.needs_circuit() else None
        )
        return compute_grouped_order(
            gfunction.count_variable,
            gfunction.location_variables,
            self.ordering,
            binary_circuit,
        )

    def _build_coded_robdd(
        self, gfunction: GeneralizedFaultTree, grouped_order: GroupedVariableOrder
    ):
        builder = CircuitBDDBuilder(
            grouped_order.flat_bit_order(),
            track_peak=self.track_peak,
            peak_stride=self.peak_stride,
            node_limit=self.node_limit,
        )
        return builder.build(gfunction.binary_circuit())


def evaluate_yield(
    problem: YieldProblem,
    *,
    epsilon: float = 1e-4,
    max_defects: Optional[int] = None,
    ordering: Optional[OrderingSpec] = None,
    track_peak: bool = False,
    node_limit: Optional[int] = None,
) -> YieldResult:
    """One-call convenience wrapper around :class:`YieldAnalyzer`."""
    analyzer = YieldAnalyzer(
        ordering,
        epsilon=epsilon,
        track_peak=track_peak,
        node_limit=node_limit,
    )
    return analyzer.evaluate(problem, max_defects=max_defects)

"""The combinatorial yield-evaluation method (the paper's contribution).

:class:`YieldAnalyzer` wires the full pipeline of Section 2 together:

1. map the defect model to the lethal-defect model ``(Q'_k, P'_i)``;
2. pick the truncation level ``M`` from the error budget ``epsilon``
   (or accept an explicit ``M``);
3. build the generalized fault tree ``G(w, v_1 .. v_M)`` and its gate-level
   description in binary logic;
4. compute the grouped variable order with the requested heuristics;
5. build the coded ROBDD of ``G`` gate by gate (optionally improving the
   order in place by group-preserving sifting, see
   :mod:`repro.engine.reorder`);
6. convert the coded ROBDD into the ROMDD (bottom-up layer procedure);
7. evaluate ``P(G = 1)`` by the depth-first probability traversal and return
   ``Y_M = 1 - P(G = 1)`` together with the error bound and the size /
   timing statistics the paper reports.

Steps 3-6 only depend on the fault-tree *structure*, the truncation level
and the ordering — not on the defect densities.  :meth:`YieldAnalyzer.compile`
exposes them as a reusable :class:`CompiledYield` so that sweeps over defect
densities re-run only step 7; the batch front-end for that reuse is
:class:`repro.engine.service.SweepService`.
"""

from __future__ import annotations

import time
from typing import Optional, Tuple

from ..bdd.builder import CircuitBDDBuilder
from ..mdd.from_bdd import convert_bdd_to_mdd
from ..mdd.probability import probability_of_one
from ..ordering.grouped import GroupedVariableOrder
from ..ordering.strategies import OrderingSpec, compute_grouped_order
from .gfunction import GeneralizedFaultTree
from .problem import YieldProblem
from .results import StageTimings, YieldResult


class CompiledYield:
    """The decision-diagram structure of one (problem, M, ordering) triple.

    Holds everything of the pipeline that is independent of the defect
    densities: the generalized fault tree, the grouped variable order, the
    ROMDD and the build statistics.  :meth:`evaluate` runs only the final
    probability traversal, so one compiled structure can serve a whole sweep
    of defect models over the same fault tree.
    """

    def __init__(
        self,
        *,
        gfunction: GeneralizedFaultTree,
        grouped_order: GroupedVariableOrder,
        mdd_manager,
        mdd_root: int,
        truncation: int,
        coded_robdd_size: int,
        robdd_peak: int,
        robdd_allocated: int,
        gates_processed: int,
        romdd_size: int,
        ordering: OrderingSpec,
        build_timings: Tuple[float, float, float],
        sift_swaps: int = 0,
    ) -> None:
        self.gfunction = gfunction
        self.grouped_order = grouped_order
        self.mdd_manager = mdd_manager
        self.mdd_root = mdd_root
        self.truncation = truncation
        self.coded_robdd_size = coded_robdd_size
        self.robdd_peak = robdd_peak
        self.robdd_allocated = robdd_allocated
        self.gates_processed = gates_processed
        self.romdd_size = romdd_size
        self.ordering = ordering
        self.build_timings = build_timings
        self.sift_swaps = sift_swaps
        #: Number of :meth:`evaluate` calls served by this structure.
        self.evaluations = 0

    def evaluate(self, problem: YieldProblem, *, reused: bool = False) -> YieldResult:
        """Run the probability traversal for ``problem`` on this structure.

        ``problem`` must share the fault-tree structure and component names
        the structure was compiled from; only its defect model (densities,
        lethality, count distribution) may differ.  ``reused`` marks the
        result's ``extra`` diagnostics so reports can tell a fresh build
        from a structure-cache hit.
        """
        lethal_distribution = problem.lethal_defect_distribution()
        error_bound = lethal_distribution.tail(self.truncation)

        t0 = time.perf_counter()
        distributions = self.gfunction.variable_distributions(
            lethal_distribution, problem.lethal_component_probabilities()
        )
        probability_failed = probability_of_one(
            self.mdd_manager, self.mdd_root, distributions
        )
        yield_estimate = 1.0 - probability_failed
        t1 = time.perf_counter()
        self.evaluations += 1

        ordering_t, build_t, conversion_t = self.build_timings
        timings = StageTimings(
            ordering=0.0 if reused else ordering_t,
            robdd_build=0.0 if reused else build_t,
            mdd_conversion=0.0 if reused else conversion_t,
            probability=t1 - t0,
        )
        extra = {
            "robdd_allocated": float(self.robdd_allocated),
            "mdd_allocated": float(self.mdd_manager.num_nodes_allocated),
            "binary_variables": float(len(self.grouped_order.flat_bit_order())),
            "gates_processed": float(self.gates_processed),
            "structure_reused": 1.0 if reused else 0.0,
        }
        if self.ordering.sift:
            extra["sift_swaps"] = float(self.sift_swaps)
        return YieldResult(
            name=problem.name,
            yield_estimate=yield_estimate,
            error_bound=error_bound,
            truncation=self.truncation,
            probability_not_functioning=probability_failed,
            coded_robdd_size=self.coded_robdd_size,
            robdd_peak=self.robdd_peak,
            romdd_size=self.romdd_size,
            ordering=(self.ordering.mv, self.ordering.bits),
            variable_order=self.grouped_order.variable_names,
            timings=timings,
            extra=extra,
        )


class YieldAnalyzer:
    """Evaluates the yield of a fault-tolerant SoC with the combinatorial method.

    Parameters
    ----------
    ordering:
        The variable-ordering strategy.  Defaults to the pair the paper found
        best: weight heuristic for the multiple-valued variables, most
        significant bit first inside each group.  Pass a spec with
        ``sift=True`` to additionally run dynamic reordering on the coded
        ROBDD before conversion.
    epsilon:
        Absolute error budget used to select the truncation level ``M`` when
        :meth:`evaluate` is not given an explicit ``max_defects``.
    track_peak:
        Record the live ROBDD peak (the paper's "ROBDD peak" column).  Costs
        one reachability sweep every ``peak_stride`` gates.
    peak_stride:
        Stride for peak sampling.
    node_limit:
        Optional cap on allocated ROBDD nodes; exceeding it raises
        :class:`repro.bdd.builder.ResourceLimitExceeded` (the paper's
        "failed" entries).
    """

    def __init__(
        self,
        ordering: Optional[OrderingSpec] = None,
        *,
        epsilon: float = 1e-4,
        track_peak: bool = False,
        peak_stride: int = 1,
        node_limit: Optional[int] = None,
    ) -> None:
        self.ordering = ordering or OrderingSpec("w", "ml")
        self.epsilon = float(epsilon)
        self.track_peak = track_peak
        self.peak_stride = peak_stride
        self.node_limit = node_limit

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #

    def evaluate(
        self,
        problem: YieldProblem,
        *,
        max_defects: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> YieldResult:
        """Run the full method on ``problem`` and return a :class:`YieldResult`.

        ``max_defects`` overrides the error-driven choice of ``M``; when it is
        given, the reported error bound is still the exact tail mass beyond
        it, so the result remains a guaranteed lower bound on the yield.
        """
        compiled = self.compile(problem, max_defects=max_defects, epsilon=epsilon)
        return compiled.evaluate(problem)

    def compile(
        self,
        problem: YieldProblem,
        *,
        max_defects: Optional[int] = None,
        epsilon: Optional[float] = None,
    ) -> CompiledYield:
        """Build the reusable decision-diagram structure for ``problem``.

        Runs steps 3-6 of the pipeline (fault-tree generalization, ordering,
        coded ROBDD, optional sifting, ROMDD conversion).  The returned
        :class:`CompiledYield` evaluates any defect model over the same
        fault-tree structure without rebuilding.
        """
        truncation = self._resolve_truncation(problem, max_defects, epsilon)
        return self.compile_for_truncation(problem, truncation)

    def compile_for_truncation(
        self, problem: YieldProblem, truncation: int
    ) -> CompiledYield:
        """Build the structure for an explicit truncation level ``M``."""
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, int(truncation)
        )

        t0 = time.perf_counter()
        grouped_order = self._grouped_order(gfunction)
        t1 = time.perf_counter()

        bdd_manager, bdd_root, build_stats = self._build_coded_robdd(
            gfunction, grouped_order
        )
        sift_swaps = 0
        if self.ordering.sift:
            grouped_order, sift_swaps = self._sift(bdd_manager, bdd_root, grouped_order)
            build_stats.final_size = bdd_manager.size(bdd_root)
            if build_stats.final_size > build_stats.peak_live_nodes:
                build_stats.peak_live_nodes = build_stats.final_size
        t2 = time.perf_counter()

        mdd_manager, mdd_root = convert_bdd_to_mdd(
            bdd_manager, bdd_root, grouped_order.groups
        )
        mdd_manager.ref(mdd_root)
        romdd_size = mdd_manager.size(mdd_root)
        t3 = time.perf_counter()

        return CompiledYield(
            gfunction=gfunction,
            grouped_order=grouped_order,
            mdd_manager=mdd_manager,
            mdd_root=mdd_root,
            truncation=int(truncation),
            coded_robdd_size=build_stats.final_size,
            robdd_peak=build_stats.peak_live_nodes if self.track_peak else 0,
            robdd_allocated=build_stats.allocated_nodes,
            gates_processed=build_stats.gates_processed,
            romdd_size=romdd_size,
            ordering=self.ordering,
            build_timings=(t1 - t0, t2 - t1, t3 - t2),
            sift_swaps=sift_swaps,
        )

    # ------------------------------------------------------------------ #
    # Partial pipelines (used by the size-comparison benchmarks)
    # ------------------------------------------------------------------ #

    def grouped_order_for(self, problem: YieldProblem, max_defects: int) -> GroupedVariableOrder:
        """Return the grouped variable order for the problem at truncation ``M``."""
        gfunction = GeneralizedFaultTree(
            problem.fault_tree, problem.component_names, max_defects
        )
        return self._grouped_order(gfunction)

    def diagram_sizes(
        self, problem: YieldProblem, *, max_defects: Optional[int] = None
    ) -> Tuple[int, int]:
        """Return ``(coded_robdd_size, romdd_size)`` without the probability pass.

        This is what Tables 2 and 3 of the paper compare across orderings.
        """
        truncation = self._resolve_truncation(problem, max_defects, None)
        compiled = self.compile_for_truncation(problem, truncation)
        return compiled.coded_robdd_size, compiled.romdd_size

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #

    def _resolve_truncation(
        self,
        problem: YieldProblem,
        max_defects: Optional[int],
        epsilon: Optional[float],
    ) -> int:
        if max_defects is not None:
            return int(max_defects)
        budget = self.epsilon if epsilon is None else float(epsilon)
        return problem.lethal_defect_distribution().truncation_level(budget)

    def _grouped_order(self, gfunction: GeneralizedFaultTree) -> GroupedVariableOrder:
        binary_circuit = (
            gfunction.binary_circuit() if self.ordering.needs_circuit() else None
        )
        return compute_grouped_order(
            gfunction.count_variable,
            gfunction.location_variables,
            self.ordering,
            binary_circuit,
        )

    def _build_coded_robdd(
        self, gfunction: GeneralizedFaultTree, grouped_order: GroupedVariableOrder
    ):
        builder = CircuitBDDBuilder(
            grouped_order.flat_bit_order(),
            track_peak=self.track_peak,
            peak_stride=self.peak_stride,
            node_limit=self.node_limit,
        )
        return builder.build(gfunction.binary_circuit())

    def _sift(self, bdd_manager, bdd_root: int, grouped_order: GroupedVariableOrder):
        from ..engine.reorder import sift_grouped

        bdd_manager.ref(bdd_root)
        try:
            new_groups, stats = sift_grouped(bdd_manager, grouped_order.groups)
        finally:
            bdd_manager.deref(bdd_root)
        return GroupedVariableOrder(new_groups), stats.swaps


def evaluate_yield(
    problem: YieldProblem,
    *,
    epsilon: float = 1e-4,
    max_defects: Optional[int] = None,
    ordering: Optional[OrderingSpec] = None,
    track_peak: bool = False,
    node_limit: Optional[int] = None,
) -> YieldResult:
    """One-call convenience wrapper around :class:`YieldAnalyzer`."""
    analyzer = YieldAnalyzer(
        ordering,
        epsilon=epsilon,
        track_peak=track_peak,
        node_limit=node_limit,
    )
    return analyzer.evaluate(problem, max_defects=max_defects)

"""Monte-Carlo yield estimation (the baseline the paper's introduction discusses).

The introduction of the paper notes that simulation "is not severely limited
by the complexity of the system, but tends to be expensive and does not
provide strict error control".  This module implements that baseline so the
claim can be checked quantitatively: dies are sampled from the defect model
(number of defects from ``Q_k``, each defect independently lethal on
component ``i`` with probability ``P_i``), the structure function is
evaluated on every sampled die and the yield is the fraction of functioning
dies, reported with a confidence interval rather than a guaranteed bound.
"""

from __future__ import annotations

import math
import random
import time
from typing import List, Optional, Sequence, Tuple

from .problem import YieldProblem
from .results import MonteCarloResult

#: Two-sided standard-normal quantiles for the confidence levels we support.
_Z_VALUES = {
    0.90: 1.6448536269514722,
    0.95: 1.959963984540054,
    0.99: 2.5758293035489004,
}


class MonteCarloYieldEstimator:
    """Estimates the yield by direct simulation of the defect model.

    Parameters
    ----------
    samples:
        Number of dies to simulate.
    seed:
        Seed of the pseudo-random generator (simulations are reproducible for
        a fixed seed).
    confidence:
        Confidence level of the reported interval (0.90, 0.95 or 0.99).
    """

    def __init__(
        self, samples: int = 100_000, *, seed: Optional[int] = None, confidence: float = 0.95
    ) -> None:
        if samples < 1:
            raise ValueError("samples must be positive, got %d" % samples)
        if confidence not in _Z_VALUES:
            raise ValueError(
                "confidence must be one of %s" % sorted(_Z_VALUES.keys())
            )
        self.samples = int(samples)
        self.seed = seed
        self.confidence = float(confidence)

    def estimate(self, problem: YieldProblem) -> MonteCarloResult:
        """Simulate ``samples`` dies of ``problem`` and return the estimate."""
        rng = random.Random(self.seed)
        start = time.perf_counter()

        names = problem.component_names
        raw_probabilities = problem.components.raw_probabilities()
        cumulative = _cumulative(raw_probabilities)
        distribution = problem.defect_distribution

        # Pre-resolve the fault-tree evaluation interface once.
        fault_tree = problem.fault_tree
        tree_inputs = fault_tree.input_names

        functioning = 0
        for _ in range(self.samples):
            defect_count = distribution.sample(rng, 1)[0]
            failed = set()
            for _ in range(defect_count):
                hit = _sample_component(rng, cumulative)
                if hit is not None:
                    failed.add(names[hit])
            assignment = {name: (name in failed) for name in tree_inputs}
            if not fault_tree.evaluate_output(assignment, "F"):
                functioning += 1

        elapsed = time.perf_counter() - start
        estimate = functioning / float(self.samples)
        stderr = math.sqrt(max(estimate * (1.0 - estimate), 1e-12) / self.samples)
        z = _Z_VALUES[self.confidence]
        interval = (max(0.0, estimate - z * stderr), min(1.0, estimate + z * stderr))
        return MonteCarloResult(
            name=problem.name,
            yield_estimate=estimate,
            standard_error=stderr,
            samples=self.samples,
            confidence=self.confidence,
            confidence_interval=interval,
            elapsed_seconds=elapsed,
        )


def _cumulative(probabilities: Sequence[float]) -> List[float]:
    """Return the cumulative sums of the per-component lethal-hit probabilities."""
    cumulative: List[float] = []
    acc = 0.0
    for p in probabilities:
        acc += p
        cumulative.append(acc)
    return cumulative


def _sample_component(rng: random.Random, cumulative: Sequence[float]) -> Optional[int]:
    """Sample which component a defect lethally hits (``None`` = not lethal)."""
    u = rng.random()
    if u >= cumulative[-1]:
        return None
    # linear scan is fine: component counts are tens, not millions
    for index, threshold in enumerate(cumulative):
        if u < threshold:
            return index
    return None  # pragma: no cover - floating point guard


def estimate_yield_montecarlo(
    problem: YieldProblem,
    samples: int = 100_000,
    *,
    seed: Optional[int] = None,
    confidence: float = 0.95,
) -> MonteCarloResult:
    """One-call convenience wrapper around :class:`MonteCarloYieldEstimator`."""
    estimator = MonteCarloYieldEstimator(samples, seed=seed, confidence=confidence)
    return estimator.estimate(problem)

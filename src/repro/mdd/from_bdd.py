"""Conversion of a coded ROBDD into the ROMDD required by the yield method.

The paper's implementation strategy (Section 2, Fig. 3): it is most efficient
to *build* the decision diagram as a coded ROBDD — an ROBDD over binary
variables that encode the multiple-valued variables — and only at the end
convert it into the ROMDD on which the probability traversal runs.  The
conversion requires the binary variables of each multiple-valued variable to
be kept grouped in the ROBDD order, with the groups following the chosen
multiple-valued variable order.

The conversion processes the coded ROBDD layer by layer, bottom-up.  A
*layer* is the set of ROBDD nodes whose binary variable encodes a given
multiple-valued variable; its *entry nodes* are the nodes reached by edges
coming from other (higher) layers, plus the root.  For every entry node and
every value of the layer's variable, the group's code bits are "simulated"
downward through the layer to find the node reached; the ROMDD node for the
entry node has the (already converted) images of those reached nodes as
children.  Hash-consing in :class:`repro.mdd.manager.MDDManager` performs the
two reductions the paper describes (all-equal children collapse, structural
sharing), and unreachable nodes created through unused codewords are simply
never hit by the final size/probability traversals.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..bdd.manager import FALSE as BDD_FALSE
from ..bdd.manager import TRUE as BDD_TRUE
from ..bdd.manager import BDDManager
from ..faulttree.multivalued import MultiValuedVariable
from .manager import FALSE as MDD_FALSE
from .manager import TRUE as MDD_TRUE
from .manager import MDDError, MDDManager

#: A grouped order: each entry is ``(variable, bit_names_top_to_bottom)``.
GroupSpec = Sequence[Tuple[MultiValuedVariable, Sequence[str]]]


def _bit_positions(groups: GroupSpec) -> Dict[str, Tuple[int, int]]:
    """Map each bit name to ``(layer_index, msb_first_bit_position)``."""
    info: Dict[str, Tuple[int, int]] = {}
    for layer, (variable, bit_names) in enumerate(groups):
        canonical = {name: pos for pos, name in enumerate(variable.bit_names())}
        for name in bit_names:
            if name not in canonical:
                raise MDDError(
                    "bit %r does not belong to variable %r" % (name, variable.name)
                )
            if name in info:
                raise MDDError("bit %r appears in more than one group" % (name,))
            info[name] = (layer, canonical[name])
    return info


def _validate_grouping(bdd: BDDManager, groups: GroupSpec, bit_info) -> List[Tuple[int, int]]:
    """Check the ROBDD order keeps groups contiguous and in the group order.

    Returns, for every ROBDD level, the ``(layer, bit_position)`` pair.
    """
    per_level: List[Tuple[int, int]] = []
    previous_layer = -1
    seen_layers: Set[int] = set()
    for name in bdd.variable_order:
        if name not in bit_info:
            raise MDDError("ROBDD variable %r is not a bit of any group" % (name,))
        layer, bitpos = bit_info[name]
        if layer != previous_layer:
            if layer in seen_layers:
                raise MDDError(
                    "bits of variable %r are not contiguous in the ROBDD order"
                    % (groups[layer][0].name,)
                )
            if layer < previous_layer:
                raise MDDError(
                    "groups appear out of order in the ROBDD order (layer %d after %d)"
                    % (layer, previous_layer)
                )
            seen_layers.add(layer)
            previous_layer = layer
        per_level.append((layer, bitpos))
    expected_bits = sum(len(bits) for _, bits in groups)
    if len(per_level) != expected_bits:
        raise MDDError(
            "ROBDD order has %d variables but the groups define %d bits"
            % (len(per_level), expected_bits)
        )
    return per_level


def convert_bdd_to_mdd(
    bdd: BDDManager,
    root: int,
    groups: GroupSpec,
    mdd: Optional[MDDManager] = None,
) -> Tuple[MDDManager, int]:
    """Convert the coded ROBDD rooted at ``root`` into a ROMDD.

    Parameters
    ----------
    bdd:
        The manager holding the coded ROBDD.  Its variable order must consist
        exactly of the bits listed in ``groups``, contiguous per group and
        with the groups in order.
    root:
        Handle of the coded ROBDD to convert.
    groups:
        The multiple-valued variables (top to bottom) together with the names
        of their encoding bits in the order they appear in the ROBDD.
    mdd:
        Optional existing :class:`MDDManager` whose variable order matches
        ``groups``; a fresh one is created when omitted.

    Returns
    -------
    (MDDManager, int)
        The ROMDD manager and the handle of the converted function.
    """
    variables = [variable for variable, _ in groups]
    if mdd is None:
        mdd = MDDManager(variables)
    else:
        existing = [v.name for v in mdd.variables]
        if existing != [v.name for v in variables]:
            raise MDDError("supplied MDD manager has a different variable order")

    bit_info = _bit_positions(groups)
    per_level = _validate_grouping(bdd, groups, bit_info)

    mapping: Dict[int, int] = {BDD_FALSE: MDD_FALSE, BDD_TRUE: MDD_TRUE}
    if root <= BDD_TRUE:
        return mdd, mapping[root]

    def layer_of(node: int) -> int:
        return per_level[bdd.level(node)][0]

    # collect the entry nodes of every layer: the root plus every node whose
    # incoming edge crosses a layer boundary
    entries: Dict[int, Set[int]] = defaultdict(set)
    reachable = bdd.reachable(root)
    entries[layer_of(root)].add(root)
    for node in reachable:
        if node <= BDD_TRUE:
            continue
        node_layer = layer_of(node)
        for child in (bdd.low(node), bdd.high(node)):
            if child <= BDD_TRUE:
                continue
            if layer_of(child) != node_layer:
                entries[layer_of(child)].add(child)

    # bottom-up over the layers that actually have entry nodes
    for layer_index in sorted(entries.keys(), reverse=True):
        variable = variables[layer_index]
        for entry in entries[layer_index]:
            children: List[int] = []
            for value in variable.values:
                codeword = variable.code.codeword(value)
                current = entry
                while current > BDD_TRUE and per_level[bdd.level(current)][0] == layer_index:
                    bit_position = per_level[bdd.level(current)][1]
                    if codeword[bit_position]:
                        current = bdd.high(current)
                    else:
                        current = bdd.low(current)
                children.append(mapping[current])
            mapping[entry] = mdd.mk(layer_index, children)

    return mdd, mapping[root]

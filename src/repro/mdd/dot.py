"""Graphviz (DOT) export of ROMDDs, for documentation and debugging.

Edges leading to the same child are merged and labeled with the set of
values, matching the drawing convention of Fig. 2 of the paper.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional

from .manager import TRUE, MDDManager


def mdd_to_dot(manager: MDDManager, root: int, *, name: str = "romdd") -> str:
    """Return a DOT description of the ROMDD rooted at ``root``."""
    lines = ["digraph %s {" % name, "  rankdir=TB;"]
    lines.append('  node0 [label="0", shape=box];')
    lines.append('  node1 [label="1", shape=box];')
    reachable = sorted(manager.reachable(root))
    for handle in reachable:
        if handle <= TRUE:
            continue
        variable = manager.variable_at_level(manager.level(handle))
        lines.append('  node%d [label="%s", shape=circle];' % (handle, variable.name))
    for handle in reachable:
        if handle <= TRUE:
            continue
        variable = manager.variable_at_level(manager.level(handle))
        grouped = defaultdict(list)
        for value, child in zip(variable.values, manager.children(handle)):
            grouped[child].append(value)
        for child, values in grouped.items():
            label = ",".join(str(v) for v in values)
            lines.append('  node%d -> node%d [label="%s"];' % (handle, child, label))
    lines.append("}")
    return "\n".join(lines)


def write_mdd_dot(manager: MDDManager, root: int, path: str, *, name: Optional[str] = None) -> None:
    """Write the DOT description of the ROMDD rooted at ``root`` to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(mdd_to_dot(manager, root, name=name or "romdd"))

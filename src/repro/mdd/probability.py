"""Probability evaluation on ROMDDs.

This is the last step of the paper's method (Section 2): given the ROMDD of
``G(w, v_1 .. v_M)`` and the probability distribution of every (independent)
multiple-valued variable, compute ``P(G = 1)`` by a depth-first, left-most
traversal that assigns

* value 1 to the terminal labeled "1", value 0 to the terminal labeled "0";
* to every non-terminal node labeled with variable ``x`` the sum over its
  outgoing edges of ``P(x in edge values) * value(child)``.

The independence of ``W, V_1, ..., V_M`` plus the fact that a node's function
only depends on the variables below it make this single pass exact.  Skipped
variables contribute a factor of 1 because their value probabilities sum to
one, so no correction is needed for edges that jump levels.

Since the batched engine landed, the pass is executed by
:mod:`repro.engine.batch`: the diagram is linearized once into flat arrays
and :func:`probability_of_many` evaluates any number of defect models in a
single bottom-up sweep (no recursion, no memo dicts, optional numpy
vectorization).  :func:`probability_of_one` is the single-model wrapper; the
original recursive traversal survives as
:func:`probability_of_one_reference` because the equivalence tests pin the
batched kernel to it bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..engine.batch import HAVE_NUMPY, LinearizedDiagram
from .manager import FALSE, TRUE, MDDError, MDDManager

if HAVE_NUMPY:  # pragma: no branch - resolved once at import
    import numpy as _np
else:  # pragma: no cover - numpy is present on the supported hosts
    _np = None


class VariableDistributions:
    """Per-variable value probabilities for the ROMDD traversal.

    Parameters
    ----------
    manager:
        The ROMDD manager (provides the variables and their domains).
    distributions:
        Mapping from variable name to ``{value: probability}``.  Every domain
        value must be present; probabilities must be non-negative and sum to
        1 within a small tolerance.
    """

    def __init__(
        self, manager: MDDManager, distributions: Mapping[str, Mapping[int, float]]
    ) -> None:
        self._by_level: Dict[int, tuple] = {}
        for variable in manager.variables:
            if variable.name not in distributions:
                raise MDDError("missing distribution for variable %r" % (variable.name,))
            dist = distributions[variable.name]
            probs = []
            for value in variable.values:
                if value not in dist:
                    raise MDDError(
                        "distribution of %r missing value %r" % (variable.name, value)
                    )
                p = float(dist[value])
                if p < 0.0:
                    raise MDDError(
                        "negative probability %r for %r=%r" % (p, variable.name, value)
                    )
                probs.append(p)
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise MDDError(
                    "distribution of %r sums to %g, expected 1" % (variable.name, total)
                )
            self._by_level[manager.level_of(variable.name)] = tuple(probs)

    def probabilities_at_level(self, level: int) -> tuple:
        """Return the value-probability vector of the variable at ``level``."""
        return self._by_level[level]


def level_columns_for(
    linearized: LinearizedDiagram,
    distributions: Sequence[VariableDistributions],
) -> Dict[int, tuple]:
    """Transpose per-model distributions into the batch kernel's layout.

    For every level present in ``linearized``, returns one probability
    vector per variable value, each of length ``len(distributions)``.
    """
    columns: Dict[int, tuple] = {}
    for level in linearized.levels:
        vectors = [dist.probabilities_at_level(level) for dist in distributions]
        cardinality = len(vectors[0])
        columns[level] = tuple(
            tuple(vector[value] for vector in vectors) for value in range(cardinality)
        )
    return columns


class LevelProfile:
    """The variable layout of a ROMDD, detached from its node tables.

    One entry per manager level: ``(level, variable name, cardinality,
    is_count)``.  Together with the linearized arrays this is everything the
    probability traversal and the reverse-mode gradient pass need to know
    about the diagram's variables — so a structure restored from the
    persistent store (:mod:`repro.engine.store`) can evaluate and
    differentiate without rebuilding the MDD manager.

    The profile assumes the yield method's variable shapes: the count
    variable ``w`` takes the contiguous values ``0 .. M+1`` and every
    location variable takes ``1 .. C`` — row ``j`` of a level's probability
    matrix is the ``j``-th domain value.  That invariant is established by
    :class:`repro.core.gfunction.GeneralizedFaultTree` and checked here.
    """

    __slots__ = ("entries", "_level_of")

    def __init__(self, entries: Sequence[Tuple[int, str, int, bool]]) -> None:
        self.entries: Tuple[Tuple[int, str, int, bool], ...] = tuple(
            (int(level), str(name), int(cardinality), bool(is_count))
            for level, name, cardinality, is_count in entries
        )
        self._level_of = {name: level for level, name, _, _ in self.entries}

    @classmethod
    def from_manager(cls, manager: MDDManager, count_variable: str) -> "LevelProfile":
        """Capture the level layout of ``manager`` (count variable named)."""
        entries = []
        for level, variable in enumerate(manager.variables):
            is_count = variable.name == count_variable
            expected_first = 0 if is_count else 1
            if variable.values != tuple(
                range(expected_first, expected_first + variable.cardinality)
            ):
                raise MDDError(
                    "variable %r has non-contiguous domain %r"
                    % (variable.name, variable.values)
                )
            entries.append((level, variable.name, variable.cardinality, is_count))
        return cls(entries)

    def level_of(self, name: str) -> Optional[int]:
        """Return the level of the named variable (``None`` when absent)."""
        return self._level_of.get(name)

    def as_json(self) -> List[List[object]]:
        """Return a JSON-serializable form (see :meth:`from_json`)."""
        return [list(entry) for entry in self.entries]

    @classmethod
    def from_json(cls, data: Sequence[Sequence[object]]) -> "LevelProfile":
        return cls([tuple(entry) for entry in data])  # type: ignore[arg-type]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LevelProfile) and self.entries == other.entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "LevelProfile(%d levels)" % len(self.entries)


def columns_for_models(
    linearized: LinearizedDiagram,
    profile: LevelProfile,
    count_columns: Sequence[Sequence[float]],
    location_columns: Sequence[Sequence[float]],
    *,
    as_matrix: bool = True,
) -> Dict[int, object]:
    """Assemble the batch kernel's per-level columns in one shot.

    ``count_columns`` holds one ``[Q'_0 .. Q'_M, overflow]`` column per
    model (see :func:`repro.distributions.thinned_count_columns`) and
    ``location_columns`` one ``[P'_1 .. P'_C]`` column per model.  Instead
    of building K per-variable probability dicts and transposing them level
    by level, this produces exactly **two** ``cardinality x K`` float64
    matrices — one for the count variable, one shared by *all* location
    levels (every ``v_l`` carries the same distribution) — and maps them
    onto the levels the diagram actually contains.  With ``as_matrix=False``
    the same sharing happens with tuple rows for the pure-Python kernel.

    The matrix entries are the same floats the dict route produced, so the
    kernel's child-ordered accumulation stays bit-for-bit identical.
    """
    if as_matrix:
        count_matrix, location_matrix = model_matrices_from_columns(
            count_columns, location_columns
        )
        return columns_from_matrices(
            linearized, profile, count_matrix, location_matrix
        )
    need = set(linearized.levels)
    columns: Dict[int, object] = {}
    count_rows: Optional[object] = None
    location_rows: Optional[object] = None
    for level, name, cardinality, is_count in profile.entries:
        if level not in need:
            continue
        source = count_columns if is_count else location_columns
        if len(source) and len(source[0]) != cardinality:
            raise MDDError(
                "variable %r at level %d expects %d-value columns, got %d"
                % (name, level, cardinality, len(source[0]))
            )
        if is_count:
            if count_rows is None:
                count_rows = tuple(zip(*source))
            columns[level] = count_rows
        else:
            if location_rows is None:
                location_rows = tuple(zip(*source))
            columns[level] = location_rows
    return columns


def model_matrices_from_columns(
    count_columns: Sequence[Sequence[float]],
    location_columns: Sequence[Sequence[float]],
    *,
    out_count=None,
    out_location=None,
):
    """Transpose per-model columns into the two shared float64 matrices.

    Returns ``(count_matrix, location_matrix)`` of shapes ``(M + 2) x K``
    and ``C x K``.  ``out_count`` / ``out_location`` are optional
    preallocated float64 destinations (matching shapes) — the sweep
    service points them into a ``multiprocessing.shared_memory`` block so
    worker shards map the matrices instead of receiving pickled copies.
    The floats are byte-identical either way.
    """
    return (
        _transpose_into(count_columns, out_count),
        _transpose_into(location_columns, out_location),
    )


def _transpose_into(model_columns, out):
    if _np is None:
        raise MDDError("numpy is not available on this interpreter")
    transposed = _np.asarray(model_columns, dtype=_np.float64).T
    if out is None:
        # ascontiguousarray keeps row indexing (columns[j]) cache-friendly
        return _np.ascontiguousarray(transposed)
    if out.shape != transposed.shape:
        raise MDDError(
            "column buffer has shape %r, expected %r"
            % (out.shape, transposed.shape)
        )
    out[...] = transposed
    return out


def columns_from_matrices(
    linearized: LinearizedDiagram,
    profile: LevelProfile,
    count_matrix,
    location_matrix,
) -> Dict[int, object]:
    """Map the two shared model matrices onto the diagram's levels.

    No copies: every count level points at ``count_matrix`` and every
    location level at ``location_matrix`` (the matrices may be slices of a
    shared-memory block or any other float64 view).  Cardinalities are
    checked against the level profile.
    """
    need = set(linearized.levels)
    columns: Dict[int, object] = {}
    for level, name, cardinality, is_count in profile.entries:
        if level not in need:
            continue
        matrix = count_matrix if is_count else location_matrix
        if len(matrix) != cardinality:
            raise MDDError(
                "variable %r at level %d expects %d value rows, got %d"
                % (name, level, cardinality, len(matrix))
            )
        columns[level] = matrix
    return columns


def validate_model_columns(
    columns: Sequence[Sequence[float]], *, what: str
) -> None:
    """Check per-model probability columns (non-negative, sum to 1).

    Mirrors the per-variable checks of :class:`VariableDistributions` (same
    1e-6 tolerance, plain float sum) for the vectorized assembly route,
    which never materializes per-variable dicts to validate.
    """
    for index, column in enumerate(columns):
        total = 0.0
        for p in column:
            if p < 0.0:
                raise MDDError(
                    "negative probability %r in the %s distribution of model %d"
                    % (p, what, index)
                )
            total += p
        if abs(total - 1.0) > 1e-6:
            raise MDDError(
                "%s distribution of model %d sums to %g, expected 1"
                % (what, index, total)
            )


def probability_of_many(
    manager: MDDManager,
    root: int,
    distributions: Sequence[Mapping[str, Mapping[int, float]]],
    *,
    linearized: Optional[LinearizedDiagram] = None,
    use_numpy: Optional[bool] = None,
) -> List[float]:
    """Return ``P(function == 1)`` under every defect model, in one pass.

    ``distributions`` is a sequence of per-model mappings (variable name to
    ``{value: probability}``).  Pass a pre-built ``linearized`` diagram to
    amortize the linearization across calls (compiled structures do).
    """
    if not distributions:
        return []
    validated = [VariableDistributions(manager, d) for d in distributions]
    if linearized is None:
        linearized = LinearizedDiagram.from_mdd(manager, root)
    columns = level_columns_for(linearized, validated)
    return linearized.evaluate(columns, len(validated), use_numpy=use_numpy)


def gradient_of_many(
    manager: MDDManager,
    root: int,
    distributions: Sequence[Mapping[str, Mapping[int, float]]],
    *,
    linearized: Optional[LinearizedDiagram] = None,
    use_numpy: Optional[bool] = None,
):
    """Probabilities *and* exact per-entry gradients for every defect model.

    Runs the linearized forward pass plus one reverse (adjoint) pass — see
    :meth:`repro.engine.batch.LinearizedDiagram.backward` — and maps the
    per-level gradient rows back to variable names.

    Returns
    -------
    (probabilities, gradients)
        ``probabilities[k]`` is ``P(function == 1)`` under model ``k``;
        ``gradients[k]`` maps every variable name to ``{value: derivative}``
        where the derivative is the exact partial of model ``k``'s
        probability with respect to ``P(variable = value)``, all other
        entries held fixed.  Variables the diagram does not depend on get
        all-zero derivatives (the traversal never reads their entries).
    """
    if not distributions:
        return [], []
    validated = [VariableDistributions(manager, d) for d in distributions]
    if linearized is None:
        linearized = LinearizedDiagram.from_mdd(manager, root)
    columns = level_columns_for(linearized, validated)
    probabilities, level_gradients = linearized.backward(
        columns, len(validated), use_numpy=use_numpy
    )
    gradients = []
    for k in range(len(validated)):
        per_variable: Dict[str, Dict[int, float]] = {}
        for variable in manager.variables:
            rows = level_gradients.get(manager.level_of(variable.name))
            if rows is None:
                per_variable[variable.name] = {value: 0.0 for value in variable.values}
            else:
                per_variable[variable.name] = {
                    value: rows[j][k] for j, value in enumerate(variable.values)
                }
        gradients.append(per_variable)
    return probabilities, gradients


def probability_of_one(
    manager: MDDManager,
    root: int,
    distributions: Mapping[str, Mapping[int, float]],
) -> float:
    """Return ``P(function rooted at root == 1)`` for independent variables.

    ``distributions`` maps every variable name to ``{value: probability}``.
    Evaluation is iterative (a single-model batched pass), so deep diagrams
    cannot hit the interpreter recursion limit.
    """
    return probability_of_many(manager, root, [distributions])[0]


def probability_of_one_reference(
    manager: MDDManager,
    root: int,
    distributions: Mapping[str, Mapping[int, float]],
) -> float:
    """The original recursive traversal, kept as the equivalence oracle.

    The batched kernel must match this function bit for bit (asserted by
    the property suite); production code should call
    :func:`probability_of_one` / :func:`probability_of_many` instead.
    """
    dist = VariableDistributions(manager, distributions)
    cache: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

    def visit(node: int) -> float:
        if node in cache:
            return cache[node]
        level = manager.level(node)
        probs = dist.probabilities_at_level(level)
        total = 0.0
        for p, child in zip(probs, manager.children(node)):
            if p != 0.0:
                total += p * visit(child)
        cache[node] = total
        return total

    return visit(root)

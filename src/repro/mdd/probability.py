"""Probability evaluation on ROMDDs.

This is the last step of the paper's method (Section 2): given the ROMDD of
``G(w, v_1 .. v_M)`` and the probability distribution of every (independent)
multiple-valued variable, compute ``P(G = 1)`` by a depth-first, left-most
traversal that assigns

* value 1 to the terminal labeled "1", value 0 to the terminal labeled "0";
* to every non-terminal node labeled with variable ``x`` the sum over its
  outgoing edges of ``P(x in edge values) * value(child)``.

The independence of ``W, V_1, ..., V_M`` plus the fact that a node's function
only depends on the variables below it make this single pass exact.  Skipped
variables contribute a factor of 1 because their value probabilities sum to
one, so no correction is needed for edges that jump levels.

Since the batched engine landed, the pass is executed by
:mod:`repro.engine.batch`: the diagram is linearized once into flat arrays
and :func:`probability_of_many` evaluates any number of defect models in a
single bottom-up sweep (no recursion, no memo dicts, optional numpy
vectorization).  :func:`probability_of_one` is the single-model wrapper; the
original recursive traversal survives as
:func:`probability_of_one_reference` because the equivalence tests pin the
batched kernel to it bit for bit.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..engine.batch import LinearizedDiagram
from .manager import FALSE, TRUE, MDDError, MDDManager


class VariableDistributions:
    """Per-variable value probabilities for the ROMDD traversal.

    Parameters
    ----------
    manager:
        The ROMDD manager (provides the variables and their domains).
    distributions:
        Mapping from variable name to ``{value: probability}``.  Every domain
        value must be present; probabilities must be non-negative and sum to
        1 within a small tolerance.
    """

    def __init__(
        self, manager: MDDManager, distributions: Mapping[str, Mapping[int, float]]
    ) -> None:
        self._by_level: Dict[int, tuple] = {}
        for variable in manager.variables:
            if variable.name not in distributions:
                raise MDDError("missing distribution for variable %r" % (variable.name,))
            dist = distributions[variable.name]
            probs = []
            for value in variable.values:
                if value not in dist:
                    raise MDDError(
                        "distribution of %r missing value %r" % (variable.name, value)
                    )
                p = float(dist[value])
                if p < 0.0:
                    raise MDDError(
                        "negative probability %r for %r=%r" % (p, variable.name, value)
                    )
                probs.append(p)
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise MDDError(
                    "distribution of %r sums to %g, expected 1" % (variable.name, total)
                )
            self._by_level[manager.level_of(variable.name)] = tuple(probs)

    def probabilities_at_level(self, level: int) -> tuple:
        """Return the value-probability vector of the variable at ``level``."""
        return self._by_level[level]


def level_columns_for(
    linearized: LinearizedDiagram,
    distributions: Sequence[VariableDistributions],
) -> Dict[int, tuple]:
    """Transpose per-model distributions into the batch kernel's layout.

    For every level present in ``linearized``, returns one probability
    vector per variable value, each of length ``len(distributions)``.
    """
    columns: Dict[int, tuple] = {}
    for level in linearized.levels:
        vectors = [dist.probabilities_at_level(level) for dist in distributions]
        cardinality = len(vectors[0])
        columns[level] = tuple(
            tuple(vector[value] for vector in vectors) for value in range(cardinality)
        )
    return columns


def probability_of_many(
    manager: MDDManager,
    root: int,
    distributions: Sequence[Mapping[str, Mapping[int, float]]],
    *,
    linearized: Optional[LinearizedDiagram] = None,
    use_numpy: Optional[bool] = None,
) -> List[float]:
    """Return ``P(function == 1)`` under every defect model, in one pass.

    ``distributions`` is a sequence of per-model mappings (variable name to
    ``{value: probability}``).  Pass a pre-built ``linearized`` diagram to
    amortize the linearization across calls (compiled structures do).
    """
    if not distributions:
        return []
    validated = [VariableDistributions(manager, d) for d in distributions]
    if linearized is None:
        linearized = LinearizedDiagram.from_mdd(manager, root)
    columns = level_columns_for(linearized, validated)
    return linearized.evaluate(columns, len(validated), use_numpy=use_numpy)


def gradient_of_many(
    manager: MDDManager,
    root: int,
    distributions: Sequence[Mapping[str, Mapping[int, float]]],
    *,
    linearized: Optional[LinearizedDiagram] = None,
    use_numpy: Optional[bool] = None,
):
    """Probabilities *and* exact per-entry gradients for every defect model.

    Runs the linearized forward pass plus one reverse (adjoint) pass — see
    :meth:`repro.engine.batch.LinearizedDiagram.backward` — and maps the
    per-level gradient rows back to variable names.

    Returns
    -------
    (probabilities, gradients)
        ``probabilities[k]`` is ``P(function == 1)`` under model ``k``;
        ``gradients[k]`` maps every variable name to ``{value: derivative}``
        where the derivative is the exact partial of model ``k``'s
        probability with respect to ``P(variable = value)``, all other
        entries held fixed.  Variables the diagram does not depend on get
        all-zero derivatives (the traversal never reads their entries).
    """
    if not distributions:
        return [], []
    validated = [VariableDistributions(manager, d) for d in distributions]
    if linearized is None:
        linearized = LinearizedDiagram.from_mdd(manager, root)
    columns = level_columns_for(linearized, validated)
    probabilities, level_gradients = linearized.backward(
        columns, len(validated), use_numpy=use_numpy
    )
    gradients = []
    for k in range(len(validated)):
        per_variable: Dict[str, Dict[int, float]] = {}
        for variable in manager.variables:
            rows = level_gradients.get(manager.level_of(variable.name))
            if rows is None:
                per_variable[variable.name] = {value: 0.0 for value in variable.values}
            else:
                per_variable[variable.name] = {
                    value: rows[j][k] for j, value in enumerate(variable.values)
                }
        gradients.append(per_variable)
    return probabilities, gradients


def probability_of_one(
    manager: MDDManager,
    root: int,
    distributions: Mapping[str, Mapping[int, float]],
) -> float:
    """Return ``P(function rooted at root == 1)`` for independent variables.

    ``distributions`` maps every variable name to ``{value: probability}``.
    Evaluation is iterative (a single-model batched pass), so deep diagrams
    cannot hit the interpreter recursion limit.
    """
    return probability_of_many(manager, root, [distributions])[0]


def probability_of_one_reference(
    manager: MDDManager,
    root: int,
    distributions: Mapping[str, Mapping[int, float]],
) -> float:
    """The original recursive traversal, kept as the equivalence oracle.

    The batched kernel must match this function bit for bit (asserted by
    the property suite); production code should call
    :func:`probability_of_one` / :func:`probability_of_many` instead.
    """
    dist = VariableDistributions(manager, distributions)
    cache: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

    def visit(node: int) -> float:
        if node in cache:
            return cache[node]
        level = manager.level(node)
        probs = dist.probabilities_at_level(level)
        total = 0.0
        for p, child in zip(probs, manager.children(node)):
            if p != 0.0:
                total += p * visit(child)
        cache[node] = total
        return total

    return visit(root)

"""Probability evaluation on ROMDDs.

This is the last step of the paper's method (Section 2): given the ROMDD of
``G(w, v_1 .. v_M)`` and the probability distribution of every (independent)
multiple-valued variable, compute ``P(G = 1)`` by a depth-first, left-most
traversal that assigns

* value 1 to the terminal labeled "1", value 0 to the terminal labeled "0";
* to every non-terminal node labeled with variable ``x`` the sum over its
  outgoing edges of ``P(x in edge values) * value(child)``.

The independence of ``W, V_1, ..., V_M`` plus the fact that a node's function
only depends on the variables below it make this single pass exact.  Skipped
variables contribute a factor of 1 because their value probabilities sum to
one, so no correction is needed for edges that jump levels.
"""

from __future__ import annotations

from typing import Dict, Mapping

from .manager import FALSE, TRUE, MDDError, MDDManager


class VariableDistributions:
    """Per-variable value probabilities for the ROMDD traversal.

    Parameters
    ----------
    manager:
        The ROMDD manager (provides the variables and their domains).
    distributions:
        Mapping from variable name to ``{value: probability}``.  Every domain
        value must be present; probabilities must be non-negative and sum to
        1 within a small tolerance.
    """

    def __init__(
        self, manager: MDDManager, distributions: Mapping[str, Mapping[int, float]]
    ) -> None:
        self._by_level: Dict[int, tuple] = {}
        for variable in manager.variables:
            if variable.name not in distributions:
                raise MDDError("missing distribution for variable %r" % (variable.name,))
            dist = distributions[variable.name]
            probs = []
            for value in variable.values:
                if value not in dist:
                    raise MDDError(
                        "distribution of %r missing value %r" % (variable.name, value)
                    )
                p = float(dist[value])
                if p < 0.0:
                    raise MDDError(
                        "negative probability %r for %r=%r" % (p, variable.name, value)
                    )
                probs.append(p)
            total = sum(probs)
            if abs(total - 1.0) > 1e-6:
                raise MDDError(
                    "distribution of %r sums to %g, expected 1" % (variable.name, total)
                )
            self._by_level[manager.level_of(variable.name)] = tuple(probs)

    def probabilities_at_level(self, level: int) -> tuple:
        """Return the value-probability vector of the variable at ``level``."""
        return self._by_level[level]


def probability_of_one(
    manager: MDDManager,
    root: int,
    distributions: Mapping[str, Mapping[int, float]],
) -> float:
    """Return ``P(function rooted at root == 1)`` for independent variables.

    ``distributions`` maps every variable name to ``{value: probability}``.
    """
    dist = VariableDistributions(manager, distributions)
    cache: Dict[int, float] = {FALSE: 0.0, TRUE: 1.0}

    def visit(node: int) -> float:
        if node in cache:
            return cache[node]
        level = manager.level(node)
        probs = dist.probabilities_at_level(level)
        total = 0.0
        for p, child in zip(probs, manager.children(node)):
            if p != 0.0:
                total += p * visit(child)
        cache[node] = total
        return total

    return visit(root)

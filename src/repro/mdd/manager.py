"""A reduced ordered multiple-valued decision diagram (ROMDD) engine.

ROMDDs extend ROBDDs by letting every non-terminal node branch on a
multiple-valued variable: a node labeled with variable ``x`` has one
outgoing edge per value of ``x``'s domain.  The paper evaluates the yield by
a single depth-first traversal of the ROMDD of the generalized fault tree
``G(w, v_1 .. v_M)``, so this engine keeps exactly the machinery that
traversal (and the construction routes feeding it) needs:

* hash-consed node creation with the usual reduction rule (a node whose
  children are all identical collapses to that child), which makes the
  representation canonical for a fixed variable order;
* generic ``apply`` for building ROMDDs directly from a filter-gate circuit
  (used by the ablation baseline in :mod:`repro.mdd.direct`);
* traversal, evaluation and size queries.

The function itself is boolean (terminals 0/1); only the variables are
multiple-valued, which is all the yield method requires.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..faulttree.multivalued import MultiValuedVariable


class MDDError(ValueError):
    """Raised on invalid ROMDD operations."""


#: Handle of the FALSE terminal.
FALSE = 0
#: Handle of the TRUE terminal.
TRUE = 1

_TERMINAL_LEVEL = 1 << 30


class MDDManager:
    """Manager holding ROMDD nodes for a fixed multiple-valued variable order.

    Parameters
    ----------
    variables:
        The multiple-valued variables from the top of the diagrams (level 0)
        downwards.
    """

    def __init__(self, variables: Sequence[MultiValuedVariable]) -> None:
        if not variables:
            raise MDDError("at least one variable is required")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise MDDError("variable names must be unique")
        self._variables: Tuple[MultiValuedVariable, ...] = tuple(variables)
        self._level_of: Dict[str, int] = {v.name: i for i, v in enumerate(variables)}

        self._level: List[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._children: List[Tuple[int, ...]] = [(), ()]

        self._unique: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._apply_cache: Dict[Tuple[str, int, int], int] = {}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[MultiValuedVariable, ...]:
        """The variables from level 0 (top) downwards."""
        return self._variables

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_nodes_allocated(self) -> int:
        """Total number of nodes ever created, terminals included."""
        return len(self._level)

    def level_of(self, name: str) -> int:
        """Return the level of variable ``name``."""
        try:
            return self._level_of[name]
        except KeyError:
            raise MDDError("unknown variable %r" % (name,)) from None

    def variable_at_level(self, level: int) -> MultiValuedVariable:
        """Return the variable at ``level``."""
        if not 0 <= level < len(self._variables):
            raise MDDError("level %d out of range" % level)
        return self._variables[level]

    def level(self, node: int) -> int:
        """Return the level of ``node`` (terminals report a sentinel large level)."""
        return self._level[node]

    def children(self, node: int) -> Tuple[int, ...]:
        """Return the children of ``node``, aligned with the variable's value order."""
        return self._children[node]

    def is_terminal(self, node: int) -> bool:
        """Return whether ``node`` is one of the two terminals."""
        return node <= TRUE

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    def constant(self, value: bool) -> int:
        """Return the terminal for ``value``."""
        return TRUE if value else FALSE

    def mk(self, level: int, children: Sequence[int]) -> int:
        """Return the (reduced, hash-consed) node at ``level`` with ``children``.

        ``children`` must have one entry per value of the level's variable, in
        the variable's value order.
        """
        var = self.variable_at_level(level)
        children = tuple(int(c) for c in children)
        if len(children) != var.cardinality:
            raise MDDError(
                "variable %r expects %d children, got %d"
                % (var.name, var.cardinality, len(children))
            )
        first = children[0]
        if all(c == first for c in children):
            return first
        key = (level, children)
        found = self._unique.get(key)
        if found is not None:
            return found
        handle = len(self._level)
        self._level.append(level)
        self._children.append(children)
        self._unique[key] = handle
        return handle

    def literal(self, name: str, accepted_values: Iterable[int]) -> int:
        """Return the ROMDD of the filter "variable ``name`` takes a value in the set"."""
        level = self.level_of(name)
        var = self._variables[level]
        accepted = set(int(v) for v in accepted_values)
        unknown = accepted.difference(var.values)
        if unknown:
            raise MDDError(
                "values %s are outside the domain of %r" % (sorted(unknown), name)
            )
        children = [TRUE if value in accepted else FALSE for value in var.values]
        return self.mk(level, children)

    # ------------------------------------------------------------------ #
    # Apply-style boolean operations
    # ------------------------------------------------------------------ #

    def not_(self, f: int) -> int:
        """Return the complement of ``f``."""
        return self._apply_unary(f)

    def _apply_unary(self, f: int) -> int:
        if f == TRUE:
            return FALSE
        if f == FALSE:
            return TRUE
        key = ("not", f, -1)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached
        level = self._level[f]
        result = self.mk(level, [self._apply_unary(c) for c in self._children[f]])
        self._apply_cache[key] = result
        return result

    def and_(self, f: int, g: int) -> int:
        """Return ``f AND g``."""
        return self._apply(f, g, "and")

    def or_(self, f: int, g: int) -> int:
        """Return ``f OR g``."""
        return self._apply(f, g, "or")

    def xor_(self, f: int, g: int) -> int:
        """Return ``f XOR g``."""
        return self._apply(f, g, "xor")

    def and_many(self, operands: Iterable[int]) -> int:
        """Return the conjunction of all operands (TRUE for an empty list)."""
        result = TRUE
        for op in operands:
            result = self.and_(result, op)
            if result == FALSE:
                return FALSE
        return result

    def or_many(self, operands: Iterable[int]) -> int:
        """Return the disjunction of all operands (FALSE for an empty list)."""
        result = FALSE
        for op in operands:
            result = self.or_(result, op)
            if result == TRUE:
                return TRUE
        return result

    def _apply(self, f: int, g: int, op: str) -> int:
        # terminal shortcuts
        if op == "and":
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == TRUE:
                return self.not_(g)
            if g == TRUE:
                return self.not_(f)
        else:  # pragma: no cover - exhaustiveness guard
            raise MDDError("unknown apply operator %r" % (op,))

        if f > g:
            # the operators are commutative; normalize for better cache hits
            f, g = g, f
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        level = min(self._level[f], self._level[g])
        cardinality = self._variables[level].cardinality
        f_children = self._expand(f, level, cardinality)
        g_children = self._expand(g, level, cardinality)
        children = [
            self._apply(fc, gc, op) for fc, gc in zip(f_children, g_children)
        ]
        result = self.mk(level, children)
        self._apply_cache[key] = result
        return result

    def _expand(self, node: int, level: int, cardinality: int) -> Sequence[int]:
        if node > TRUE and self._level[node] == level:
            return self._children[node]
        return (node,) * cardinality

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def evaluate(self, node: int, assignment: Mapping[str, int]) -> bool:
        """Evaluate the function rooted at ``node`` on a complete assignment."""
        current = node
        while current > TRUE:
            var = self._variables[self._level[current]]
            if var.name not in assignment:
                raise MDDError("missing value for variable %r" % (var.name,))
            value = int(assignment[var.name])
            try:
                position = var.values.index(value)
            except ValueError:
                raise MDDError(
                    "value %r outside the domain of %r" % (value, var.name)
                ) from None
            current = self._children[current][position]
        return current == TRUE

    def reachable(self, node: int) -> Set[int]:
        """Return all node handles reachable from ``node`` (terminals included)."""
        seen: Set[int] = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.extend(self._children[n])
        return seen

    def size(self, node: int) -> int:
        """Return the number of nodes reachable from ``node`` (terminals included)."""
        return len(self.reachable(node))

    def support(self, node: int) -> List[str]:
        """Return the names of the variables the function depends on."""
        levels = {self._level[n] for n in self.reachable(node) if n > TRUE}
        return [self._variables[lvl].name for lvl in sorted(levels)]

    def iter_nodes(self, node: int):
        """Yield ``(handle, level, children)`` for every reachable non-terminal node."""
        for n in sorted(self.reachable(node)):
            if n > TRUE:
                yield n, self._level[n], self._children[n]

    def clear_operation_cache(self) -> None:
        """Drop the apply computed table."""
        self._apply_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MDDManager(vars=%d, nodes=%d)" % (self.num_variables, self.num_nodes_allocated)

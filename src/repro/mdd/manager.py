"""A reduced ordered multiple-valued decision diagram (ROMDD) engine.

ROMDDs extend ROBDDs by letting every non-terminal node branch on a
multiple-valued variable: a node labeled with variable ``x`` has one
outgoing edge per value of ``x``'s domain.  The paper evaluates the yield by
a single depth-first traversal of the ROMDD of the generalized fault tree
``G(w, v_1 .. v_M)``, so this engine keeps exactly the machinery that
traversal (and the construction routes feeding it) needs:

* hash-consed node creation with the usual reduction rule (a node whose
  children are all identical collapses to that child), which makes the
  representation canonical for a fixed variable order;
* generic ``apply`` for building ROMDDs directly from a filter-gate circuit
  (used by the ablation baseline in :mod:`repro.mdd.direct`);
* traversal, evaluation and size queries.

Like the ROBDD manager, this manager plugs into the shared kernel of
:mod:`repro.engine.kernel`: nodes are reference counted, dead nodes are
reclaimed on demand with slot reuse, the apply computed table is
size-bounded with statistics, and the variable order can be changed in
place with :meth:`MDDManager.swap_adjacent_levels` /
:meth:`MDDManager.reorder` (Rudell sifting over multiple-valued variables).

The function itself is boolean (terminals 0/1); only the variables are
multiple-valued, which is all the yield method requires.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..engine.kernel import (
    DEFAULT_CACHE_BOUND,
    DEFAULT_GC_THRESHOLD,
    FALSE,
    FREE_LEVEL,
    TERMINAL_LEVEL,
    TRUE,
    DDKernel,
)
from ..faulttree.multivalued import MultiValuedVariable


class MDDError(ValueError):
    """Raised on invalid ROMDD operations."""


_TERMINAL_LEVEL = TERMINAL_LEVEL


class MDDManager(DDKernel):
    """Manager holding ROMDD nodes for a multiple-valued variable order.

    Parameters
    ----------
    variables:
        The multiple-valued variables from the top of the diagrams (level 0)
        downwards.
    cache_bound:
        Maximum number of entries of the apply computed table (``None`` for
        unbounded).
    gc_threshold:
        Node-table growth that makes :meth:`~repro.engine.kernel.DDKernel.checkpoint`
        trigger an automatic garbage collection.
    """

    def __init__(
        self,
        variables: Sequence[MultiValuedVariable],
        *,
        cache_bound: Optional[int] = DEFAULT_CACHE_BOUND,
        gc_threshold: int = DEFAULT_GC_THRESHOLD,
    ) -> None:
        if not variables:
            raise MDDError("at least one variable is required")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise MDDError("variable names must be unique")
        self._variables: List[MultiValuedVariable] = list(variables)
        self._level_of: Dict[str, int] = {v.name: i for i, v in enumerate(variables)}

        self._level: List[int] = [TERMINAL_LEVEL, TERMINAL_LEVEL]
        self._children: List[Tuple[int, ...]] = [(), ()]

        self._unique: Dict[Tuple[int, Tuple[int, ...]], int] = {}
        self._init_kernel(cache_bound=cache_bound, gc_threshold=gc_threshold)
        self._apply_cache = self._new_computed_table("apply")
        self._reorder_index: Optional[List[Set[int]]] = None

    # ------------------------------------------------------------------ #
    # Kernel hooks
    # ------------------------------------------------------------------ #

    def _node_children(self, handle: int) -> Iterable[int]:
        return self._children[handle]

    def _node_key(self, handle: int) -> Hashable:
        return (self._level[handle], self._children[handle])

    def _release_slot(self, handle: int) -> None:
        self._children[handle] = ()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def variables(self) -> Tuple[MultiValuedVariable, ...]:
        """The variables from level 0 (top) downwards."""
        return tuple(self._variables)

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_nodes_allocated(self) -> int:
        """Total number of nodes ever created, terminals included (monotone)."""
        return self._created

    def level_of(self, name: str) -> int:
        """Return the level of variable ``name``."""
        try:
            return self._level_of[name]
        except KeyError:
            raise MDDError("unknown variable %r" % (name,)) from None

    def variable_at_level(self, level: int) -> MultiValuedVariable:
        """Return the variable at ``level``."""
        if not 0 <= level < len(self._variables):
            raise MDDError("level %d out of range" % level)
        return self._variables[level]

    def level(self, node: int) -> int:
        """Return the level of ``node`` (terminals report a sentinel large level)."""
        return self._level[node]

    def children(self, node: int) -> Tuple[int, ...]:
        """Return the children of ``node``, aligned with the variable's value order."""
        return self._children[node]

    def is_terminal(self, node: int) -> bool:
        """Return whether ``node`` is one of the two terminals."""
        return node <= TRUE

    # ------------------------------------------------------------------ #
    # Node construction
    # ------------------------------------------------------------------ #

    def constant(self, value: bool) -> int:
        """Return the terminal for ``value``."""
        return TRUE if value else FALSE

    def _mk_raw(self, level: int, children: Tuple[int, ...]) -> int:
        """Reduce, hash-cons and reference-count a node (no domain checks)."""
        first = children[0]
        for c in children:
            if c != first:
                break
        else:
            return first
        key = (level, children)
        found = self._unique.get(key)
        if found is not None:
            return found
        if self._free:
            handle = self._free.pop()
            self._level[handle] = level
            self._children[handle] = children
            self._refs[handle] = 0
        else:
            handle = len(self._level)
            self._level.append(level)
            self._children.append(children)
            self._refs.append(0)
        refs = self._refs
        for c in children:
            if c > TRUE:
                refs[c] += 1
        self._created += 1
        self._unique[key] = handle
        return handle

    def mk(self, level: int, children: Sequence[int]) -> int:
        """Return the (reduced, hash-consed) node at ``level`` with ``children``.

        ``children`` must have one entry per value of the level's variable, in
        the variable's value order.
        """
        var = self.variable_at_level(level)
        children = tuple(int(c) for c in children)
        if len(children) != var.cardinality:
            raise MDDError(
                "variable %r expects %d children, got %d"
                % (var.name, var.cardinality, len(children))
            )
        return self._mk_raw(level, children)

    def literal(self, name: str, accepted_values: Iterable[int]) -> int:
        """Return the ROMDD of the filter "variable ``name`` takes a value in the set"."""
        level = self.level_of(name)
        var = self._variables[level]
        accepted = set(int(v) for v in accepted_values)
        unknown = accepted.difference(var.values)
        if unknown:
            raise MDDError(
                "values %s are outside the domain of %r" % (sorted(unknown), name)
            )
        children = [TRUE if value in accepted else FALSE for value in var.values]
        return self.mk(level, children)

    # ------------------------------------------------------------------ #
    # Apply-style boolean operations
    # ------------------------------------------------------------------ #

    def not_(self, f: int) -> int:
        """Return the complement of ``f``."""
        return self._apply_unary(f)

    def _apply_unary(self, f: int) -> int:
        if f == TRUE:
            return FALSE
        if f == FALSE:
            return TRUE
        # iterative post-order complementation: deep (chain-shaped) diagrams
        # must not hit the interpreter recursion limit.  Results collect in a
        # local map (complete for the walk even if the bounded shared cache
        # evicts mid-traversal) and are published to the cache at the end.
        cache = self._apply_cache
        local: Dict[int, int] = {FALSE: TRUE, TRUE: FALSE}
        stack = [(f, False)]
        while stack:
            n, expanded = stack.pop()
            if n in local:
                continue
            if expanded:
                kids = tuple(local[c] for c in self._children[n])
                result = self._mk_raw(self._level[n], kids)
                local[n] = result
                cache.put(("not", n, -1), result)
                continue
            cached = cache.get(("not", n, -1))
            if cached is not None:
                local[n] = cached
                continue
            stack.append((n, True))
            for child in self._children[n]:
                if child not in local:
                    stack.append((child, False))
        return local[f]

    def and_(self, f: int, g: int) -> int:
        """Return ``f AND g``."""
        return self._apply(f, g, "and")

    def or_(self, f: int, g: int) -> int:
        """Return ``f OR g``."""
        return self._apply(f, g, "or")

    def xor_(self, f: int, g: int) -> int:
        """Return ``f XOR g``."""
        return self._apply(f, g, "xor")

    def and_many(self, operands: Iterable[int]) -> int:
        """Return the conjunction of all operands (TRUE for an empty list)."""
        result = TRUE
        for op in operands:
            result = self.and_(result, op)
            if result == FALSE:
                return FALSE
        return result

    def or_many(self, operands: Iterable[int]) -> int:
        """Return the disjunction of all operands (FALSE for an empty list)."""
        result = FALSE
        for op in operands:
            result = self.or_(result, op)
            if result == TRUE:
                return TRUE
        return result

    def _apply(self, f: int, g: int, op: str) -> int:
        # terminal shortcuts
        if op == "and":
            if f == FALSE or g == FALSE:
                return FALSE
            if f == TRUE:
                return g
            if g == TRUE:
                return f
            if f == g:
                return f
        elif op == "or":
            if f == TRUE or g == TRUE:
                return TRUE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == g:
                return f
        elif op == "xor":
            if f == g:
                return FALSE
            if f == FALSE:
                return g
            if g == FALSE:
                return f
            if f == TRUE:
                return self.not_(g)
            if g == TRUE:
                return self.not_(f)
        else:  # pragma: no cover - exhaustiveness guard
            raise MDDError("unknown apply operator %r" % (op,))

        if f > g:
            # the operators are commutative; normalize for better cache hits
            f, g = g, f
        key = (op, f, g)
        cached = self._apply_cache.get(key)
        if cached is not None:
            return cached

        level = min(self._level[f], self._level[g])
        cardinality = self._variables[level].cardinality
        f_children = self._expand(f, level, cardinality)
        g_children = self._expand(g, level, cardinality)
        children = tuple(
            self._apply(fc, gc, op) for fc, gc in zip(f_children, g_children)
        )
        result = self._mk_raw(level, children)
        self._apply_cache.put(key, result)
        return result

    def _expand(self, node: int, level: int, cardinality: int) -> Sequence[int]:
        if node > TRUE and self._level[node] == level:
            return self._children[node]
        return (node,) * cardinality

    # ------------------------------------------------------------------ #
    # Dynamic reordering
    # ------------------------------------------------------------------ #

    def begin_reorder(self) -> None:
        """Enter a reordering session (see :meth:`repro.bdd.BDDManager.begin_reorder`)."""
        if self._reorder_index is not None:
            raise MDDError("a reordering session is already active")
        self.garbage_collect()
        index: List[Set[int]] = [set() for _ in self._variables]
        level = self._level
        for h in self.iter_live_handles():
            index[level[h]].add(h)
        self._reorder_index = index

    def end_reorder(self) -> None:
        """Leave the reordering session and flush the computed tables."""
        self._reorder_index = None
        for table in self._computed_tables.values():
            table.clear()

    @property
    def in_reorder(self) -> bool:
        return self._reorder_index is not None

    def nodes_at_level(self, level: int) -> int:
        """Return the number of allocated nodes labelled with ``level``."""
        if self._reorder_index is not None:
            return len(self._reorder_index[level])
        levels = self._level
        return sum(1 for h in self.iter_live_handles() if levels[h] == level)

    def swap_adjacent_levels(self, level: int) -> None:
        """Exchange the variables at ``level`` and ``level + 1`` in place.

        The multiple-valued generalization of the ROBDD swap: a node that
        depends on both variables is rewritten to branch on the lower
        variable first, with one fresh upper-variable node per value of the
        lower variable's domain.  Handles keep denoting the same functions.
        """
        i = level
        j = level + 1
        if not 0 <= i < len(self._variables) - 1:
            raise MDDError("cannot swap level %d with %d" % (i, j))
        index = self._reorder_index
        if index is not None:
            ui, vi = index[i], index[j]
        else:
            levels = self._level
            ui, vi = set(), set()
            for h in self.iter_live_handles():
                lv = levels[h]
                if lv == i:
                    ui.add(h)
                elif lv == j:
                    vi.add(h)

        u_var = self._variables[i]
        v_var = self._variables[j]
        u_card = u_var.cardinality
        v_card = v_var.cardinality

        # swap the variable metadata first so _mk_raw levels stay meaningful
        self._variables[i] = v_var
        self._variables[j] = u_var
        self._level_of[v_var.name] = i
        self._level_of[u_var.name] = j

        levels = self._level
        children = self._children
        refs = self._refs
        unique = self._unique

        for h in ui:
            del unique[(i, children[h])]
        for h in vi:
            del unique[(j, children[h])]

        new_i: Set[int] = set()
        new_j: Set[int] = set()
        dependent: List[int] = []
        for h in ui:
            if any(levels[c] == j for c in children[h]):
                dependent.append(h)
            else:
                levels[h] = j
                unique[(j, children[h])] = h
                new_j.add(h)

        for h in dependent:
            kids = children[h]
            grand = [
                children[c] if levels[c] == j else (c,) * v_card for c in kids
            ]
            for c in kids:
                if c > TRUE:
                    refs[c] -= 1
            new_kids: List[int] = []
            for b in range(v_card):
                column = tuple(grand[a][b] for a in range(u_card))
                node = self._mk_raw(j, column)
                if node > TRUE:
                    refs[node] += 1
                    if levels[node] == j:
                        new_j.add(node)
                new_kids.append(node)
            new_tuple = tuple(new_kids)
            children[h] = new_tuple
            levels[h] = i
            unique[(i, new_tuple)] = h
            new_i.add(h)

        dead: List[int] = []
        for h in vi:
            if index is not None and refs[h] == 0:
                dead.append(h)
            else:
                levels[h] = i
                unique[(i, children[h])] = h
                new_i.add(h)

        while dead:
            h = dead.pop()
            if refs[h] != 0 or levels[h] == FREE_LEVEL:
                continue
            lv = levels[h]
            if lv != j:
                unique.pop((lv, children[h]), None)
                index[lv].discard(h)  # type: ignore[index]
            for c in children[h]:
                if c > TRUE:
                    refs[c] -= 1
                    if refs[c] == 0:
                        dead.append(c)
            children[h] = ()
            levels[h] = FREE_LEVEL
            self._free.append(h)

        if index is not None:
            index[i] = new_i
            index[j] = new_j

    def reorder(self, roots: Iterable[int] = (), **kwargs):
        """Minimise the diagram sizes by sifting; returns the reorder stats.

        ``roots`` are protected for the duration.  Keyword arguments are
        forwarded to :func:`repro.engine.reorder.sift`.
        """
        from ..engine.reorder import sift

        roots = [r for r in roots if r > TRUE]
        for r in roots:
            self.ref(r)
        try:
            return sift(self, **kwargs)
        finally:
            for r in roots:
                self.deref(r)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def evaluate(self, node: int, assignment: Mapping[str, int]) -> bool:
        """Evaluate the function rooted at ``node`` on a complete assignment."""
        current = node
        while current > TRUE:
            var = self._variables[self._level[current]]
            if var.name not in assignment:
                raise MDDError("missing value for variable %r" % (var.name,))
            value = int(assignment[var.name])
            try:
                position = var.values.index(value)
            except ValueError:
                raise MDDError(
                    "value %r outside the domain of %r" % (value, var.name)
                ) from None
            current = self._children[current][position]
        return current == TRUE

    def reachable(self, node: int) -> Set[int]:
        """Return all node handles reachable from ``node`` (terminals included)."""
        seen: Set[int] = set()
        stack = [node]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n > TRUE:
                stack.extend(self._children[n])
        return seen

    def size(self, node: int) -> int:
        """Return the number of nodes reachable from ``node`` (terminals included)."""
        return len(self.reachable(node))

    def support(self, node: int) -> List[str]:
        """Return the names of the variables the function depends on."""
        levels = {self._level[n] for n in self.reachable(node) if n > TRUE}
        return [self._variables[lvl].name for lvl in sorted(levels)]

    def iter_nodes(self, node: int):
        """Yield ``(handle, level, children)`` for every reachable non-terminal node."""
        for n in sorted(self.reachable(node)):
            if n > TRUE:
                yield n, self._level[n], self._children[n]

    def clear_operation_cache(self) -> None:
        """Drop the apply computed table."""
        self._apply_cache.clear()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "MDDManager(vars=%d, nodes=%d)" % (self.num_variables, self.num_nodes_allocated)

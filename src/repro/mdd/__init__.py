"""Reduced ordered multiple-valued decision diagrams (ROMDDs).

* :class:`~repro.mdd.manager.MDDManager` — hash-consed ROMDD engine with
  apply operations, evaluation and traversal;
* :func:`~repro.mdd.from_bdd.convert_bdd_to_mdd` — the paper's coded-ROBDD →
  ROMDD conversion (Fig. 3 procedure);
* :func:`~repro.mdd.direct.build_mdd_from_mvcircuit` — direct ROMDD
  construction (ablation / cross-validation path);
* :func:`~repro.mdd.probability.probability_of_one` /
  :func:`~repro.mdd.probability.probability_of_many` — the probability
  traversal that produces the yield, batched over defect models through the
  linearized arrays of :mod:`repro.engine.batch`.
"""

from .direct import DirectBuildStats, build_mdd_from_mvcircuit
from .dot import mdd_to_dot, write_mdd_dot
from .from_bdd import convert_bdd_to_mdd
from .manager import FALSE, TRUE, MDDError, MDDManager
from .probability import (
    LevelProfile,
    VariableDistributions,
    columns_for_models,
    probability_of_many,
    probability_of_one,
    probability_of_one_reference,
)

__all__ = [
    "MDDManager",
    "MDDError",
    "FALSE",
    "TRUE",
    "convert_bdd_to_mdd",
    "build_mdd_from_mvcircuit",
    "DirectBuildStats",
    "probability_of_one",
    "probability_of_many",
    "probability_of_one_reference",
    "VariableDistributions",
    "LevelProfile",
    "columns_for_models",
    "mdd_to_dot",
    "write_mdd_dot",
]

"""Direct ROMDD construction from a filter-gate circuit.

The paper argues (following the multiple-valued decision diagram community)
that it is more efficient to build a coded ROBDD first and convert it at the
end than to manipulate ROMDDs directly.  To be able to *check* that claim,
this module provides the direct route: every filter gate becomes a ROMDD
literal and the binary gates of the circuit are applied with the ROMDD
``apply`` operations.  The result is canonical, so it must be identical (same
manager size from the same order) to what the conversion route produces —
which is also a powerful cross-validation of both implementations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..faulttree.circuit import Circuit
from ..faulttree.multivalued import FilterKind, MVCircuit, MultiValuedVariable
from ..faulttree.ops import GateOp
from .manager import FALSE, TRUE, MDDError, MDDManager


@dataclass
class DirectBuildStats:
    """Statistics of a direct ROMDD construction."""

    final_size: int = 0
    allocated_nodes: int = 0
    gates_processed: int = 0
    peak_live_nodes: int = 0


def build_mdd_from_mvcircuit(
    mv_circuit: MVCircuit,
    variable_order: Sequence[MultiValuedVariable],
    *,
    track_peak: bool = False,
    manager: Optional[MDDManager] = None,
) -> Tuple[MDDManager, int, DirectBuildStats]:
    """Build the ROMDD of ``mv_circuit`` directly, without the coded ROBDD.

    Parameters
    ----------
    mv_circuit:
        The filter-gate circuit of the function (e.g. the generalized fault
        tree ``G``).
    variable_order:
        The multiple-valued variables from the top of the ROMDD downwards;
        must cover every variable used by the circuit's filters.
    track_peak:
        When true the live shared node count is sampled after every gate.
    """
    known = {v.name for v in variable_order}
    for gate in mv_circuit.filters.values():
        if gate.variable.name not in known:
            raise MDDError(
                "variable %r used by a filter is missing from the order" % (gate.variable.name,)
            )
    if manager is None:
        manager = MDDManager(variable_order)

    circuit: Circuit = mv_circuit.circuit
    output = circuit.primary_output
    cone = circuit.cone(output)
    filters = mv_circuit.filters
    stats = DirectBuildStats()

    remaining_readers: Dict[int, int] = {idx: 0 for idx in cone}
    for idx in cone:
        node = circuit.node(idx)
        if node.is_gate:
            for fanin in node.fanins:
                remaining_readers[fanin] += 1

    from ..engine.kernel import recursion_guard

    node_mdd: Dict[int, int] = {}
    # the binary apply recurses once per multiple-valued level; guard for
    # chain-shaped circuits over many variables
    with recursion_guard(2 * manager.num_variables + 200):
        for idx in sorted(cone):
            node = circuit.node(idx)
            if node.is_input:
                gate = filters[node.name]
                accepted = [v for v in gate.variable.values if gate.evaluate(v)]
                node_mdd[idx] = manager.literal(gate.variable.name, accepted)
                continue
            if node.is_const:
                node_mdd[idx] = TRUE if node.name == "1" else FALSE
                continue

            fanin_mdds = [node_mdd[f] for f in node.fanins]
            node_mdd[idx] = _apply_gate(manager, node.op, fanin_mdds)
            stats.gates_processed += 1

            for fanin in node.fanins:
                remaining_readers[fanin] -= 1
                if remaining_readers[fanin] == 0 and fanin != output:
                    node_mdd.pop(fanin, None)

            if track_peak:
                live = len(
                    set().union(*(manager.reachable(h) for h in node_mdd.values()))
                )
                if live > stats.peak_live_nodes:
                    stats.peak_live_nodes = live

    root = node_mdd[output]
    stats.final_size = manager.size(root)
    stats.allocated_nodes = manager.num_nodes_allocated
    if stats.final_size > stats.peak_live_nodes:
        stats.peak_live_nodes = stats.final_size
    return manager, root, stats


def _apply_gate(manager: MDDManager, op: GateOp, fanins: List[int]) -> int:
    if op is GateOp.NOT:
        return manager.not_(fanins[0])
    if op is GateOp.BUF:
        return fanins[0]
    if op is GateOp.AND:
        return manager.and_many(fanins)
    if op is GateOp.OR:
        return manager.or_many(fanins)
    if op is GateOp.NAND:
        return manager.not_(manager.and_many(fanins))
    if op is GateOp.NOR:
        return manager.not_(manager.or_many(fanins))
    if op is GateOp.XOR:
        result = fanins[0]
        for f in fanins[1:]:
            result = manager.xor_(result, f)
        return result
    if op is GateOp.XNOR:
        result = fanins[0]
        for f in fanins[1:]:
            result = manager.xor_(result, f)
        return manager.not_(result)
    raise MDDError("unsupported gate operator %r" % (op,))  # pragma: no cover

"""The remote shard fabric: distributed workers behind the supervisor seam.

PR 7's fault-tolerant dispatch keeps every shard inside one machine: a
``multiprocessing`` pool, shared memory, SIGKILL-able children.  This
module is the remote half of that story.  A *shard worker* is a
long-lived HTTP process (``repro worker``) that resolves digest-addressed
compiled structures from a shared :class:`~repro.engine.store.StructureStore`,
evaluates one model span through
:meth:`~repro.core.method.CompiledYield.evaluate_probabilities`, and
returns the raw float64 result vector.  The parent-side
:class:`FabricScheduler` treats a set of such workers as one more
executor pool: the same shard wire seam (structure digest + two model
matrices in, a K-float vector out), the same bounded retry/backoff, and
one more rung on the degradation ladder (``remote`` → local pool →
in-parent), so **no fault on the fabric can change a sweep's results** —
only where they were computed.

Robustness machinery, mirroring :mod:`repro.engine.supervise`:

* **Heartbeats** — a monitor thread probes every worker's ``/healthz``;
  a worker that misses :data:`~FabricScheduler.DEAD_AFTER_MISSES`
  consecutive probes is evicted from scheduling and re-admitted as soon
  as a probe succeeds again (``heartbeat.*`` counters).
* **EWMA deadlines** — each worker keeps its own per-model latency
  estimate; shard deadlines scale from it, so slow workers get longer
  leashes but fewer shards (placement minimizes expected queue time),
  and dead ones get none.
* **Work stealing** — once the queue is empty, a straggling shard is
  speculatively re-executed on an idle worker; the first result wins and
  late duplicates are discarded (``steal.speculated`` / ``steal.wins`` /
  ``steal.late_discards``).
* **Bounded retry with backoff** — failed attempts requeue with the same
  seeded :class:`~repro.engine.supervise.Backoff` the local supervisor
  uses; a shard that exhausts its retries is returned to the caller,
  which evaluates it on the local path (``fabric.shards_failed``).
* **Fail-fast degradation** — with no live workers left the whole batch
  is handed back immediately; the service notes a ``remote`` route
  failure and the sweep continues on the local pool, unchanged.

The wire format is deliberately binary and pickle-free: a 4-byte
big-endian header length, a JSON header, then raw little-endian float64
matrices (request) or the result vector (response).  Floats cross the
wire as their exact 8-byte representation, so a remote result is
bit-for-bit the local one.

Deterministic chaos testing hooks into four ``net.*`` fault sites (see
:mod:`repro.engine.faults`): ``net.refuse`` before the connection,
``net.delay`` between send and receive, ``net.drop`` after the response
was read, and ``net.garbage`` corrupting the received body.
"""

from __future__ import annotations

import json
import logging
import os
import struct
import threading
import time
from collections import OrderedDict, deque
from http.client import HTTPConnection
from queue import Empty, Queue
from typing import Dict, List, Optional, Sequence, Tuple
from urllib.parse import urlsplit

from . import faults
from . import native as _native
from .batch import HAVE_NUMPY, KERNELS, shard_deadline
from .supervise import Backoff
from ..obs import trace as obs_trace
from ..obs.metrics import MetricsRegistry

__all__ = [
    "FabricError",
    "FabricScheduler",
    "FabricShard",
    "HeartbeatMonitor",
    "RemoteWorker",
    "ShardWorker",
    "WorkerHandle",
    "decode_shard_request",
    "decode_shard_response",
    "encode_shard_request",
    "encode_shard_response",
    "worker_in_thread",
]

#: Shard request/response bodies carry float64 matrices for a whole model
#: span; allow well past any realistic (cardinality x K) product.
MAX_SHARD_BODY = 64 * 1024 * 1024

_log = logging.getLogger("repro.engine.fabric")


class FabricError(RuntimeError):
    """A fabric-level protocol or transport failure (retryable)."""


# --------------------------------------------------------------------- #
# Wire format
# --------------------------------------------------------------------- #
#
# frame   := header-length (4 bytes, big-endian) + JSON header + payload
# request := frame with payload = count matrix + location matrix, both
#            C-contiguous little-endian float64, shapes in the header
# response:= frame with payload = K little-endian float64 probabilities


def _pack_frame(header: Dict, *payloads: bytes) -> bytes:
    head = json.dumps(header, sort_keys=True).encode("utf-8")
    return struct.pack(">I", len(head)) + head + b"".join(payloads)


def _unpack_frame(body: bytes) -> Tuple[Dict, bytes]:
    if len(body) < 4:
        raise FabricError("frame shorter than its length prefix")
    (head_len,) = struct.unpack(">I", body[:4])
    if head_len > len(body) - 4:
        raise FabricError("frame header truncated")
    try:
        header = json.loads(body[4 : 4 + head_len].decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        raise FabricError("frame header is not valid JSON") from None
    if not isinstance(header, dict):
        raise FabricError("frame header must be a JSON object")
    return header, body[4 + head_len :]


def encode_shard_request(
    digest: str,
    count_bytes: bytes,
    location_bytes: bytes,
    *,
    count_rows: int,
    location_rows: int,
    models: int,
    deadline: Optional[float] = None,
) -> bytes:
    header = {
        "digest": digest,
        "count_rows": int(count_rows),
        "location_rows": int(location_rows),
        "models": int(models),
        "deadline": deadline,
    }
    return _pack_frame(header, count_bytes, location_bytes)


def decode_shard_request(body: bytes) -> Tuple[Dict, bytes, bytes]:
    """Split a request frame into ``(header, count_bytes, location_bytes)``."""
    header, payload = _unpack_frame(body)
    try:
        digest = header["digest"]
        count_rows = int(header["count_rows"])
        location_rows = int(header["location_rows"])
        models = int(header["models"])
    except (KeyError, TypeError, ValueError):
        raise FabricError("shard request header is incomplete") from None
    if not isinstance(digest, str) or not digest:
        raise FabricError("shard request names no structure digest")
    if models < 1 or count_rows < 1 or location_rows < 0:
        raise FabricError("shard request shapes are not positive")
    count_nbytes = count_rows * models * 8
    expected = count_nbytes + location_rows * models * 8
    if len(payload) != expected:
        raise FabricError(
            "shard request payload is %d bytes, expected %d"
            % (len(payload), expected)
        )
    return header, payload[:count_nbytes], payload[count_nbytes:]


def encode_shard_response(
    probabilities: Sequence[float],
    *,
    evaluate_seconds: float = 0.0,
    metrics: Optional[Dict] = None,
) -> bytes:
    vector = [float(p) for p in probabilities]
    header = {
        "ok": True,
        "models": len(vector),
        "evaluate_seconds": float(evaluate_seconds),
        "metrics": metrics,
    }
    return _pack_frame(header, struct.pack("<%dd" % len(vector), *vector))


def decode_shard_response(body: bytes, expected_models: int) -> Tuple[Dict, List[float]]:
    """Split a response frame into ``(header, probabilities)``.

    ``struct.unpack`` of the exact little-endian float64 bytes: the
    vector a worker computed is the vector the parent packages, bit for
    bit.
    """
    header, payload = _unpack_frame(body)
    if not header.get("ok"):
        raise FabricError("worker reported failure: %s" % header.get("error"))
    models = header.get("models")
    if models != expected_models:
        raise FabricError(
            "worker returned %r models, expected %d" % (models, expected_models)
        )
    if len(payload) != 8 * expected_models:
        raise FabricError(
            "result vector is %d bytes, expected %d"
            % (len(payload), 8 * expected_models)
        )
    return header, list(struct.unpack("<%dd" % expected_models, payload))


# --------------------------------------------------------------------- #
# Parent side: workers, heartbeats, the scheduler
# --------------------------------------------------------------------- #


class RemoteWorker:
    """One remote worker's scheduling state (liveness, latency, load)."""

    def __init__(self, url: str) -> None:
        if "//" not in url:
            url = "http://" + url
        parts = urlsplit(url)
        if not parts.hostname or not parts.port:
            raise ValueError("worker URL %r must name a host and port" % url)
        self.url = url
        self.host = parts.hostname
        self.port = int(parts.port)
        self.alive = True  # optimistic: the first contact settles it
        self.misses = 0
        self.inflight = 0
        self.per_model_seconds = 0.0  # EWMA; 0 = no sample yet
        self.lock = threading.Lock()

    #: EWMA weight of the newest latency sample (matches the supervisor).
    LATENCY_ALPHA = 0.3

    def observe(self, seconds: float, models: int) -> None:
        per_model = seconds / max(1, models)
        with self.lock:
            if self.per_model_seconds:
                per_model = (
                    (1.0 - self.LATENCY_ALPHA) * self.per_model_seconds
                    + self.LATENCY_ALPHA * per_model
                )
            self.per_model_seconds = per_model

    def note_alive(self, registry: Optional[MetricsRegistry] = None) -> None:
        with self.lock:
            readmitted = not self.alive
            self.alive = True
            self.misses = 0
        if readmitted:
            _log.info("fabric worker %s re-admitted", self.url)
            if registry is not None:
                registry.inc("heartbeat.readmissions")

    def note_miss(
        self, threshold: int, registry: Optional[MetricsRegistry] = None
    ) -> None:
        with self.lock:
            self.misses += 1
            evicted = self.alive and self.misses >= threshold
            if evicted:
                self.alive = False
        if registry is not None:
            registry.inc("heartbeat.misses")
        if evicted:
            _log.warning(
                "fabric worker %s evicted after %d consecutive misses",
                self.url,
                threshold,
            )
            if registry is not None:
                registry.inc("heartbeat.evictions")

    def snapshot(self) -> Tuple[bool, int, float]:
        with self.lock:
            return self.alive, self.inflight, self.per_model_seconds


class HeartbeatMonitor:
    """A restartable daemon thread probing every worker's ``/healthz``.

    Eviction and re-admission both live on the shared
    :class:`RemoteWorker` state, so the scheduler (which also notices
    connection failures) and the monitor never disagree about liveness.
    Restartable because the owning service may be closed and reused
    (``respawn_workers`` closes everything): :meth:`ensure` is called at
    the top of every dispatch.
    """

    def __init__(
        self,
        workers: Sequence[RemoteWorker],
        registry: MetricsRegistry,
        *,
        interval: float = 1.0,
        dead_after: int = 3,
    ) -> None:
        self.workers = list(workers)
        self.registry = registry
        self.interval = float(interval)
        self.dead_after = int(dead_after)
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    def ensure(self) -> None:
        """Start (or restart) the probe thread; idempotent."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop = threading.Event()
            self._thread = threading.Thread(
                target=self._run, name="repro-fabric-heartbeat", daemon=True
            )
            self._thread.start()

    def stop(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
            self._stop.set()
        if thread is not None:
            thread.join(self.interval + 1.0)

    def _run(self) -> None:
        stop = self._stop
        while not stop.wait(self.interval):
            self.probe_all()

    def probe_all(self) -> None:
        for worker in self.workers:
            self.probe(worker)

    def probe(self, worker: RemoteWorker) -> bool:
        """One liveness probe; updates the worker's shared state."""
        self.registry.inc("heartbeat.probes")
        timeout = min(1.0, self.interval) if self.interval > 0 else 1.0
        try:
            conn = HTTPConnection(worker.host, worker.port, timeout=timeout)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                response.read()
                ok = response.status == 200
            finally:
                conn.close()
        except Exception:
            ok = False
        if ok:
            worker.note_alive(self.registry)
        else:
            worker.note_miss(self.dead_after, self.registry)
        return ok


class FabricShard:
    """One model span bound for a remote worker, plus its attempt history."""

    __slots__ = (
        "group",
        "span",
        "digest",
        "count_bytes",
        "location_bytes",
        "count_rows",
        "location_rows",
        "models",
        "attempts",
        "deadline_scale",
        "not_before",
        "done",
        "failed",
        "speculated",
        "result",
        "evaluate_seconds",
        "metrics",
    )

    def __init__(
        self,
        *,
        digest: str,
        count_bytes: bytes,
        location_bytes: bytes,
        count_rows: int,
        location_rows: int,
        models: int,
        span: Tuple[int, int] = (0, 0),
        group=None,
    ) -> None:
        self.group = group
        self.span = span
        self.digest = digest
        self.count_bytes = count_bytes
        self.location_bytes = location_bytes
        self.count_rows = int(count_rows)
        self.location_rows = int(location_rows)
        self.models = int(models)
        self.attempts = 0
        self.deadline_scale = 1.0
        self.not_before = 0.0
        self.done = False
        self.failed = False
        self.speculated = False
        self.result: Optional[List[float]] = None
        self.evaluate_seconds = 0.0
        self.metrics: Optional[Dict] = None

    @property
    def settled(self) -> bool:
        return self.done or self.failed


class _Attempt:
    """One in-flight submission of a shard to one worker."""

    __slots__ = ("shard", "worker", "submitted", "deadline", "speculative")

    def __init__(self, shard, worker, submitted, deadline, speculative):
        self.shard = shard
        self.worker = worker
        self.submitted = submitted
        self.deadline = deadline
        self.speculative = speculative


class FabricScheduler:
    """Drives a batch of :class:`FabricShard` across the remote workers.

    The analogue of :class:`~repro.engine.supervise.ShardSupervisor` for
    the remote route: :meth:`dispatch` runs every shard to completion or
    permanent failure and returns ``(successes, failures)`` — failed
    shards are the caller's to evaluate on the local path, which is what
    keeps results identical under any fault.
    """

    #: Deadline scaling, mirroring the local supervisor's constants.
    DEADLINE_FACTOR = 8.0
    DEFAULT_DEADLINE = 60.0
    DEADLINE_FLOOR = 0.5
    #: Queue depth per worker; beyond it shards wait in the parent, where
    #: they can still be re-routed when the worker dies.
    MAX_INFLIGHT_PER_WORKER = 2
    #: Consecutive failed contacts (heartbeat or dispatch) before eviction.
    DEAD_AFTER_MISSES = 3
    #: Speculation floor / ratio: a shard is re-executed elsewhere once it
    #: has run ``SPECULATE_RATIO`` times its expected duration (at least
    #: ``SPECULATE_MIN_SECONDS``) with the queue empty and a worker idle.
    SPECULATE_MIN_SECONDS = 0.25
    SPECULATE_RATIO = 2.0
    #: Longest the loop sleeps waiting for a completion event.
    WATCHDOG_INTERVAL = 0.1

    def __init__(
        self,
        worker_urls: Sequence[str],
        registry: MetricsRegistry,
        *,
        max_retries: int = 2,
        shard_timeout: Optional[float] = None,
        backoff: Optional[Backoff] = None,
        heartbeat_interval: float = 1.0,
        fault_plan=None,
    ) -> None:
        self.workers = [RemoteWorker(url) for url in worker_urls]
        self.registry = registry
        self.max_retries = int(max_retries)
        self.shard_timeout = shard_timeout
        self.backoff = backoff if backoff is not None else Backoff()
        self.fault_plan = fault_plan
        self.monitor = HeartbeatMonitor(
            self.workers,
            registry,
            interval=heartbeat_interval,
            dead_after=self.DEAD_AFTER_MISSES,
        )
        self._serial = 0
        self._closed = False
        #: One dispatch at a time: the scheduler owns the shared worker
        #: states, which two concurrent loops would race.
        self._lock = threading.Lock()

    # -- liveness ----------------------------------------------------------

    def live_workers(self) -> List[RemoteWorker]:
        return [w for w in self.workers if w.snapshot()[0]]

    def has_live_workers(self) -> bool:
        return any(w.snapshot()[0] for w in self.workers)

    def close(self) -> None:
        self._closed = True
        self.monitor.stop()

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self, shards: Sequence[FabricShard]
    ) -> Tuple[List[FabricShard], List[FabricShard]]:
        """Run every shard remotely; return ``(successes, failures)``."""
        with self._lock:
            if self._closed or not self.workers or not shards:
                return [], list(shards)
            self.monitor.ensure()
            return self._dispatch(list(shards))

    def _dispatch(self, shards):
        pending = deque(shards)
        inflight: Dict[int, _Attempt] = {}
        completions: "Queue" = Queue()
        successes: List[FabricShard] = []
        failures: List[FabricShard] = []

        with obs_trace.span("service.fabric", shards=len(shards)):
            while pending or inflight:
                if not self.has_live_workers():
                    # fail fast: hand everything back (queued *and* in
                    # flight) so the service can degrade to the local pool
                    # without burning retries
                    for attempt in inflight.values():
                        self._release_worker(attempt.worker)
                        pending.append(attempt.shard)
                    inflight.clear()
                    while pending:
                        shard = pending.popleft()
                        if not shard.settled:
                            shard.failed = True
                            self.registry.inc("fabric.shards_failed")
                            failures.append(shard)
                    break

                now = time.monotonic()
                held = []
                while pending:
                    shard = pending.popleft()
                    if shard.settled:
                        continue
                    if shard.not_before > now:
                        held.append(shard)
                        continue
                    worker = self._pick_worker()
                    if worker is None:  # every live worker is saturated
                        held.append(shard)
                        break
                    self._submit(shard, worker, inflight, completions, False)
                pending.extendleft(reversed(held))

                if not pending:
                    self._maybe_speculate(inflight, completions)

                self._wait_for_event(pending, inflight, completions)

                while True:
                    try:
                        token, kind, payload = completions.get_nowait()
                    except Empty:
                        break
                    self._complete(
                        token, kind, payload, inflight, pending, successes, failures
                    )

                now = time.monotonic()
                for token, attempt in list(inflight.items()):
                    if now > attempt.deadline:
                        self._abandon(token, attempt, inflight, pending, failures)
        return successes, failures

    # -- placement ---------------------------------------------------------

    def _pick_worker(self, exclude=None, idle_only=False):
        """The live worker with the smallest expected queue time."""
        best = None
        best_score = None
        for worker in self.workers:
            if worker is exclude:
                continue
            alive, inflight, per_model = worker.snapshot()
            if not alive or inflight >= self.MAX_INFLIGHT_PER_WORKER:
                continue
            if idle_only and inflight:
                continue
            score = (inflight + 1) * (per_model if per_model > 0 else 1e-6)
            if best is None or score < best_score:
                best, best_score = worker, score
        return best

    def _deadline_for(self, shard: FabricShard, worker: RemoteWorker) -> float:
        if self.shard_timeout is not None:
            return self.shard_timeout * shard.deadline_scale
        per_model = worker.snapshot()[2]
        if not per_model:
            return self.DEFAULT_DEADLINE * shard.deadline_scale
        computed = self.DEADLINE_FACTOR * per_model * max(1, shard.models) + 0.5
        return max(self.DEADLINE_FLOOR, computed) * shard.deadline_scale

    def _maybe_speculate(self, inflight, completions) -> None:
        now = time.monotonic()
        for attempt in list(inflight.values()):
            shard = attempt.shard
            if shard.settled or shard.speculated or attempt.speculative:
                continue
            if sum(1 for a in inflight.values() if a.shard is shard) != 1:
                continue
            per_model = attempt.worker.snapshot()[2]
            if not per_model:
                continue  # no latency sample: nothing to call a straggler
            expected = per_model * max(1, shard.models)
            threshold = max(self.SPECULATE_MIN_SECONDS, self.SPECULATE_RATIO * expected)
            if now - attempt.submitted < threshold:
                continue
            other = self._pick_worker(exclude=attempt.worker, idle_only=True)
            if other is None:
                continue
            shard.speculated = True
            self.registry.inc("steal.speculated")
            self._submit(shard, other, inflight, completions, True)

    # -- submission --------------------------------------------------------

    def _submit(self, shard, worker, inflight, completions, speculative) -> None:
        limit = self._deadline_for(shard, worker)
        now = time.monotonic()
        self._serial += 1
        token = self._serial
        inflight[token] = _Attempt(shard, worker, now, now + limit, speculative)
        with worker.lock:
            worker.inflight += 1
        body = encode_shard_request(
            shard.digest,
            shard.count_bytes,
            shard.location_bytes,
            count_rows=shard.count_rows,
            location_rows=shard.location_rows,
            models=shard.models,
            # workers receive the deadline as epoch seconds (comparable
            # across hosts with sane clocks) and abort their own kernel
            # passes past it — see batch.shard_deadline
            deadline=time.time() + limit,
        )
        self.registry.inc("fabric.shards_dispatched")
        self.registry.inc("fabric.bytes_sent", len(body))
        thread = threading.Thread(
            target=self._post,
            args=(token, worker, body, shard.models, limit, completions),
            name="repro-fabric-post",
            daemon=True,
        )
        thread.start()

    def _post(self, token, worker, body, models, limit, completions) -> None:
        """Submission-thread body: one POST, outcome onto the queue.

        ``faults.scoped`` must be re-entered here: thread-scoped plans do
        not propagate into spawned threads, but occurrence counters live
        on the (shared, lock-guarded) plan object, so the injection
        schedule stays deterministic across submission threads.
        """
        try:
            with faults.scoped(self.fault_plan):
                outcome = self._post_shard(worker, body, models, limit)
        except BaseException as exc:
            completions.put((token, "error", exc))
            return
        completions.put((token, "ok", outcome))

    def _post_shard(self, worker, body, models, limit):
        faults.fire("net.refuse", self.registry)
        # socket timeout just past the parent-side deadline: an abandoned
        # attempt's thread unblocks shortly after the scheduler gave up on
        # it instead of pinning a socket forever
        conn = HTTPConnection(worker.host, worker.port, timeout=limit + 2.0)
        try:
            conn.request(
                "POST",
                "/v1/shard",
                body=body,
                headers={"Content-Type": "application/octet-stream"},
            )
            faults.fire("net.delay", self.registry)
            response = conn.getresponse()
            raw = response.read()
        finally:
            conn.close()
        faults.fire("net.drop", self.registry)
        if faults.fire("net.garbage", self.registry):
            raw = raw[: len(raw) // 2] + b"\xff" * (len(raw) - len(raw) // 2)
        if response.status != 200:
            raise FabricError(
                "worker %s returned HTTP %d: %s"
                % (worker.url, response.status, raw[:200])
            )
        header, probabilities = decode_shard_response(raw, models)
        return header, probabilities, len(raw)

    # -- completion --------------------------------------------------------

    def _release_worker(self, worker) -> None:
        with worker.lock:
            worker.inflight = max(0, worker.inflight - 1)

    def _complete(
        self, token, kind, payload, inflight, pending, successes, failures
    ) -> None:
        attempt = inflight.pop(token, None)
        if attempt is None:
            # abandoned past its deadline (or its shard settled and the
            # sibling attempts were dropped): a late result is discarded —
            # first result wins
            if kind == "ok":
                self.registry.inc("steal.late_discards")
            return
        self._release_worker(attempt.worker)
        shard = attempt.shard
        if kind == "ok":
            header, probabilities, received = payload
            self.registry.inc("fabric.bytes_received", received)
            elapsed = time.monotonic() - attempt.submitted
            attempt.worker.observe(elapsed, shard.models)
            attempt.worker.note_alive(self.registry)
            if shard.settled:
                self.registry.inc("steal.late_discards")
                return
            shard.done = True
            shard.result = probabilities
            shard.evaluate_seconds = float(header.get("evaluate_seconds") or 0.0)
            shard.metrics = header.get("metrics")
            self.registry.inc("fabric.shards_completed")
            self.registry.inc("fabric.models", shard.models)
            self.registry.observe("fabric.remote_seconds", elapsed)
            if attempt.speculative:
                self.registry.inc("steal.wins")
            successes.append(shard)
            self._drop_siblings(shard, inflight)
            return
        # a failed attempt
        exc = payload
        self.registry.inc("fabric.worker_errors")
        _log.debug("fabric attempt on %s failed: %r", attempt.worker.url, exc)
        if isinstance(exc, (ConnectionError, OSError)) and not isinstance(
            exc, FabricError
        ):
            # could not reach the worker at all: charge its liveness, so a
            # dead worker is evicted without waiting for the heartbeat
            attempt.worker.note_miss(self.DEAD_AFTER_MISSES, self.registry)
        if shard.settled or self._live_attempts(shard, inflight):
            return  # another attempt may still win; nothing to requeue
        self._requeue(shard, pending, failures)

    def _abandon(self, token, attempt, inflight, pending, failures) -> None:
        """A parent-side deadline expired: drop the attempt, charge the shard."""
        inflight.pop(token, None)
        self._release_worker(attempt.worker)
        self.registry.inc("fabric.timeouts")
        # a hung worker counts against liveness exactly like a refused
        # connection; a merely slow one earns the miss back on its next
        # completed probe or shard
        attempt.worker.note_miss(self.DEAD_AFTER_MISSES, self.registry)
        shard = attempt.shard
        if shard.settled or self._live_attempts(shard, inflight):
            return
        shard.deadline_scale *= 2.0
        self._requeue(shard, pending, failures)

    @staticmethod
    def _live_attempts(shard, inflight) -> int:
        return sum(1 for a in inflight.values() if a.shard is shard)

    def _drop_siblings(self, shard, inflight) -> None:
        for token, attempt in list(inflight.items()):
            if attempt.shard is shard:
                inflight.pop(token)
                self._release_worker(attempt.worker)

    def _requeue(self, shard, pending, failures) -> None:
        shard.attempts += 1
        if shard.attempts > self.max_retries:
            shard.failed = True
            self.registry.inc("fabric.shards_failed")
            failures.append(shard)
            return
        delay = self.backoff.delay(shard.attempts)
        self.registry.inc("retry.attempts")
        self.registry.observe("retry.backoff_seconds", delay)
        shard.not_before = time.monotonic() + delay
        pending.append(shard)

    def _wait_for_event(self, pending, inflight, completions) -> None:
        """Block until a completion lands or the next deadline/backoff edge."""
        if not pending and not inflight:
            return
        now = time.monotonic()
        horizon = self.WATCHDOG_INTERVAL
        for attempt in inflight.values():
            horizon = min(horizon, attempt.deadline - now)
        for shard in pending:
            if shard.not_before:
                horizon = min(horizon, shard.not_before - now)
        try:
            item = completions.get(timeout=max(0.005, horizon))
        except Empty:
            return
        completions.put(item)  # handled by the drain loop right after


# --------------------------------------------------------------------- #
# Worker side
# --------------------------------------------------------------------- #


class ShardRejected(Exception):
    """A shard request the worker refuses (maps to an HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


class ShardWorker:
    """A long-lived HTTP shard evaluator over a shared structure store.

    Endpoints:

    ``GET /healthz``
        ``200 {"status": "ok", "shards": N, "structures": M}`` — the
        liveness probe the parent's heartbeat monitor hits.
    ``GET /stats``
        The worker's metrics registry in Prometheus text format.
    ``POST /v1/shard``
        One shard frame in (structure digest + model matrices), one
        result frame out (the float64 probability vector plus a metrics
        delta the parent merges into its own registry).

    Evaluation runs on a single executor thread — compiled structures'
    linearization workspaces are not reentrant — while health probes stay
    on the event loop, so a worker grinding through a shard still
    answers its heartbeat.
    """

    #: Per-worker compiled-structure LRU bound (matches the pool workers).
    MAX_STRUCTURES = 4

    def __init__(
        self,
        store_root: str,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        kernel: str = "auto",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("the shard worker requires numpy")
        if kernel not in ("auto",) + KERNELS:
            raise ValueError(
                "kernel must be one of %s" % ", ".join(("auto",) + KERNELS)
            )
        from .store import StructureStore

        self.store_root = store_root
        self.host = host
        self.port = int(port)
        #: Kernel request for every shard pass; the worker resolves the
        #: native backend for its own host (compile/warm-start from the
        #: store's `native/` cache, fused fallback when that fails).
        self.kernel = kernel
        _native.set_cache_dir(os.path.join(store_root, "native"))
        self._native_state: Dict[str, int] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self._store = StructureStore(store_root, registry=self.registry)
        self._structures: "OrderedDict[str, object]" = OrderedDict()
        self._structures_lock = threading.Lock()
        from concurrent.futures import ThreadPoolExecutor

        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-shard-eval"
        )
        self.shards_served = 0
        self._server = None
        self._stopped = None

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        import asyncio

        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.host, port=self.port
        )
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        import asyncio
        import signal as signal_mod

        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal_mod.SIGTERM, signal_mod.SIGINT):
            try:
                loop.add_signal_handler(signum, self.initiate_stop)
            except (NotImplementedError, RuntimeError, ValueError):
                pass  # non-main thread or platform without signal support
        await self._stopped.wait()
        self._server.close()
        await self._server.wait_closed()
        self._executor.shutdown(wait=False)

    def initiate_stop(self) -> None:
        if self._stopped is not None and not self._stopped.is_set():
            self._stopped.set()

    # -- connection handling ----------------------------------------------

    async def _handle_client(self, reader, writer) -> None:
        from ..server.http import HTTPError, error_bytes, read_request

        try:
            try:
                request = await read_request(reader, max_body=MAX_SHARD_BODY)
            except HTTPError as exc:
                writer.write(error_bytes(exc))
                await writer.drain()
                return
            if request is None:
                return
            await self._respond(request, writer)
        except (ConnectionError, OSError):
            pass  # client went away mid-response
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(self, request, writer) -> None:
        from ..server.http import HTTPError, error_bytes, response_bytes

        self.registry.inc("fabric.worker_requests")
        try:
            if request.path == "/healthz" and request.method == "GET":
                with self._structures_lock:
                    structures = len(self._structures)
                body = json.dumps(
                    {
                        "status": "ok",
                        "shards": self.shards_served,
                        "structures": structures,
                    }
                ).encode("utf-8")
                writer.write(response_bytes(200, body))
            elif request.path == "/stats" and request.method == "GET":
                writer.write(
                    response_bytes(
                        200,
                        self.registry.expose_text().encode("utf-8"),
                        content_type="text/plain; version=0.0.4",
                    )
                )
            elif request.path == "/v1/shard" and request.method == "POST":
                import asyncio

                loop = asyncio.get_running_loop()
                out = await loop.run_in_executor(
                    self._executor, self._evaluate_shard, request.body
                )
                writer.write(
                    response_bytes(
                        200, out, content_type="application/octet-stream"
                    )
                )
            else:
                raise HTTPError(404, "no such endpoint")
        except HTTPError as exc:
            writer.write(error_bytes(exc))
        except ShardRejected as exc:
            writer.write(error_bytes(HTTPError(exc.status, exc.message)))
        except Exception as exc:
            self.registry.inc("fabric.worker_failures")
            writer.write(error_bytes(HTTPError(500, "shard failed: %s" % exc)))
        await writer.drain()

    # -- evaluation (single executor thread) -------------------------------

    def _structure_for(self, digest: str):
        with self._structures_lock:
            compiled = self._structures.get(digest)
            if compiled is not None:
                self._structures.move_to_end(digest)
                return compiled
        loaded = self._store.load_digest(digest, mmap=True)
        if loaded is None:
            raise ShardRejected(404, "structure %s... not in store" % digest[:16])
        compiled, nbytes = loaded
        self.registry.inc("fabric.worker_structure_loads")
        self.registry.inc("fabric.worker_structure_bytes", nbytes)
        with self._structures_lock:
            self._structures[digest] = compiled
            self._structures.move_to_end(digest)
            while len(self._structures) > self.MAX_STRUCTURES:
                self._structures.popitem(last=False)
        return compiled

    def _evaluate_shard(self, body: bytes) -> bytes:
        import numpy

        # the same crash/hang sites the pool workers fire, so one chaos
        # plan (REPRO_FAULT_PLAN is process-global, visible here) covers
        # both executor kinds
        faults.fire("worker.kill", self.registry)
        faults.fire("worker.hang", self.registry)
        started = time.perf_counter()
        before = self.registry.snapshot()
        try:
            header, count_bytes, location_bytes = decode_shard_request(body)
        except FabricError as exc:
            raise ShardRejected(400, str(exc)) from None
        k = int(header["models"])
        compiled = self._structure_for(header["digest"])
        count = (
            numpy.frombuffer(count_bytes, dtype="<f8")
            .reshape(int(header["count_rows"]), k)
            .copy()
        )
        location = (
            numpy.frombuffer(location_bytes, dtype="<f8")
            .reshape(int(header["location_rows"]), k)
            .copy()
        )
        linearized_before = getattr(compiled, "_linearized", None)
        native_before = (
            linearized_before.native_passes if linearized_before is not None else 0
        )
        with shard_deadline(header.get("deadline")):
            probabilities = compiled.evaluate_probabilities(
                count, location, k, kernel=self.kernel
            )
        linearized = getattr(compiled, "_linearized", None)
        if linearized is not None and linearized.native_passes > native_before:
            self.registry.inc(
                "kernel.native_passes", linearized.native_passes - native_before
            )
        _native.publish_counters(self.registry, self._native_state)
        elapsed = time.perf_counter() - started
        self.shards_served += 1
        self.registry.inc("fabric.worker_shards")
        self.registry.inc("fabric.worker_models", k)
        self.registry.observe("fabric.worker_evaluate_seconds", elapsed)
        # ship home everything this shard changed (store counters, fault
        # injections, the fabric.worker_* counts above): the parent merges
        # the delta, so new worker metrics never need parent-side plumbing
        return encode_shard_response(
            probabilities,
            evaluate_seconds=elapsed,
            metrics=self.registry.diff(before),
        )


# --------------------------------------------------------------------- #
# Embedding helper (tests, demos)
# --------------------------------------------------------------------- #


class WorkerHandle:
    """A shard worker running on a background thread (see :func:`worker_in_thread`)."""

    def __init__(self):
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.error: Optional[BaseException] = None
        self.worker: Optional[ShardWorker] = None
        self._loop = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()

    @property
    def url(self) -> str:
        return "http://%s:%d" % (self.host, self.port)

    def stop(self, timeout: float = 10.0) -> None:
        if self._loop is not None and self.worker is not None:
            try:
                self._loop.call_soon_threadsafe(self.worker.initiate_stop)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout)


def worker_in_thread(store_root: str, **kwargs) -> WorkerHandle:
    """Start a :class:`ShardWorker` on a daemon thread; return its handle.

    Binds an ephemeral port by default and returns only after the
    listener is accepting connections — tests can dial ``handle.url``
    immediately.  Raises if startup failed.
    """
    import asyncio

    kwargs.setdefault("port", 0)
    handle = WorkerHandle()

    def run():
        async def main():
            worker = ShardWorker(store_root, **kwargs)
            try:
                await worker.start()
            except BaseException as exc:
                handle.error = exc
                handle._ready.set()
                return
            handle.host = worker.host
            handle.port = worker.port
            handle.worker = worker
            handle._loop = asyncio.get_running_loop()
            handle._ready.set()
            await worker.serve_forever()

        asyncio.run(main())

    handle._thread = threading.Thread(
        target=run, name="repro-shard-worker", daemon=True
    )
    handle._thread.start()
    if not handle._ready.wait(30.0):
        raise RuntimeError("shard worker thread did not start in time")
    if handle.error is not None:
        raise RuntimeError("shard worker failed to start: %r" % handle.error)
    return handle

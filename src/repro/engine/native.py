"""Native compiled kernel backend behind the ``kernel=`` seam.

The fused CSR schedule (:class:`repro.engine.batch.FusedSchedule`) is
already the exact input format a compiled kernel wants: one concatenated
child-position-major edge array, a layer bounds table, and contiguous
float64 probability matrices.  This module compiles the C implementation
shipped in-repo (``_native_kernel.c``) **on demand** with the system C
compiler and calls it through :mod:`ctypes`, consuming the schedule
arrays zero-copy.  No Numba/cffi/compiled-wheel dependency — a plain
``cc`` is the only requirement, and its absence is a supported state:

* no usable compiler (including ``CC=/nonexistent``), a failed compile,
  or a checksum-mismatched cache entry never raises out of the kernel
  chooser — the pass falls back to the fused numpy kernel and the
  ``native.fallbacks`` counter records it;
* the compiled ``.so`` is cached **content-addressed** (SHA-256 of the C
  source + the compiler identity + the flags + the ABI tag) with a JSON
  marker recording the shared object's own checksum, the same
  verify-then-trust model the structure store uses.  Services and
  ``repro worker`` shards point the cache under their store directory
  (``<store>/native``), so every process on the host warm-starts the
  library the way it warm-starts structures;
* a freshly loaded library must pass a bit-exact smoke test (forward,
  collapse, and backward on a handcrafted diagram) before it is ever
  used for real passes.

The C kernel mirrors the fused kernel operation-for-operation (including
model-uniform level collapse and numpy's exact gradient-reduction
accumulation order), so ``kernel="native"`` results are bit-for-bit
identical to ``kernel="fused"`` — enforced by
``tests/property/test_fused_equivalence.py``.
"""

from __future__ import annotations

import ctypes
import hashlib
import json
import os
import shutil
import subprocess
import tempfile
import threading

try:  # pragma: no cover - exercised implicitly on both kinds of hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

__all__ = [
    "available",
    "backward",
    "cache_dir",
    "counters",
    "forward",
    "load",
    "note_fallback",
    "publish_counters",
    "reset",
    "set_cache_dir",
]

#: The C source compiled into the backend (ships in-repo, read at build
#: time — its SHA-256 is half of the cache key).
SOURCE_PATH = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "_native_kernel.c"
)

#: Compile flags.  ``-ffp-contract=off`` is load-bearing: FMA contraction
#: would change rounding and break the bit-for-bit pin against the fused
#: kernel.  ``-ffast-math`` is banned for the same reason.
CFLAGS = ("-O3", "-fPIC", "-shared", "-std=c99", "-ffp-contract=off")

#: Bumped whenever the C call signatures change; part of the cache key
#: and checked against ``repro_native_abi()`` after every load.
ABI_VERSION = 1

_c_double_p = ctypes.POINTER(ctypes.c_double)
_c_int64_p = ctypes.POINTER(ctypes.c_int64)
_c_uint8_p = ctypes.POINTER(ctypes.c_uint8)
_c_double_pp = ctypes.POINTER(_c_double_p)

_LOCK = threading.RLock()

#: Process-wide backend state: the load is attempted at most once per
#: process (``reset()`` re-arms it, for tests) and the result — a bound
#: library or ``None`` — is cached.
_STATE = {"lib": None, "attempted": False, "cache_dir": None}

#: Monotone process-wide counters, published into metrics registries as
#: ``native.compiles`` / ``native.loads`` / ``native.fallbacks`` via
#: :func:`publish_counters`.
_COUNTERS = {"compiles": 0, "loads": 0, "fallbacks": 0}


class NativeError(RuntimeError):
    """Raised when a loaded native library misbehaves mid-pass."""


# --------------------------------------------------------------------- #
# Configuration, counters
# --------------------------------------------------------------------- #


def set_cache_dir(path: str) -> None:
    """Point the ``.so`` cache at ``path`` (typically ``<store>/native``).

    Takes effect on the next load attempt; a library that is already
    loaded stays loaded (the backend is process-wide).  The
    ``REPRO_NATIVE_CACHE`` environment variable takes precedence so a
    deployment can pin one host-wide cache for every process.
    """
    with _LOCK:
        _STATE["cache_dir"] = path


def cache_dir() -> str:
    """The directory compiled libraries are cached in."""
    env = os.environ.get("REPRO_NATIVE_CACHE")
    if env:
        return env
    with _LOCK:
        if _STATE["cache_dir"]:
            return _STATE["cache_dir"]
    euid = getattr(os, "geteuid", lambda: 0)()
    return os.path.join(tempfile.gettempdir(), "repro-native-%d" % euid)


def counters() -> dict:
    """A snapshot of the monotone backend counters."""
    with _LOCK:
        return dict(_COUNTERS)


def note_fallback() -> None:
    """Record one pass that wanted the native kernel but degraded."""
    with _LOCK:
        _COUNTERS["fallbacks"] += 1


def publish_counters(registry, state: dict) -> None:
    """Fold counter deltas since ``state`` into ``registry``.

    ``state`` is the caller's private high-water dict (one per registry),
    so several services in one process never double-publish the shared
    process-wide totals.
    """
    for name, total in counters().items():
        delta = total - state.get(name, 0)
        if delta > 0:
            registry.inc("native." + name, delta)
            state[name] = total


def reset() -> None:
    """Forget the cached load outcome so the next pass retries (tests)."""
    with _LOCK:
        _STATE["lib"] = None
        _STATE["attempted"] = False


# --------------------------------------------------------------------- #
# Compile + load
# --------------------------------------------------------------------- #


def _find_compiler():
    """The C compiler to use, or ``None`` when the host has none.

    ``CC`` is authoritative when set: pointing it at a non-executable
    (``CC=/nonexistent``) deliberately simulates a compiler-less host.
    """
    cc = os.environ.get("CC")
    if cc is not None:
        cc = cc.strip()
        if not cc:
            return None
        resolved = shutil.which(cc)
        return resolved
    for candidate in ("cc", "gcc", "clang"):
        resolved = shutil.which(candidate)
        if resolved:
            return resolved
    return None


def _compiler_id(cc: str) -> str:
    """A stable identity string for the compiler (half of the cache key)."""
    try:
        out = subprocess.run(
            [cc, "--version"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            timeout=30,
            check=False,
        )
        first = out.stdout.decode("utf-8", "replace").splitlines()
        if out.returncode == 0 and first:
            return first[0].strip()
    except (OSError, subprocess.SubprocessError):
        pass
    try:
        st = os.stat(cc)
        return "%s:%d:%d" % (cc, st.st_size, int(st.st_mtime))
    except OSError:
        return cc


def _file_sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _cache_key(source: bytes, compiler_id: str) -> str:
    digest = hashlib.sha256()
    digest.update(source)
    digest.update(b"\0")
    digest.update(compiler_id.encode("utf-8", "replace"))
    digest.update(b"\0")
    digest.update(" ".join(CFLAGS).encode("ascii"))
    digest.update(b"\0abi=%d\0ptr=%d" % (ABI_VERSION, ctypes.sizeof(ctypes.c_void_p)))
    return digest.hexdigest()


class _Library:
    """A loaded, bound, smoke-tested native library."""

    __slots__ = ("cdll", "path", "forward", "backward")

    def __init__(self, cdll, path):
        self.cdll = cdll
        self.path = path
        self.forward = cdll.repro_native_forward
        self.forward.restype = ctypes.c_int
        self.forward.argtypes = [
            _c_int64_p,  # kids
            _c_int64_p,  # bounds
            ctypes.c_int64,  # nlayers
            _c_double_pp,  # cols
            ctypes.c_int64,  # num_models
            ctypes.c_int64,  # root_slot
            _c_double_p,  # values
            _c_double_p,  # narrow_values
            _c_uint8_p,  # narrow
            _c_int64_p,  # collapsed_out
        ]
        self.backward = cdll.repro_native_backward
        self.backward.restype = ctypes.c_int
        self.backward.argtypes = [
            _c_int64_p,  # kids
            _c_int64_p,  # bounds
            ctypes.c_int64,  # nlayers
            _c_double_pp,  # cols
            ctypes.c_int64,  # num_models
            ctypes.c_int64,  # num_slots
            ctypes.c_int64,  # root_slot
            _c_double_p,  # values
            _c_double_p,  # narrow_values
            _c_uint8_p,  # narrow
            _c_double_p,  # adjoint
            _c_double_p,  # grads
            _c_double_p,  # scratch
            _c_int64_p,  # collapsed_out
        ]


def _bind(path: str):
    cdll = ctypes.CDLL(path)
    abi = cdll.repro_native_abi
    abi.restype = ctypes.c_int
    abi.argtypes = []
    if int(abi()) != ABI_VERSION:
        raise OSError("native library ABI mismatch")
    return _Library(cdll, path)


def _dp(array):
    return array.ctypes.data_as(_c_double_p)


def _ip(array):
    return array.ctypes.data_as(_c_int64_p)


def _smoke_test(lib) -> bool:
    """Bit-exact sanity check on a handcrafted one-layer diagram.

    Root node (slot 2) with the FALSE/TRUE terminals as children: the
    forward value is exactly ``columns[1]``, the gradient rows are
    exactly ``[0, 1]`` per model, and a model-uniform column matrix must
    take the collapse path.  Every expected float is exact in binary, so
    any deviation means a miscompiled or foreign library.
    """
    kids = _np.array([0, 1], dtype=_np.int64)
    bounds = _np.array([0, 2, 3, 0, 2, 2], dtype=_np.int64)
    col = _np.array([[0.25, 0.5], [0.75, 0.5]], dtype=_np.float64)
    cols = (_c_double_p * 1)(_dp(col))
    values = _np.empty((3, 2), dtype=_np.float64)
    narrow_values = _np.empty(3, dtype=_np.float64)
    narrow = _np.empty(3, dtype=_np.uint8)
    collapsed = ctypes.c_int64(-1)
    rc = lib.forward(
        _ip(kids), _ip(bounds), 1, cols, 2, 2,
        _dp(values), _dp(narrow_values), narrow.ctypes.data_as(_c_uint8_p),
        ctypes.byref(collapsed),
    )
    if rc != 0 or collapsed.value != 0 or narrow[2] != 0:
        return False
    if values[2, 0] != 0.75 or values[2, 1] != 0.5:
        return False

    adjoint = _np.empty((3, 2), dtype=_np.float64)
    grads = _np.empty(4, dtype=_np.float64)
    scratch = _np.empty(1, dtype=_np.float64)
    rc = lib.backward(
        _ip(kids), _ip(bounds), 1, cols, 2, 3, 2,
        _dp(values), _dp(narrow_values), narrow.ctypes.data_as(_c_uint8_p),
        _dp(adjoint), _dp(grads), _dp(scratch), ctypes.byref(collapsed),
    )
    if rc != 0 or grads.tolist() != [0.0, 0.0, 1.0, 1.0]:
        return False

    uniform = _np.array([[0.5, 0.5], [0.5, 0.5]], dtype=_np.float64)
    cols_u = (_c_double_p * 1)(_dp(uniform))
    rc = lib.forward(
        _ip(kids), _ip(bounds), 1, cols_u, 2, 2,
        _dp(values), _dp(narrow_values), narrow.ctypes.data_as(_c_uint8_p),
        ctypes.byref(collapsed),
    )
    return (
        rc == 0
        and collapsed.value == 1
        and narrow[2] == 1
        and values[2, 0] == 0.5
        and values[2, 1] == 0.5
    )


def _load_cached(so_path: str, marker_path: str):
    """Load a cached entry, verifying the marker checksum first.

    A mismatched or unreadable entry is a cache **miss** (the caller
    recompiles); it must never be trusted.
    """
    try:
        with open(marker_path, "r", encoding="utf-8") as handle:
            marker = json.load(handle)
        expected = marker.get("so_sha256")
        if not expected or _file_sha256(so_path) != expected:
            return None
        return _bind(so_path)
    except (OSError, ValueError):
        return None


def _compile(cc: str, source_path: str, so_path: str, marker: dict):
    """Compile the source and commit ``.so`` + marker atomically."""
    directory = os.path.dirname(so_path)
    os.makedirs(directory, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".so.tmp")
    os.close(fd)
    try:
        result = subprocess.run(
            [cc, *CFLAGS, "-o", tmp, source_path],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            timeout=120,
            check=False,
        )
        if result.returncode != 0:
            return None
        marker = dict(marker, so_sha256=_file_sha256(tmp))
        os.replace(tmp, so_path)
        tmp = None
        fd, mtmp = tempfile.mkstemp(dir=directory, suffix=".json.tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(marker, handle, sort_keys=True)
            os.replace(mtmp, marker_path_for(so_path))
        except OSError:
            try:
                os.unlink(mtmp)
            except OSError:
                pass
            return None
        return _bind(so_path)
    except (OSError, subprocess.SubprocessError):
        return None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def marker_path_for(so_path: str) -> str:
    return so_path[: -len(".so")] + ".json"


def load():
    """Return the bound native library, or ``None`` when unavailable.

    The full compile-or-load decision runs at most once per process;
    every later call is a dict read.  All failure modes — no numpy, no
    source, no compiler, compile error, checksum mismatch with no way to
    recompile, ABI mismatch, smoke-test failure — yield ``None``, which
    the kernel chooser translates into a clean fused fallback.
    """
    with _LOCK:
        if _STATE["attempted"]:
            return _STATE["lib"]
        _STATE["attempted"] = True
        _STATE["lib"] = _load_locked()
        if _STATE["lib"] is not None:
            _COUNTERS["loads"] += 1
        return _STATE["lib"]


def _load_locked():
    if _np is None:
        return None
    try:
        with open(SOURCE_PATH, "rb") as handle:
            source = handle.read()
    except OSError:
        return None
    cc = _find_compiler()
    compiler_id = _compiler_id(cc) if cc else "no-compiler"
    key = _cache_key(source, compiler_id)
    directory = cache_dir()
    so_path = os.path.join(directory, key + ".so")
    marker_path = marker_path_for(so_path)

    lib = None
    if os.path.exists(so_path):
        lib = _load_cached(so_path, marker_path)
    if lib is None and cc is not None:
        marker = {
            "abi": ABI_VERSION,
            "cflags": list(CFLAGS),
            "compiler": compiler_id,
            "source_sha256": hashlib.sha256(source).hexdigest(),
        }
        lib = _compile(cc, SOURCE_PATH, so_path, marker)
        if lib is not None:
            _COUNTERS["compiles"] += 1
    if lib is not None and not _smoke_test(lib):
        lib = None
    return lib


def available() -> bool:
    """Whether native passes can run in this process (loads on demand)."""
    return load() is not None


# --------------------------------------------------------------------- #
# Pass execution
# --------------------------------------------------------------------- #


class _ScheduleContext:
    """The per-schedule arrays the C kernel consumes, prepared once.

    ``kids`` and ``bounds`` come straight from the FusedSchedule — when
    the schedule holds contiguous 8-byte integer arrays (the store's v2
    mmap included) they are passed zero-copy; anything else is converted
    exactly once and cached here.
    """

    __slots__ = (
        "kids",
        "bounds",
        "nlayers",
        "levels",
        "cards",
        "max_width",
        "sum_cards",
    )

    def __init__(self, schedule):
        kids = schedule.kids
        if not (
            isinstance(kids, _np.ndarray)
            and kids.dtype.kind == "i"
            and kids.dtype.itemsize == 8
            and kids.flags["C_CONTIGUOUS"]
        ):
            kids = _np.ascontiguousarray(kids, dtype=_np.int64)
        self.kids = kids
        self.bounds = _np.ascontiguousarray(
            _np.asarray(schedule.bounds, dtype=_np.int64)
        )
        self.nlayers = len(schedule.bounds)
        self.levels = tuple(b[0] for b in schedule.bounds)
        self.cards = tuple(b[5] for b in schedule.bounds)
        self.max_width = max(b[2] - b[1] for b in schedule.bounds)
        self.sum_cards = sum(self.cards)


def _context(schedule) -> _ScheduleContext:
    ctx = getattr(schedule, "_native_ctx", None)
    if ctx is None:
        ctx = _ScheduleContext(schedule)
        schedule._native_ctx = ctx
    return ctx


def _column_ptrs(ctx, columns_by_level, num_models):
    """Per-layer contiguous column-matrix pointers, deduplicated.

    Different levels usually share one matrix object (every location
    level points at the same ``C x K`` block), so contiguity conversion
    happens once per distinct matrix, not once per layer.
    """
    contiguous = {}
    keep = []
    ptrs = (_c_double_p * ctx.nlayers)()
    for index, level in enumerate(ctx.levels):
        columns = columns_by_level[level]
        entry = contiguous.get(id(columns))
        if entry is None:
            entry = _np.ascontiguousarray(columns, dtype=_np.float64)
            contiguous[id(columns)] = entry
            keep.append(columns)
        if entry.ndim != 2 or entry.shape[1] != num_models:
            raise NativeError(
                "level %d columns have shape %r, expected (%d, %d)"
                % (index, entry.shape, ctx.cards[index], num_models)
            )
        ptrs[index] = _dp(entry)
    # `contiguous` holds the converted arrays alive for the call; `keep`
    # pins the originals so id() keys stay unique
    return ptrs, (contiguous, keep)


def forward(diagram, columns_by_level, num_models):
    """Run the native bottom-up pass; returns ``(values, collapsed)``.

    ``values`` is the per-slot value matrix; the root row and every
    wide-layer row hold exactly the fused kernel's floats, while rows of
    collapsed (model-uniform) slots are deliberately unmaterialized —
    their scalar lives in the C side's width-1 table.  ``collapsed`` is
    the number of layers that took the collapse path.
    """
    lib = load()
    if lib is None:
        raise NativeError("native backend is not loaded")
    ctx = _context(diagram.fused())
    ptrs, _hold = _column_ptrs(ctx, columns_by_level, num_models)
    values = _np.empty((diagram.num_slots, num_models), dtype=_np.float64)
    narrow_values = _np.empty(diagram.num_slots, dtype=_np.float64)
    narrow = _np.empty(diagram.num_slots, dtype=_np.uint8)
    collapsed = ctypes.c_int64(0)
    rc = lib.forward(
        _ip(ctx.kids),
        _ip(ctx.bounds),
        ctx.nlayers,
        ptrs,
        num_models,
        diagram.root_slot,
        _dp(values),
        _dp(narrow_values),
        narrow.ctypes.data_as(_c_uint8_p),
        ctypes.byref(collapsed),
    )
    if rc != 0:
        raise NativeError("native forward pass failed with status %d" % rc)
    return values, int(collapsed.value)


def backward(diagram, columns_by_level, num_models):
    """Native forward + reverse sweep.

    Returns ``(values, gradients, collapsed)`` where ``gradients`` has
    the exact shape and float contents of the fused kernel's result:
    ``{level: (per-value gradient row tuples)}``.
    """
    lib = load()
    if lib is None:
        raise NativeError("native backend is not loaded")
    ctx = _context(diagram.fused())
    ptrs, _hold = _column_ptrs(ctx, columns_by_level, num_models)
    K = num_models
    values = _np.empty((diagram.num_slots, K), dtype=_np.float64)
    narrow_values = _np.empty(diagram.num_slots, dtype=_np.float64)
    narrow = _np.empty(diagram.num_slots, dtype=_np.uint8)
    adjoint = _np.empty((diagram.num_slots, K), dtype=_np.float64)
    grads = _np.empty(ctx.sum_cards * K, dtype=_np.float64)
    scratch = _np.empty(ctx.max_width, dtype=_np.float64)
    collapsed = ctypes.c_int64(0)
    rc = lib.backward(
        _ip(ctx.kids),
        _ip(ctx.bounds),
        ctx.nlayers,
        ptrs,
        K,
        diagram.num_slots,
        diagram.root_slot,
        _dp(values),
        _dp(narrow_values),
        narrow.ctypes.data_as(_c_uint8_p),
        _dp(adjoint),
        _dp(grads),
        _dp(scratch),
        ctypes.byref(collapsed),
    )
    if rc != 0:
        raise NativeError("native backward pass failed with status %d" % rc)
    gradients = {}
    offset = 0
    for level, card in zip(ctx.levels, ctx.cards):
        block = grads[offset : offset + card * K].reshape(card, K)
        gradients[level] = tuple(tuple(row) for row in block.tolist())
        offset += card * K
    return values, gradients, int(collapsed.value)

"""Supervised shard dispatch: deadlines, bounded retry, degradation.

:class:`repro.engine.service.SweepService` used to hand its shard blobs to
``multiprocessing.Pool.map`` and hope: a worker killed mid-shard, a hung
child or a payload that fails to unpickle either aborted the sweep or
hung it forever.  This module wraps the dispatch in a supervision loop
that guarantees **every shard either completes on a worker or is
evaluated in the parent** — the sweep's results are bit-for-bit identical
to a fault-free run no matter which faults strike:

* **Deadlines** — every shard gets a deadline scaled from the measured
  per-model latency (an EWMA kept in the metrics registry as the
  ``supervise.per_model_seconds`` gauge), overridable with a fixed
  ``shard_timeout``.  A shard past its deadline is abandoned and the pool
  respawned, which terminates the hung worker.
* **Death watch** — the pool's worker pids are watched between polls; a
  worker that vanished (``kill -9``, OOM, a crash) triggers a pool
  respawn and the resubmission of every in-flight shard.  Respawning the
  whole pool (not just the member) is deliberate: a worker killed while
  holding the shared inqueue lock can deadlock its siblings.
* **Bounded retry with exponential backoff plus deterministic jitter** —
  failed shards are retried up to ``max_retries`` times, each retry
  delayed by :class:`Backoff` (seeded, so test runs are reproducible).
* **Degradation cascade** — a shared-memory (``columns``) shard whose
  worker keeps erroring is re-dispatched over the pickled protocol
  (``repickle`` callback); a shard that exhausts every retry is
  *quarantined*: returned to the caller, which evaluates it in-parent.
  :class:`DegradationLadder` keeps per-route state at the service level so
  a route that failed (e.g. shm creation) is sidestepped for a cooldown
  and then probed again — the cascade steps back up when the fault clears.
* **Resource lifecycle** — :class:`ShmJanitor` tracks every shared-memory
  block the parent creates and unlinks the orphans at interpreter exit,
  so an exception (or a ``sys.exit``) mid-dispatch cannot leak ``/dev/shm``
  segments.  (A SIGKILLed parent is covered separately: parent-created
  blocks stay registered with ``multiprocessing``'s resource tracker,
  which survives the parent and unlinks them.)

Every transition is counted in the service's metrics registry under the
``fault.*`` / ``retry.*`` / ``supervise.*`` namespaces (see
:mod:`repro.obs.metrics`), so ``--stats``, ``--metrics`` and the span
trace make the fault handling observable.
"""

from __future__ import annotations

import atexit
import random
import threading
import time
from collections import deque
from typing import Callable, List, Optional, Sequence, Tuple

from . import faults
from ..obs import trace as obs_trace

__all__ = [
    "Backoff",
    "DegradationLadder",
    "ShardJob",
    "ShardSupervisor",
    "ShmJanitor",
    "janitor",
    "unsupervised_dispatch",
]


# --------------------------------------------------------------------- #
# Shared-memory janitor
# --------------------------------------------------------------------- #


class ShmJanitor:
    """Tracks parent-owned shared-memory blocks until they are released.

    The dispatch code adopts every block right after creation and releases
    it exactly once (close, optionally unlink).  Whatever is still adopted
    when the interpreter exits — an exception between creation and the
    ``finally``, a ``sys.exit`` mid-sweep — is closed and unlinked by the
    atexit sweep, so no ``/dev/shm`` segment outlives the parent process
    on any orderly exit path.

    Long-lived processes (the HTTP server) cannot wait for atexit: they
    call :meth:`sweep_stale` periodically, which releases only blocks
    older than a generous age bound — a live dispatch holds its blocks
    for seconds, so a minutes-scale bound never races in-flight work
    while still capping how long a leaked segment can survive.
    """

    def __init__(self) -> None:
        self._blocks = {}  # name -> (SharedMemory, adopted-at monotonic)
        self._lock = threading.Lock()

    def adopt(self, block) -> None:
        with self._lock:
            self._blocks[block.name] = (block, time.monotonic())

    def release(self, block, *, unlink: bool, registry=None) -> None:
        """Close (and optionally unlink) ``block``; idempotent per block."""
        with self._lock:
            self._blocks.pop(getattr(block, "name", None), None)
        try:
            block.close()
        except Exception as exc:  # exported views may pin the buffer
            faults.note_suppressed(registry, "shm.close", exc)
        if unlink:
            try:
                block.unlink()
            except Exception as exc:  # already removed
                faults.note_suppressed(registry, "shm.unlink", exc)

    def orphans(self) -> List[str]:
        with self._lock:
            return sorted(self._blocks)

    def _release_all(self, leaked, registry) -> int:
        for block in leaked:
            try:
                block.close()
            except Exception as exc:
                faults.note_suppressed(registry, "shm.close", exc)
            try:
                block.unlink()
            except Exception as exc:
                faults.note_suppressed(registry, "shm.unlink", exc)
        if leaked and registry is not None:
            registry.inc("fault.shm_orphans", len(leaked))
        return len(leaked)

    def sweep(self, registry=None) -> int:
        """Release every still-adopted block; returns how many there were."""
        with self._lock:
            leaked = [block for block, _ in self._blocks.values()]
            self._blocks.clear()
        return self._release_all(leaked, registry)

    def sweep_stale(self, max_age: float, registry=None) -> int:
        """Release blocks adopted more than ``max_age`` seconds ago.

        The periodic variant of :meth:`sweep` for processes that never
        exit: anything younger than ``max_age`` is assumed in-flight and
        left alone.  Returns how many stale blocks were released.
        """
        cutoff = time.monotonic() - float(max_age)
        with self._lock:
            stale_names = [
                name
                for name, (_, adopted) in self._blocks.items()
                if adopted <= cutoff
            ]
            leaked = [self._blocks.pop(name)[0] for name in stale_names]
        return self._release_all(leaked, registry)


_JANITOR: Optional[ShmJanitor] = None


def janitor() -> ShmJanitor:
    """The process-wide janitor (created, and atexit-registered, once)."""
    global _JANITOR
    if _JANITOR is None:
        _JANITOR = ShmJanitor()
        atexit.register(_JANITOR.sweep)
    return _JANITOR


# --------------------------------------------------------------------- #
# Backoff and degradation state
# --------------------------------------------------------------------- #


class Backoff:
    """Exponential backoff with deterministic (seeded) jitter.

    ``delay(attempt)`` grows as ``base * factor**(attempt - 1)``, capped,
    and jittered into ``[0.5, 1.0] * full delay`` by a private seeded RNG —
    retries never synchronize, yet a fixed seed reproduces the exact delay
    sequence, which the deterministic fault harness relies on.
    """

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 2.0,
        seed: int = 0,
    ) -> None:
        if base < 0 or factor < 1.0 or cap < 0:
            raise ValueError("invalid backoff parameters")
        self.base = float(base)
        self.factor = float(factor)
        self.cap = float(cap)
        self._rng = random.Random(seed)

    def delay(self, attempt: int) -> float:
        full = min(self.cap, self.base * self.factor ** max(0, attempt - 1))
        return full * (0.5 + 0.5 * self._rng.random())


#: The dispatch routes, best first.  ``remote`` ships shards to the
#: distributed worker fabric (:mod:`repro.engine.fabric`), ``shm`` moves
#: columns through a shared-memory block, ``pickled`` ships pickled
#: problems, ``parent`` evaluates in-process (always available, never
#: blocked).
ROUTES = ("remote", "shm", "pickled", "parent")


class DegradationLadder:
    """Per-route health state driving the shm → pickled → parent cascade.

    A failure at a route blocks it for ``cooldown`` subsequent successes
    at *any* lower route; each success pays the cooldown down, and once it
    reaches zero the route is probed again — so a transient fault (a full
    ``/dev/shm``) degrades the service only until the fault clears, while
    a persistent one keeps the service on the working route.  With
    ``enabled=False`` (the ``--no-degrade`` flag) failures still fall back
    for the *current* shard, but no state is kept: every new group starts
    back at the top route.
    """

    def __init__(self, enabled: bool = True, cooldown: int = 2) -> None:
        self.enabled = bool(enabled)
        self.cooldown = int(cooldown)
        self._blocked = {route: 0 for route in ROUTES}

    def allows(self, route: str) -> bool:
        return not self.enabled or self._blocked.get(route, 0) <= 0

    def blocked_routes(self) -> List[str]:
        """Routes currently sidestepped by the cascade (health reporting)."""
        return [route for route in ROUTES if self._blocked.get(route, 0) > 0]

    def preferred(self, top: str = "shm") -> str:
        """The best currently-allowed route at or below ``top``."""
        routes = ROUTES[ROUTES.index(top):]
        for route in routes:
            if self.allows(route):
                return route
        return "parent"

    def note_failure(self, route: str, registry=None) -> None:
        if not self.enabled:
            return
        self._blocked[route] = self.cooldown
        if registry is not None:
            registry.inc("fault.degrade.%s" % route)

    def note_success(self, route: str, registry=None) -> None:
        """A shard finished on ``route``: pay down the routes above it."""
        if not self.enabled:
            return
        index = ROUTES.index(route)
        for above in ROUTES[:index]:
            if self._blocked[above] > 0:
                self._blocked[above] -= 1
                if self._blocked[above] <= 0 and registry is not None:
                    registry.inc("fault.restore.%s" % above)


# --------------------------------------------------------------------- #
# The supervisor
# --------------------------------------------------------------------- #


class ShardJob:
    """One unit of supervised dispatch: a payload, its blob, its history."""

    __slots__ = (
        "payload",
        "blob",
        "models",
        "route",
        "attempts",
        "respawns",
        "not_before",
        "deadline_scale",
        "submitted",
        "deadline",
        "handle",
    )

    def __init__(self, payload, blob, *, models: int, route: str) -> None:
        self.payload = payload
        self.blob = blob
        self.models = int(models)
        self.route = route
        self.attempts = 0  # failures charged to this job itself
        self.respawns = 0  # collateral resubmissions after a pool respawn
        self.not_before = 0.0
        self.deadline_scale = 1.0
        self.submitted = 0.0
        self.deadline = 0.0
        self.handle = None


class ShardSupervisor:
    """Drives a batch of :class:`ShardJob` through the pool to completion.

    Parameters
    ----------
    service:
        The owning :class:`~repro.engine.service.SweepService`; the
        supervisor only uses ``ensure_workers()`` / ``respawn_workers()``
        and the metrics registry.
    max_retries:
        How many times one shard may fail (timeout or error) before it is
        quarantined to the parent.
    shard_timeout:
        Fixed per-shard deadline in seconds; ``None`` computes one from
        the measured per-model latency (see :meth:`deadline_for`).
    """

    #: EWMA weight of the newest per-model latency sample.
    LATENCY_ALPHA = 0.3
    #: Safety factor between expected and allowed shard duration.
    DEADLINE_FACTOR = 8.0
    #: Deadline used before any latency has been measured (must cover a
    #: worker-side structure build), and the floor under computed ones.
    DEFAULT_DEADLINE = 60.0
    DEADLINE_FLOOR = 0.5
    #: How many collateral resubmissions (pool respawns) one job survives
    #: before it is quarantined along with the genuinely failing ones.
    MAX_RESPAWNS = 4
    #: Longest the supervisor sleeps between health scans; worker deaths
    #: (not signalled through any waitable handle) are noticed within this.
    WATCHDOG_INTERVAL = 0.1

    def __init__(
        self,
        service,
        *,
        max_retries: int = 2,
        shard_timeout: Optional[float] = None,
        backoff: Optional[Backoff] = None,
        poll_interval: float = 0.005,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries cannot be negative")
        if shard_timeout is not None and shard_timeout <= 0:
            raise ValueError("shard_timeout must be positive")
        self.service = service
        self.registry = service.registry
        self.max_retries = int(max_retries)
        self.shard_timeout = shard_timeout
        self.backoff = backoff if backoff is not None else Backoff()
        self.poll_interval = float(poll_interval)
        self._known_pids: set = set()

    # -- deadlines ---------------------------------------------------------

    def deadline_for(self, job: ShardJob) -> float:
        """Seconds this job may spend on a worker before it is abandoned."""
        if self.shard_timeout is not None:
            return self.shard_timeout * job.deadline_scale
        per_model = self.registry.gauge("supervise.per_model_seconds")
        if not per_model:
            return self.DEFAULT_DEADLINE * job.deadline_scale
        computed = self.DEADLINE_FACTOR * per_model * max(1, job.models) + 0.5
        return max(self.DEADLINE_FLOOR, computed) * job.deadline_scale

    def _observe_latency(self, job: ShardJob, seconds: float) -> None:
        self.registry.observe("retry.shard_seconds", seconds)
        per_model = seconds / max(1, job.models)
        previous = self.registry.gauge("supervise.per_model_seconds")
        if previous:
            per_model = (
                (1.0 - self.LATENCY_ALPHA) * previous + self.LATENCY_ALPHA * per_model
            )
        self.registry.set_gauge("supervise.per_model_seconds", per_model)

    # -- pool health -------------------------------------------------------

    def _worker_pids(self, pool) -> set:
        try:
            return {p.pid for p in pool._pool if p.exitcode is None}
        except Exception:  # pool internals unavailable on this platform
            return set()

    def _deaths_since_last_check(self, pool) -> int:
        current = self._worker_pids(pool)
        if not current and not self._known_pids:
            return 0
        lost = len(self._known_pids - current)
        self._known_pids = current
        return lost

    # -- dispatch ----------------------------------------------------------

    def dispatch(
        self,
        jobs: Sequence[ShardJob],
        worker: Callable,
        *,
        repickle: Optional[Callable[[ShardJob], Optional[bytes]]] = None,
    ) -> Tuple[List[Tuple[ShardJob, object]], List[ShardJob]]:
        """Run every job to completion or quarantine.

        Returns ``(successes, quarantined)``: ``successes`` pairs each job
        with its worker result (in completion order); ``quarantined`` jobs
        exhausted their retries (or the pool is gone) and must be
        evaluated by the caller in-parent.
        """
        pending = deque(jobs)
        inflight: List[ShardJob] = []
        successes: List[Tuple[ShardJob, object]] = []
        quarantined: List[ShardJob] = []

        pool = self.service.ensure_workers()
        if pool is None:
            return [], list(jobs)
        self._known_pids = self._worker_pids(pool)

        with obs_trace.span("service.supervise", shards=len(jobs)):
            while pending or inflight:
                now = time.monotonic()
                # submit whatever is eligible (backoff delays respected)
                held = []
                while pending:
                    job = pending.popleft()
                    if job.not_before > now:
                        held.append(job)
                        continue
                    limit = self.deadline_for(job)
                    job.submitted = now
                    job.deadline = now + limit
                    # the worker receives the deadline as epoch seconds
                    # (comparable across processes) and aborts its own
                    # kernel passes past it — see batch.shard_deadline
                    job.handle = pool.apply_async(
                        worker, (job.blob, time.time() + limit)
                    )
                    inflight.append(job)
                pending.extend(held)

                respawn_needed = False
                still_running: List[ShardJob] = []
                for job in inflight:
                    if job.handle.ready():
                        try:
                            result = job.handle.get()
                        except Exception as exc:
                            self._note_failure(job, exc)
                            self._requeue(job, pending, quarantined, repickle)
                        else:
                            self._observe_latency(job, time.monotonic() - job.submitted)
                            successes.append((job, result))
                        continue
                    if time.monotonic() > job.deadline:
                        # hung (or silently dead) worker: charge the job,
                        # give it a longer leash next time, and replace the
                        # pool — terminating the pool is what actually
                        # interrupts the hung child
                        self.registry.inc("fault.shard_timeout")
                        job.attempts += 1
                        job.deadline_scale *= 2.0
                        self._requeue(job, pending, quarantined, repickle)
                        respawn_needed = True
                        continue
                    still_running.append(job)
                inflight = still_running

                lost = self._deaths_since_last_check(pool)
                if lost:
                    self.registry.inc("fault.worker_lost", lost)
                    respawn_needed = True

                if respawn_needed:
                    # in-flight work on the old pool is unrecoverable (the
                    # lost task never completes; siblings may share a lock
                    # with the dead worker) — resubmit everything on a
                    # fresh pool, within a collateral-respawn bound
                    for job in inflight:
                        job.handle = None
                        job.respawns += 1
                        if job.respawns > self.MAX_RESPAWNS:
                            self.registry.inc("fault.quarantined")
                            quarantined.append(job)
                        else:
                            pending.append(job)
                    inflight = []
                    self.registry.inc("supervise.respawns")
                    pool = self.service.respawn_workers()
                    if pool is None:  # platform stopped spawning processes
                        quarantined.extend(pending)
                        pending.clear()
                        break
                    self._known_pids = self._worker_pids(pool)
                    continue

                if inflight or pending:
                    # sleep until the next *event*: the oldest in-flight
                    # result landing (wait() wakes instantly), a deadline
                    # expiring, or a backoff hold ending — capped at the
                    # watchdog cadence so worker deaths are still noticed.
                    # Workers pull shards from the shared queue without the
                    # parent's help, so coarse wake-ups cost nothing on the
                    # fault-free path; a busy 5 ms poll measurably starves
                    # the workers on small machines
                    now = time.monotonic()
                    horizon = self.WATCHDOG_INTERVAL
                    for job in inflight:
                        horizon = min(horizon, job.deadline - now)
                    for job in pending:
                        horizon = min(horizon, job.not_before - now)
                    timeout = max(self.poll_interval, horizon)
                    if inflight:
                        inflight[0].handle.wait(timeout)
                    else:
                        time.sleep(timeout)
        return successes, quarantined

    def _note_failure(self, job: ShardJob, exc: BaseException) -> None:
        if type(exc).__name__ == "DeadlineExceeded":
            # the worker noticed the deadline itself (shard-level hook in
            # the batch kernel): same treatment as a parent-side timeout
            self.registry.inc("fault.shard_timeout")
            job.deadline_scale *= 2.0
        else:
            self.registry.inc("fault.shard_error")
        job.attempts += 1

    def _requeue(self, job, pending, quarantined, repickle) -> None:
        """Schedule a failed job's next attempt, degrading or quarantining."""
        if job.attempts > self.max_retries:
            self.registry.inc("fault.quarantined")
            quarantined.append(job)
            return
        if job.route == "columns" and job.attempts >= 2 and repickle is not None:
            # the shared-memory route failed twice for this shard: step it
            # down to the pickled protocol before the last retries
            blob = repickle(job)
            if blob is not None:
                job.blob = blob
                job.route = "pickled"
                self.registry.inc("fault.degrade.shard")
        delay = self.backoff.delay(job.attempts)
        self.registry.inc("retry.attempts")
        self.registry.observe("retry.backoff_seconds", delay)
        job.not_before = time.monotonic() + delay
        job.handle = None
        pending.append(job)


def unsupervised_dispatch(
    supervisor: ShardSupervisor, jobs: Sequence[ShardJob], worker: Callable, **_
) -> Tuple[List[Tuple[ShardJob, object]], List[ShardJob]]:
    """The pre-supervision dispatch: one bare ``pool.map``, no safety net.

    Kept as the overhead baseline for ``benchmarks/test_engine_sweep.py``:
    the fault-free supervised path must stay within a few percent of this.
    Any worker failure propagates (exactly the behaviour supervision
    removes) — never use this outside the benchmark.
    """
    pool = supervisor.service.ensure_workers()
    if pool is None:
        return [], list(jobs)
    results = pool.map(worker, [job.blob for job in jobs])
    return list(zip(jobs, results)), []

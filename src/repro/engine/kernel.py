"""The shared decision-diagram kernel.

Both decision-diagram managers (:class:`repro.bdd.BDDManager` and
:class:`repro.mdd.MDDManager`) store their nodes in parallel lists indexed
by dense integer handles, with slots ``0``/``1`` reserved for the FALSE and
TRUE terminals.  This module provides the machinery that makes such a node
table a long-lived *kernel* in the CUDD tradition rather than a grow-only
arena:

* **reference counting** — every parent-to-child edge of a live node plus
  every external :meth:`DDKernel.ref` holds one reference.  A node whose
  count drops to zero is *dead*: still valid (it may be resurrected through
  a unique-table hit) but reclaimable;
* **garbage collection** — :meth:`DDKernel.garbage_collect` sweeps dead
  nodes, cascading the release of their children, returns their slots to a
  free list for reuse by the next allocation, and flushes the computed
  tables (whose entries may mention reclaimed handles);
* **table resizing** — :meth:`DDKernel.checkpoint` runs the collector
  automatically once the table has grown past an adaptive threshold; when a
  collection reclaims too little the threshold doubles, which mirrors the
  grow-the-table-instead-of-thrashing policy of the C kernels;
* **bounded computed tables** — :class:`BoundedComputedTable` is the cache
  used for ITE/apply memoization: a dict with a size bound, eviction of the
  oldest entries, and monotone hit/miss/eviction statistics.

The kernel deliberately does not know what a node *is*; subclasses provide
three hooks (:meth:`DDKernel._node_children`, :meth:`DDKernel._node_key`,
:meth:`DDKernel._release_slot`) and call :meth:`DDKernel._init_kernel` from
their constructor.
"""

from __future__ import annotations

import sys
from contextlib import contextmanager
from dataclasses import dataclass
from itertools import islice
from typing import Any, Callable, Dict, Hashable, Iterable, List, Optional, Tuple

#: Handle of the FALSE terminal (shared by every manager).
FALSE = 0
#: Handle of the TRUE terminal (shared by every manager).
TRUE = 1

#: Level reported for the two terminals (sorts below every real level).
TERMINAL_LEVEL = 1 << 30

#: Level marking a reclaimed (free) slot; such handles must never be used.
FREE_LEVEL = -1

#: Default bound of a computed table (entries, not bytes).
DEFAULT_CACHE_BOUND = 1 << 20

#: Initial node-count growth that triggers an automatic collection.
DEFAULT_GC_THRESHOLD = 1 << 16


@contextmanager
def recursion_guard(depth: int):
    """Temporarily raise the interpreter recursion limit to at least ``depth``.

    The decision-diagram operations recurse at most once or twice per
    variable level, so deep (chain-shaped) diagrams can exceed CPython's
    default limit of 1000 frames.  Wrapping the recursive entry points in
    this guard makes the depth explicit instead of crashing; the previous
    limit is restored on exit (never lowered below what it already was).
    """
    old_limit = sys.getrecursionlimit()
    target = depth + 100
    if target > old_limit:
        sys.setrecursionlimit(target)
    try:
        yield
    finally:
        if target > old_limit:
            sys.setrecursionlimit(old_limit)


class CacheStats:
    """Monotone hit/miss/eviction counters of one computed table."""

    __slots__ = ("hits", "misses", "insertions", "evictions", "clears")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.insertions = 0
        self.evictions = 0
        self.clears = 0

    @property
    def lookups(self) -> int:
        """Total number of lookups (hits plus misses)."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups that hit (0.0 when there were none)."""
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Return a plain-dict snapshot (for reports and tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "clears": self.clears,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "CacheStats(hits=%d, misses=%d, evictions=%d)" % (
            self.hits,
            self.misses,
            self.evictions,
        )


class BoundedComputedTable:
    """A computed (operation) table with a size bound and eviction stats.

    The table behaves like a memoization dict.  When an insertion would push
    it past ``bound`` entries, the oldest half of the entries is evicted
    (dicts preserve insertion order, so "oldest" is well defined and the
    eviction is O(bound) amortized over at least ``bound/2`` insertions).

    Parameters
    ----------
    bound:
        Maximum number of entries; ``None`` disables eviction (unbounded).
    stats:
        Optional shared :class:`CacheStats`; a private one is created when
        omitted.
    """

    __slots__ = ("_table", "_bound", "stats")

    def __init__(
        self, bound: Optional[int] = DEFAULT_CACHE_BOUND, stats: Optional[CacheStats] = None
    ) -> None:
        if bound is not None and bound < 2:
            raise ValueError("cache bound must be at least 2 (or None)")
        self._table: Dict[Hashable, Any] = {}
        self._bound = bound
        self.stats = stats if stats is not None else CacheStats()

    @property
    def bound(self) -> Optional[int]:
        return self._bound

    def get(self, key: Hashable) -> Optional[Any]:
        """Return the cached value for ``key`` (``None`` on a miss)."""
        value = self._table.get(key)
        if value is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        """Insert ``key -> value``, evicting the oldest half when full."""
        table = self._table
        if self._bound is not None and len(table) >= self._bound and key not in table:
            evict = len(table) // 2
            for old in list(islice(iter(table), evict)):
                del table[old]
            self.stats.evictions += evict
        table[key] = value
        self.stats.insertions += 1

    def clear(self) -> None:
        """Drop every entry (counted in ``stats.clears``)."""
        self._table.clear()
        self.stats.clears += 1

    def __len__(self) -> int:
        return len(self._table)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "BoundedComputedTable(%d/%s entries)" % (len(self._table), self._bound)


@dataclass(frozen=True)
class KernelStats:
    """Snapshot of the kernel-level counters of a manager."""

    #: Nodes ever created (monotone; slot reuse does not decrease it).
    nodes_created: int
    #: Currently live (allocated and not reclaimed) nodes, terminals included.
    live_nodes: int
    #: Slots available for reuse.
    free_slots: int
    #: Number of garbage collections run so far.
    gc_runs: int
    #: Total nodes reclaimed by all collections.
    nodes_reclaimed: int
    #: Current automatic-collection threshold (see :meth:`DDKernel.checkpoint`).
    gc_threshold: int
    #: Computed-table statistics, keyed by table name.
    caches: Dict[str, Dict[str, int]]
    #: Times the automatic reordering trigger fired (0 when not configured).
    reorder_triggers: int = 0


class DDKernel:
    """Mixin providing refcounted GC and computed-table plumbing.

    Subclasses must:

    * call :meth:`_init_kernel` after creating the two terminal slots in
      their parallel arrays (``self._level`` must exist and have length 2)
      and a ``self._unique`` hash-cons table;
    * allocate nodes by popping ``self._free`` before growing the arrays,
      start them with reference count 0, and count one reference per child
      edge (``self._created`` tracks nodes ever made);
    * implement :meth:`_node_children`, :meth:`_node_key` and
      :meth:`_release_slot`.

    Reference-count convention: ``_refs[h]`` counts the parent edges of
    every *allocated* node pointing at ``h`` plus the external references
    taken with :meth:`ref`.  Terminals are pinned and never counted or
    collected.  Nodes are created with count 0 ("dead until referenced"),
    which means :meth:`garbage_collect` must only run at *safe points*:
    when every diagram the caller still needs is protected by :meth:`ref`.
    """

    # ------------------------------------------------------------------ #
    # Initialisation
    # ------------------------------------------------------------------ #

    def _init_kernel(
        self,
        *,
        cache_bound: Optional[int] = DEFAULT_CACHE_BOUND,
        gc_threshold: int = DEFAULT_GC_THRESHOLD,
    ) -> None:
        if gc_threshold < 1:
            raise ValueError("gc_threshold must be positive")
        self._refs: List[int] = [1, 1]  # terminals are pinned
        self._free: List[int] = []
        self._created = 2
        self._cache_bound = cache_bound
        self._computed_tables: Dict[str, BoundedComputedTable] = {}
        self._gc_threshold = gc_threshold
        self._gc_initial_threshold = gc_threshold
        self._gc_runs = 0
        self._nodes_reclaimed = 0
        self._live_at_last_gc = 2
        self._reorder_trigger: Optional[Callable[["DDKernel"], Any]] = None
        self._reorder_trigger_threshold = 0
        self._reorder_triggers = 0

    def _new_computed_table(self, name: str) -> BoundedComputedTable:
        """Create (and register for flush-on-GC) a named computed table."""
        table = BoundedComputedTable(self._cache_bound)
        self._computed_tables[name] = table
        return table

    # ------------------------------------------------------------------ #
    # Subclass hooks
    # ------------------------------------------------------------------ #

    def _node_children(self, handle: int) -> Iterable[int]:
        """Return the child handles of allocated node ``handle``."""
        raise NotImplementedError

    def _node_key(self, handle: int) -> Hashable:
        """Return the unique-table key of allocated node ``handle``."""
        raise NotImplementedError

    def _release_slot(self, handle: int) -> None:
        """Clear subclass storage of ``handle`` (called once when reclaimed)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Reference counting
    # ------------------------------------------------------------------ #

    def ref(self, node: int) -> int:
        """Protect ``node`` from garbage collection; returns ``node``.

        References nest: every :meth:`ref` must be matched by one
        :meth:`deref` before the node can be reclaimed.
        """
        if node > TRUE:
            self._refs[node] += 1
        return node

    def deref(self, node: int) -> None:
        """Drop one external reference to ``node``.

        The node is not reclaimed immediately; it becomes *dead* once its
        count reaches zero and is swept by the next collection.
        """
        if node > TRUE:
            refs = self._refs
            if refs[node] <= 0:
                raise ValueError("deref of node %d without matching ref" % node)
            refs[node] -= 1

    def ref_count(self, node: int) -> int:
        """Return the current reference count of ``node`` (terminals: 1)."""
        return self._refs[node]

    # ------------------------------------------------------------------ #
    # Garbage collection
    # ------------------------------------------------------------------ #

    @property
    def num_live_nodes(self) -> int:
        """Number of allocated (not reclaimed) nodes, terminals included."""
        return len(self._refs) - len(self._free)

    @property
    def num_free_slots(self) -> int:
        return len(self._free)

    @property
    def num_nodes_created(self) -> int:
        """Total number of nodes ever created (monotone)."""
        return self._created

    def garbage_collect(self) -> int:
        """Reclaim every dead node; return the number of reclaimed slots.

        A node is dead when no allocated parent and no external
        :meth:`ref` holds it.  Reclamation cascades: releasing a parent may
        kill its children.  All computed tables are flushed because their
        entries may name reclaimed handles.

        Only call at a safe point: any diagram still needed must be
        protected with :meth:`ref` (fresh, never-referenced operation
        results count as unprotected!).
        """
        refs = self._refs
        level = self._level
        dead = [
            h
            for h in range(TRUE + 1, len(refs))
            if refs[h] == 0 and level[h] != FREE_LEVEL
        ]
        freed = 0
        unique = self._unique
        while dead:
            h = dead.pop()
            if refs[h] != 0 or level[h] == FREE_LEVEL:
                continue
            unique.pop(self._node_key(h), None)
            for child in self._node_children(h):
                if child > TRUE:
                    refs[child] -= 1
                    if refs[child] == 0:
                        dead.append(child)
            self._release_slot(h)
            level[h] = FREE_LEVEL
            refs[h] = 0
            self._free.append(h)
            freed += 1
        if freed:
            for table in self._computed_tables.values():
                table.clear()
        self._gc_runs += 1
        self._nodes_reclaimed += freed
        self._live_at_last_gc = self.num_live_nodes
        return freed

    def checkpoint(self) -> int:
        """Run the collector if the table grew enough since the last run.

        This is the *table resizing* policy: if a collection reclaims less
        than a quarter of the growth the threshold doubles — the table is
        genuinely getting bigger, so collecting more often would only
        thrash.  Returns the number of reclaimed nodes (0 when skipped).
        """
        grown = self.num_live_nodes - self._live_at_last_gc
        if grown < self._gc_threshold:
            # the reordering trigger watches the absolute live count, so it
            # must be consulted even when the growth-based collection is not
            self._maybe_trigger_reorder()
            return 0
        freed = self.garbage_collect()
        if freed * 4 < grown:
            self._gc_threshold *= 2
        elif self._gc_threshold > self._gc_initial_threshold:
            self._gc_threshold //= 2
        self._maybe_trigger_reorder()
        return freed

    # ------------------------------------------------------------------ #
    # Automatic reordering trigger
    # ------------------------------------------------------------------ #

    def set_reorder_trigger(
        self, callback: Callable[["DDKernel"], Any], *, threshold: int
    ) -> None:
        """Arrange for ``callback(manager)`` to run when the table balloons.

        After a :meth:`checkpoint` collection, if the table still holds at
        least ``threshold`` live nodes, ``callback`` is invoked (outside any
        reordering session) — the hook the pipeline uses to run dynamic
        reordering *during* a build instead of only after it.  To avoid
        thrashing, the threshold is doubled (at least past the current live
        count) before each invocation.  Every diagram the caller still needs
        must be ref-protected, exactly as for :meth:`garbage_collect`.
        """
        if threshold < 1:
            raise ValueError("reorder trigger threshold must be positive")
        self._reorder_trigger = callback
        self._reorder_trigger_threshold = int(threshold)

    def clear_reorder_trigger(self) -> None:
        """Remove the automatic reordering trigger."""
        self._reorder_trigger = None
        self._reorder_trigger_threshold = 0

    @property
    def reorder_triggers(self) -> int:
        """How many times the automatic reordering trigger has fired."""
        return self._reorder_triggers

    def _maybe_trigger_reorder(self) -> None:
        trigger = self._reorder_trigger
        if trigger is None:
            return
        live = self.num_live_nodes
        if live < self._reorder_trigger_threshold:
            return
        if getattr(self, "in_reorder", False):  # pragma: no cover - defensive
            return
        # raise the bar before calling out so a callback that shrinks little
        # (or allocates while reordering) cannot re-enter immediately
        self._reorder_trigger_threshold = max(
            self._reorder_trigger_threshold * 2, live * 2
        )
        self._reorder_triggers += 1
        trigger(self)
        self._live_at_last_gc = self.num_live_nodes

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def iter_live_handles(self) -> Iterable[int]:
        """Yield every allocated non-terminal handle (dead ones included)."""
        level = self._level
        for h in range(TRUE + 1, len(level)):
            if level[h] != FREE_LEVEL:
                yield h

    def cache_totals(self) -> Dict[str, int]:
        """Computed-table traffic summed over every cache (ITE, apply, ...).

        The telemetry registry publishes these as
        ``kernel.cache.<manager>.<event>`` counters; summing keeps the
        metric set stable while managers create operation caches lazily.
        """
        totals = {"hits": 0, "misses": 0, "insertions": 0, "evictions": 0}
        for table in self._computed_tables.values():
            stats = table.stats
            totals["hits"] += stats.hits
            totals["misses"] += stats.misses
            totals["insertions"] += stats.insertions
            totals["evictions"] += stats.evictions
        return totals

    def kernel_stats(self) -> KernelStats:
        """Return a :class:`KernelStats` snapshot of the counters."""
        return KernelStats(
            nodes_created=self._created,
            live_nodes=self.num_live_nodes,
            free_slots=len(self._free),
            gc_runs=self._gc_runs,
            nodes_reclaimed=self._nodes_reclaimed,
            gc_threshold=self._gc_threshold,
            caches={
                name: table.stats.as_dict()
                for name, table in self._computed_tables.items()
            },
            reorder_triggers=self._reorder_triggers,
        )

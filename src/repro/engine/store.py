"""Persistent on-disk store for compiled decision-diagram structures.

The expensive part of the pipeline — ordering, coded-ROBDD build, ROMDD
conversion — depends only on the *structure key* (fault tree, component
list, truncation level, ordering strategy).  The in-memory LRU of
:class:`repro.engine.service.SweepService` already amortizes that cost
within one process; this module extends the amortization across process
boundaries: every compiled structure is serialized once to a versioned
on-disk format, and any later process (a cold service start, a worker
shard, a CLI invocation) *warm-starts* by loading the flat arrays instead
of rebuilding the diagrams.

What gets persisted is deliberately **not** the MDD node tables: since the
vectorized column assembly landed, evaluation and differentiation consume
only the linearized topological arrays
(:class:`repro.engine.batch.LinearizedDiagram`) plus the
:class:`repro.mdd.probability.LevelProfile` — a few dense integer arrays
and a page of metadata.  A restored :class:`repro.core.method.CompiledYield`
therefore evaluates and differentiates bit-for-bit like the freshly built
structure while staying a fraction of its pickled size.

Format (version 1), content-addressed under the store root by the SHA-256
digest of the structure key::

    <root>/<digest[:2]>/<digest>.npz    # one slots/kids array pair per layer
    <root>/<digest[:2]>/<digest>.json   # metadata, profile, diagnostics

Both files are written to temporaries and moved into place with
``os.replace``; the JSON file is written *last* and acts as the commit
marker, so readers never observe a half-written entry.  Hosts without
numpy fall back to embedding the layers in the JSON file (``encoding:
"json"``), and either side can read both encodings.  Unknown versions,
corrupt files and digest mismatches are treated as misses, never as
errors — the caller simply rebuilds.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised implicitly on both kinds of hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Identifies the file format (checked on load).
FORMAT_NAME = "repro-structure"

#: Bumped on every incompatible layout change; mismatches load as misses.
FORMAT_VERSION = 1


class StoreError(ValueError):
    """Raised on invalid store operations (never on corrupt entries)."""


@dataclass
class StoreEntry:
    """One persisted structure, as listed by :meth:`StructureStore.entries`."""

    digest: str
    nbytes: int
    created: float
    truncation: int
    ordering_key: Tuple
    romdd_size: int
    node_count: int

    def summary(self) -> str:
        return "%s  M=%-3d  order=%-18s  %6d nodes  %8d bytes" % (
            self.digest[:16],
            self.truncation,
            "/".join(str(part) for part in self.ordering_key),
            self.node_count,
            self.nbytes,
        )


def digest_of(skey: Tuple) -> str:
    """Content address of a structure key (stable across processes)."""
    return hashlib.sha256(repr(skey).encode()).hexdigest()


class StructureStore:
    """Content-addressed, versioned store of compiled yield structures.

    Parameters
    ----------
    root:
        Directory holding the entries (created on the first save).
    """

    def __init__(self, root: str) -> None:
        if not root:
            raise StoreError("the structure store needs a directory")
        self.root = str(root)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def _paths(self, digest: str) -> Tuple[str, str]:
        base = os.path.join(self.root, digest[:2], digest)
        return base + ".json", base + ".npz"

    def contains(self, skey: Tuple) -> bool:
        """Whether an entry for ``skey`` is committed (JSON marker present)."""
        return os.path.exists(self._paths(digest_of(skey))[0])

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #

    def save(self, skey: Tuple, compiled) -> int:
        """Persist ``compiled`` under ``skey``; return the entry's bytes.

        Overwrites any existing entry atomically.  The structure must carry
        a level profile (every structure compiled by
        :class:`repro.core.method.YieldAnalyzer` does); its linearized
        arrays are built on demand.
        """
        if compiled.level_profile is None:
            raise StoreError("structure has no level profile; cannot persist")
        linearized = compiled.linearized()
        digest = digest_of(skey)
        json_path, npz_path = self._paths(digest)
        os.makedirs(os.path.dirname(json_path), exist_ok=True)

        layers = linearized.layers
        use_npz = _np is not None and layers
        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "digest": digest,
            "created": time.time(),
            "structure": {
                "truncation": compiled.truncation,
                "ordering_key": list(compiled.ordering.key()),
                "component_names": list(compiled.component_names),
                "count_variable": compiled.count_variable_name,
                "location_variables": list(compiled.location_variable_names),
                "variable_names": list(compiled.variable_names),
                "binary_variables": compiled.binary_variables,
                "level_profile": compiled.level_profile.as_json(),
            },
            "diagnostics": {
                "coded_robdd_size": compiled.coded_robdd_size,
                "robdd_peak": compiled.robdd_peak,
                "robdd_allocated": compiled.robdd_allocated,
                "gates_processed": compiled.gates_processed,
                "romdd_size": compiled.romdd_size,
                "build_timings": list(compiled.build_timings),
                "sift_swaps": compiled.sift_swaps,
                "reorder_seconds": compiled.reorder_seconds,
                "reorder_triggers": compiled.reorder_triggers,
                "mdd_allocated": compiled.mdd_allocated,
            },
            "linearized": {
                "root_slot": linearized.root_slot,
                "num_slots": linearized.num_slots,
                "levels": [level for level, _, _ in layers],
                "encoding": "npz" if use_npz else "json",
            },
        }

        nbytes = 0
        if use_npz:
            arrays = {}
            for index, (_, slots, kid_rows) in enumerate(layers):
                arrays["slots_%d" % index] = _np.asarray(slots, dtype=_np.int64)
                arrays["kids_%d" % index] = _np.asarray(kid_rows, dtype=_np.int64)

            def write_npz(handle):
                _np.savez(handle, **arrays)

            self._commit(npz_path, "wb", write_npz)
            nbytes += os.path.getsize(npz_path)
        else:
            meta["linearized"]["layers"] = [
                [level, list(slots), [list(row) for row in kid_rows]]
                for level, slots, kid_rows in layers
            ]
            # drop a stale npz so the entry stays self-consistent
            try:
                os.unlink(npz_path)
            except OSError:
                pass

        self._commit(json_path, "w", lambda handle: json.dump(meta, handle))
        nbytes += os.path.getsize(json_path)
        return nbytes

    @staticmethod
    def _commit(path: str, mode: str, write) -> None:
        """Write ``path`` atomically via a uniquely named temporary.

        ``mkstemp`` keeps concurrent savers of the same digest from
        truncating each other's half-written temporary — each writer
        commits its own complete file and the last ``os.replace`` wins.
        """
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, mode) as handle:
                write(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #

    def load(self, skey: Tuple):
        """Return ``(restored CompiledYield, entry bytes)`` or ``None``.

        Any corruption, version skew or digest mismatch loads as a miss.
        """
        return self.load_digest(digest_of(skey))

    def load_digest(self, digest: str):
        """Like :meth:`load`, addressed directly by digest."""
        json_path, npz_path = self._paths(digest)
        meta = self._read_meta(json_path, digest)
        if meta is None:
            return None
        try:
            layers, npz_bytes = self._read_layers(meta, npz_path)
            structure = self._restore(meta, layers)
            json_bytes = os.path.getsize(json_path)
        except Exception:
            # anything — truncated arrays, version drift inside the payload,
            # a concurrent `cache clear` unlinking the files mid-read — is a
            # miss; the caller rebuilds
            return None
        return structure, json_bytes + npz_bytes

    def _read_meta(self, json_path: str, digest: str) -> Optional[Dict]:
        try:
            with open(json_path, "r") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("format") != FORMAT_NAME
            or meta.get("version") != FORMAT_VERSION
            or meta.get("digest") != digest
        ):
            return None
        return meta

    def _read_layers(self, meta: Dict, npz_path: str):
        linearized = meta["linearized"]
        levels = linearized["levels"]
        if linearized["encoding"] == "json":
            layers = [
                (int(level), tuple(int(s) for s in slots), tuple(
                    tuple(int(c) for c in row) for row in kid_rows
                ))
                for level, slots, kid_rows in linearized["layers"]
            ]
            return tuple(layers), 0
        if _np is None:
            raise StoreError("entry uses npz arrays but numpy is unavailable")
        layers = []
        with _np.load(npz_path) as arrays:
            for index, level in enumerate(levels):
                slots = tuple(int(s) for s in arrays["slots_%d" % index])
                kid_rows = tuple(
                    tuple(int(c) for c in row) for row in arrays["kids_%d" % index]
                )
                layers.append((int(level), slots, kid_rows))
        return tuple(layers), os.path.getsize(npz_path)

    def _restore(self, meta: Dict, layers):
        # imported lazily: core.method pulls in the DD managers, which load
        # the engine kernel at import time (same cycle service.py avoids)
        from ..core.method import CompiledYield
        from ..engine.batch import LinearizedDiagram
        from ..mdd.probability import LevelProfile
        from ..ordering.strategies import OrderingSpec

        structure = meta["structure"]
        diagnostics = meta["diagnostics"]
        linearized_meta = meta["linearized"]
        linearized = LinearizedDiagram(
            int(linearized_meta["root_slot"]),
            int(linearized_meta["num_slots"]),
            layers,
        )
        return CompiledYield(
            gfunction=None,
            grouped_order=None,
            mdd_manager=None,
            mdd_root=None,
            truncation=int(structure["truncation"]),
            coded_robdd_size=int(diagnostics["coded_robdd_size"]),
            robdd_peak=int(diagnostics["robdd_peak"]),
            robdd_allocated=int(diagnostics["robdd_allocated"]),
            gates_processed=int(diagnostics["gates_processed"]),
            romdd_size=int(diagnostics["romdd_size"]),
            ordering=OrderingSpec.from_key(tuple(structure["ordering_key"])),
            build_timings=tuple(float(t) for t in diagnostics["build_timings"]),
            sift_swaps=int(diagnostics["sift_swaps"]),
            reorder_seconds=float(diagnostics["reorder_seconds"]),
            reorder_triggers=int(diagnostics["reorder_triggers"]),
            component_names=tuple(structure["component_names"]),
            count_variable_name=structure["count_variable"],
            location_variable_names=tuple(structure["location_variables"]),
            variable_names=tuple(structure["variable_names"]),
            binary_variables=int(structure["binary_variables"]),
            level_profile=LevelProfile.from_json(structure["level_profile"]),
            mdd_allocated=int(diagnostics["mdd_allocated"]),
            linearized=linearized,
            from_store=True,
        )

    # ------------------------------------------------------------------ #
    # Inspection and maintenance (the ``repro cache`` CLI)
    # ------------------------------------------------------------------ #

    def entries(self) -> List[StoreEntry]:
        """List every committed entry (corrupt entries are skipped)."""
        out: List[StoreEntry] = []
        if not os.path.isdir(self.root):
            return out
        for shard in sorted(os.listdir(self.root)):
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                digest = name[: -len(".json")]
                json_path, npz_path = self._paths(digest)
                meta = self._read_meta(json_path, digest)
                if meta is None:
                    continue
                try:
                    nbytes = os.path.getsize(json_path)
                    if os.path.exists(npz_path):
                        nbytes += os.path.getsize(npz_path)
                except OSError:  # entry removed while listing
                    continue
                out.append(
                    StoreEntry(
                        digest=digest,
                        nbytes=nbytes,
                        created=float(meta.get("created", 0.0)),
                        truncation=int(meta["structure"]["truncation"]),
                        ordering_key=tuple(meta["structure"]["ordering_key"]),
                        romdd_size=int(meta["diagnostics"]["romdd_size"]),
                        node_count=int(meta["linearized"]["num_slots"]) - 2,
                    )
                )
        return out

    def meta_of(self, digest_prefix: str) -> Optional[Dict]:
        """Return the raw metadata of the entry matching the digest prefix.

        Raises :class:`StoreError` when the prefix is ambiguous.
        """
        matches = [
            entry for entry in self.entries() if entry.digest.startswith(digest_prefix)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise StoreError(
                "digest prefix %r matches %d entries" % (digest_prefix, len(matches))
            )
        json_path, _ = self._paths(matches[0].digest)
        return self._read_meta(json_path, matches[0].digest)

    def remove(self, digest_prefix: str) -> int:
        """Remove entries matching the digest prefix; return how many."""
        removed = 0
        for entry in self.entries():
            if not entry.digest.startswith(digest_prefix):
                continue
            json_path, npz_path = self._paths(entry.digest)
            for path in (json_path, npz_path):
                try:
                    os.unlink(path)
                except OSError:
                    pass
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; return how many were removed."""
        return self.remove("")

    def total_bytes(self) -> int:
        """Total on-disk size of the committed entries."""
        return sum(entry.nbytes for entry in self.entries())

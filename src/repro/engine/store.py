"""Persistent on-disk store for compiled decision-diagram structures.

The expensive part of the pipeline — ordering, coded-ROBDD build, ROMDD
conversion — depends only on the *structure key* (fault tree, component
list, truncation level, ordering strategy).  The in-memory LRU of
:class:`repro.engine.service.SweepService` already amortizes that cost
within one process; this module extends the amortization across process
boundaries: every compiled structure is serialized once to a versioned
on-disk format, and any later process (a cold service start, a worker
shard, a CLI invocation) *warm-starts* by loading the flat arrays instead
of rebuilding the diagrams.

What gets persisted is deliberately **not** the MDD node tables: since the
vectorized column assembly landed, evaluation and differentiation consume
only the linearized topological arrays
(:class:`repro.engine.batch.LinearizedDiagram`) plus the
:class:`repro.mdd.probability.LevelProfile` — a few dense integer arrays
and a page of metadata.  A restored :class:`repro.core.method.CompiledYield`
therefore evaluates and differentiates bit-for-bit like the freshly built
structure while staying a fraction of its pickled size.

Format (version 2), content-addressed under the store root by the SHA-256
digest of the structure key::

    <root>/<digest[:2]>/<digest>.json         # metadata + commit marker
    <root>/<digest[:2]>/<digest>.kids.npy     # fused edge array (j-major)
    <root>/<digest[:2]>/<digest>.seg.npy      # CSR segment offsets
    <root>/<digest[:2]>/<digest>.levels.npy   # per-slot level mapping
    <root>/<digest[:2]>/<digest>.bounds.npy   # layer boundary table

The arrays are the fused CSR schedule of :class:`repro.engine.batch` —
written **uncompressed**, one plain ``.npy`` file per array, so loaders
open them with ``numpy.load(..., mmap_mode="r")``: no decompression, no
copy, and on fork-capable platforms every worker process shares the same
page-cache pages.  Version 1 entries (per-layer arrays inside one
compressed ``.npz``) remain fully readable; new saves always write v2.
Hosts without numpy embed the layers in the JSON file (``encoding:
"json"``), and either side can read both encodings.

Every file is written to a temporary and moved into place with
``os.replace``; the JSON file is written *last* and acts as the commit
marker, so readers never observe a half-written entry.  Unknown versions,
corrupt files and digest mismatches are treated as misses, never as
errors — the caller simply rebuilds.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from . import faults
from ..obs import profile as _obs_profile
from ..obs import trace as _obs_trace

try:  # pragma: no cover - exercised implicitly on both kinds of hosts
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

#: Identifies the file format (checked on load).
FORMAT_NAME = "repro-structure"

#: The version new entries are written with.
FORMAT_VERSION = 2

#: Versions :meth:`StructureStore.load` can read.  v1 (npz layer arrays)
#: stays readable so existing stores keep warm-starting after an upgrade;
#: anything else loads as a miss.
SUPPORTED_VERSIONS = (1, 2)

#: Sidecar suffixes an entry may own next to its ``.json`` marker.
_SIDECAR_SUFFIXES = (".npz", ".kids.npy", ".seg.npy", ".levels.npy", ".bounds.npy")

#: The v2 array names, in the order they are written.
_V2_ARRAYS = ("kids", "seg", "levels", "bounds")


class StoreError(ValueError):
    """Raised on invalid store operations (never on corrupt entries)."""


@dataclass
class StoreEntry:
    """One persisted structure, as listed by :meth:`StructureStore.entries`."""

    digest: str
    nbytes: int
    created: float
    truncation: int
    ordering_key: Tuple
    romdd_size: int
    node_count: int

    def summary(self) -> str:
        return "%s  M=%-3d  order=%-18s  %6d nodes  %8d bytes" % (
            self.digest[:16],
            self.truncation,
            "/".join(str(part) for part in self.ordering_key),
            self.node_count,
            self.nbytes,
        )


def digest_of(skey: Tuple) -> str:
    """Content address of a structure key (stable across processes)."""
    return hashlib.sha256(repr(skey).encode()).hexdigest()


def _file_sha256(path: str) -> str:
    h = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


class StructureStore:
    """Content-addressed, versioned store of compiled yield structures.

    Parameters
    ----------
    root:
        Directory holding the entries (created on the first save).
    registry:
        Optional :class:`repro.obs.metrics.MetricsRegistry`: corrupt
        entries detected (and quarantined) on the load path are counted
        into it (``fault.store_corrupt`` / ``fault.store_quarantined``).
    """

    #: Subdirectory corrupt entries are moved into by the quarantine path.
    QUARANTINE_DIR = "quarantine"

    #: Subdirectory the native kernel backend caches its compiled `.so`
    #: libraries in (:mod:`repro.engine.native`).  Not structure entries:
    #: listing and verification skip it like the quarantine.
    NATIVE_DIR = "native"

    def __init__(self, root: str, registry=None) -> None:
        if not root:
            raise StoreError("the structure store needs a directory")
        self.root = str(root)
        self.registry = registry

    def _count(self, metric: str, value: int = 1) -> None:
        if self.registry is not None:
            self.registry.inc(metric, value)

    # ------------------------------------------------------------------ #
    # Paths
    # ------------------------------------------------------------------ #

    def _base(self, digest: str) -> str:
        return os.path.join(self.root, digest[:2], digest)

    def _json_path(self, digest: str) -> str:
        return self._base(digest) + ".json"

    def _sidecar(self, digest: str, suffix: str) -> str:
        return self._base(digest) + suffix

    def contains(self, skey: Tuple) -> bool:
        """Whether an entry for ``skey`` is committed (JSON marker present)."""
        return os.path.exists(self._json_path(digest_of(skey)))

    # ------------------------------------------------------------------ #
    # Save
    # ------------------------------------------------------------------ #

    def save(self, skey: Tuple, compiled) -> int:
        """Persist ``compiled`` under ``skey``; return the entry's bytes.

        Overwrites any existing entry atomically.  The structure must carry
        a level profile (every structure compiled by
        :class:`repro.core.method.YieldAnalyzer` does); its linearized
        arrays are built on demand.
        """
        if compiled.level_profile is None:
            raise StoreError("structure has no level profile; cannot persist")
        linearized = compiled.linearized()
        digest = digest_of(skey)
        with _obs_trace.span("store.save", digest=digest[:16]):
            return self._save_entry(digest, compiled, linearized)

    def _save_entry(self, digest: str, compiled, linearized) -> int:
        json_path = self._json_path(digest)
        os.makedirs(os.path.dirname(json_path), exist_ok=True)

        use_npy = _np is not None and linearized.node_count > 0
        meta = {
            "format": FORMAT_NAME,
            "version": FORMAT_VERSION,
            "digest": digest,
            "created": time.time(),
            "structure": {
                "truncation": compiled.truncation,
                "ordering_key": list(compiled.ordering.key()),
                "component_names": list(compiled.component_names),
                "count_variable": compiled.count_variable_name,
                "location_variables": list(compiled.location_variable_names),
                "variable_names": list(compiled.variable_names),
                "binary_variables": compiled.binary_variables,
                "level_profile": compiled.level_profile.as_json(),
            },
            "diagnostics": {
                "coded_robdd_size": compiled.coded_robdd_size,
                "robdd_peak": compiled.robdd_peak,
                "robdd_allocated": compiled.robdd_allocated,
                "gates_processed": compiled.gates_processed,
                "romdd_size": compiled.romdd_size,
                "build_timings": list(compiled.build_timings),
                "sift_swaps": compiled.sift_swaps,
                "reorder_seconds": compiled.reorder_seconds,
                "reorder_triggers": compiled.reorder_triggers,
                "mdd_allocated": compiled.mdd_allocated,
            },
            "linearized": {
                "root_slot": linearized.root_slot,
                "num_slots": linearized.num_slots,
                "levels": list(linearized.levels),
                "encoding": "npy" if use_npy else "json",
            },
        }

        nbytes = 0
        stale = list(_SIDECAR_SUFFIXES)
        if use_npy:
            schedule = linearized.fused()
            arrays = {
                "kids": _np.asarray(schedule.kids, dtype=_np.int64),
                "seg": _np.asarray(schedule.seg, dtype=_np.int64),
                "levels": _np.asarray(schedule.slot_levels, dtype=_np.int64),
                "bounds": _np.asarray(schedule.bounds, dtype=_np.int64).reshape(
                    len(schedule.bounds), 6
                ),
            }
            checksums = {}
            for name in _V2_ARRAYS:
                suffix = ".%s.npy" % name
                path = self._sidecar(digest, suffix)
                array = arrays[name]

                def write_npy(handle, array=array):
                    # plain uncompressed .npy so loaders can mmap it
                    _np.save(handle, array, allow_pickle=False)

                self._commit(path, "wb", write_npy)
                nbytes += os.path.getsize(path)
                checksums[name] = _file_sha256(path)
                stale.remove(suffix)
            # recorded for `repro cache verify`: the hot load path stays
            # checksum-free (hashing would defeat the zero-copy mmap), the
            # verifier compares these against the bytes on disk
            meta["checksums"] = checksums
        else:
            meta["linearized"]["layers"] = [
                [level, list(slots), [list(row) for row in kid_rows]]
                for level, slots, kid_rows in linearized.layers
            ]
        # drop sidecars of any previous encoding/version of this entry so
        # the committed entry stays self-consistent
        for suffix in stale:
            try:
                os.unlink(self._sidecar(digest, suffix))
            except OSError:
                pass

        self._commit(json_path, "w", lambda handle: json.dump(meta, handle))
        nbytes += os.path.getsize(json_path)
        return nbytes

    @staticmethod
    def _commit(path: str, mode: str, write) -> None:
        """Write ``path`` atomically via a uniquely named temporary.

        ``mkstemp`` keeps concurrent savers of the same digest from
        truncating each other's half-written temporary — each writer
        commits its own complete file and the last ``os.replace`` wins.
        """
        fd, tmp = tempfile.mkstemp(
            dir=os.path.dirname(path), prefix=os.path.basename(path), suffix=".tmp"
        )
        try:
            with os.fdopen(fd, mode) as handle:
                write(handle)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------ #
    # Load
    # ------------------------------------------------------------------ #

    def load(self, skey: Tuple, *, mmap: bool = False, quarantine: bool = True):
        """Return ``(restored CompiledYield, entry bytes)`` or ``None``.

        With ``mmap=True`` (what :class:`repro.engine.service.SweepService`
        and its worker shards pass) the v2 fused arrays are opened with
        ``mmap_mode="r"`` — no copies, and the OS page cache is shared
        across every process mapping the same entry.  Any corruption,
        version skew or digest mismatch loads as a miss (the structural
        validation includes an edge-range scan of the kids array) — and,
        with ``quarantine=True`` (the default), the damaged entry's files
        are moved aside into ``<root>/quarantine/`` so the rebuild that
        follows can re-commit a clean entry instead of tripping over the
        corpse again.  Detections and quarantines are counted into the
        store's registry (``fault.store_corrupt``,
        ``fault.store_quarantined``).
        """
        return self.load_digest(digest_of(skey), mmap=mmap, quarantine=quarantine)

    def load_digest(self, digest: str, *, mmap: bool = False, quarantine: bool = True):
        """Like :meth:`load`, addressed directly by digest."""
        json_path = self._json_path(digest)
        if faults.fire("store.corrupt", self.registry):
            # deterministic fault injection: damage the committed entry on
            # disk, then read it normally — the regular corruption
            # detection and quarantine path runs against real damage
            self._damage_entry(digest)
        meta = self._read_meta(json_path, digest)
        if meta is None:
            if os.path.exists(json_path):
                # a marker that exists but does not parse/match is a
                # corrupt entry, not a plain miss
                self._note_corrupt(digest, quarantine)
            return None
        started = time.perf_counter()
        with _obs_trace.span("store.load", digest=digest[:16], mmap=mmap) as span:
            try:
                linearized, payload_bytes, mmapped = self._read_linearized(
                    meta, digest, mmap
                )
                structure = self._restore(meta, linearized)
                structure.store_mmapped = mmapped
                json_bytes = os.path.getsize(json_path)
            except Exception:
                # anything — truncated arrays, version drift inside the
                # payload, a concurrent `cache clear` unlinking the files
                # mid-read — is a miss; the caller rebuilds.  A concurrent
                # removal leaves no marker and is not counted as corruption
                span.set(miss=True)
                if os.path.exists(json_path):
                    self._note_corrupt(digest, quarantine)
                return None
            span.set(nbytes=json_bytes + payload_bytes, mmapped=mmapped)
        profiler = _obs_profile.active()
        if profiler is not None:
            profiler.record_store_load(
                digest=digest,
                seconds=time.perf_counter() - started,
                nbytes=json_bytes + payload_bytes,
                mmapped=mmapped,
            )
        return structure, json_bytes + payload_bytes

    def _read_meta(self, json_path: str, digest: str) -> Optional[Dict]:
        try:
            with open(json_path, "r") as handle:
                meta = json.load(handle)
        except (OSError, ValueError):
            return None
        if (
            not isinstance(meta, dict)
            or meta.get("format") != FORMAT_NAME
            or meta.get("version") not in SUPPORTED_VERSIONS
            or meta.get("digest") != digest
        ):
            return None
        return meta

    def _read_linearized(self, meta: Dict, digest: str, mmap: bool):
        """Build the :class:`LinearizedDiagram` of a committed entry.

        Returns ``(diagram, payload bytes, used mmap)``.  Dispatches on the
        entry's version and encoding; raises on any inconsistency (the
        caller turns that into a miss).
        """
        from ..engine.batch import LinearizedDiagram

        linearized_meta = meta["linearized"]
        root_slot = int(linearized_meta["root_slot"])
        num_slots = int(linearized_meta["num_slots"])
        encoding = linearized_meta["encoding"]
        if encoding == "json":
            layers = tuple(
                (int(level), tuple(int(s) for s in slots), tuple(
                    tuple(int(c) for c in row) for row in kid_rows
                ))
                for level, slots, kid_rows in linearized_meta["layers"]
            )
            return LinearizedDiagram(root_slot, num_slots, layers), 0, False
        if _np is None:
            raise StoreError("entry uses binary arrays but numpy is unavailable")
        if meta["version"] == 1:
            return self._read_v1(linearized_meta, digest, root_slot, num_slots)
        return self._read_v2(digest, root_slot, num_slots, mmap)

    def _read_v1(self, linearized_meta: Dict, digest: str, root_slot, num_slots):
        """Version 1: one ``slots_i``/``kids_i`` array pair per layer (npz)."""
        from ..engine.batch import LinearizedDiagram

        npz_path = self._sidecar(digest, ".npz")
        layers = []
        with _np.load(npz_path) as arrays:
            for index, level in enumerate(linearized_meta["levels"]):
                slots = tuple(int(s) for s in arrays["slots_%d" % index])
                kid_rows = tuple(
                    tuple(int(c) for c in row) for row in arrays["kids_%d" % index]
                )
                layers.append((int(level), slots, kid_rows))
        diagram = LinearizedDiagram(root_slot, num_slots, tuple(layers))
        return diagram, os.path.getsize(npz_path), False

    def _read_v2(self, digest: str, root_slot, num_slots, mmap: bool):
        """Version 2: the fused CSR arrays, one plain ``.npy`` file each."""
        from ..engine.batch import LinearizedDiagram

        mmap_mode = "r" if mmap else None
        arrays = {}
        payload_bytes = 0
        for name in _V2_ARRAYS:
            path = self._sidecar(digest, ".%s.npy" % name)
            arrays[name] = _np.load(path, mmap_mode=mmap_mode, allow_pickle=False)
            payload_bytes += os.path.getsize(path)
        bounds = [tuple(int(v) for v in row) for row in arrays["bounds"].reshape(-1, 6)]
        diagram = LinearizedDiagram.from_fused_arrays(
            root_slot,
            num_slots,
            arrays["kids"],
            arrays["seg"],
            arrays["levels"],
            bounds,
        )
        return diagram, payload_bytes, bool(mmap)

    def _restore(self, meta: Dict, linearized):
        # imported lazily: core.method pulls in the DD managers, which load
        # the engine kernel at import time (same cycle service.py avoids)
        from ..core.method import CompiledYield
        from ..mdd.probability import LevelProfile
        from ..ordering.strategies import OrderingSpec

        structure = meta["structure"]
        diagnostics = meta["diagnostics"]
        return CompiledYield(
            gfunction=None,
            grouped_order=None,
            mdd_manager=None,
            mdd_root=None,
            truncation=int(structure["truncation"]),
            coded_robdd_size=int(diagnostics["coded_robdd_size"]),
            robdd_peak=int(diagnostics["robdd_peak"]),
            robdd_allocated=int(diagnostics["robdd_allocated"]),
            gates_processed=int(diagnostics["gates_processed"]),
            romdd_size=int(diagnostics["romdd_size"]),
            ordering=OrderingSpec.from_key(tuple(structure["ordering_key"])),
            build_timings=tuple(float(t) for t in diagnostics["build_timings"]),
            sift_swaps=int(diagnostics["sift_swaps"]),
            reorder_seconds=float(diagnostics["reorder_seconds"]),
            reorder_triggers=int(diagnostics["reorder_triggers"]),
            component_names=tuple(structure["component_names"]),
            count_variable_name=structure["count_variable"],
            location_variable_names=tuple(structure["location_variables"]),
            variable_names=tuple(structure["variable_names"]),
            binary_variables=int(structure["binary_variables"]),
            level_profile=LevelProfile.from_json(structure["level_profile"]),
            mdd_allocated=int(diagnostics["mdd_allocated"]),
            linearized=linearized,
            from_store=True,
        )

    # ------------------------------------------------------------------ #
    # Corruption handling: detection, quarantine, verification
    # ------------------------------------------------------------------ #

    def _note_corrupt(self, digest: str, quarantine: bool) -> None:
        self._count("fault.store_corrupt")
        if quarantine and self.quarantine_entry(digest):
            self._count("fault.store_quarantined")

    def _entry_paths(self, digest: str) -> List[str]:
        paths = [self._json_path(digest)]
        paths.extend(self._sidecar(digest, suffix) for suffix in _SIDECAR_SUFFIXES)
        return [path for path in paths if os.path.exists(path)]

    def quarantine_entry(self, digest: str) -> int:
        """Move every file of ``digest`` into ``<root>/quarantine/``.

        Returns how many files were moved.  The moved files keep their
        names, so a human (or a forensic test) can inspect exactly what
        the loader rejected; a later save of the same digest commits a
        fresh entry in the original location.
        """
        target_dir = os.path.join(self.root, self.QUARANTINE_DIR)
        moved = 0
        for path in self._entry_paths(digest):
            try:
                os.makedirs(target_dir, exist_ok=True)
                os.replace(path, os.path.join(target_dir, os.path.basename(path)))
                moved += 1
            except OSError:
                # a concurrent loader may have quarantined (or a writer
                # replaced) the file first; whoever won, the entry is gone
                continue
        return moved

    def _damage_entry(self, digest: str) -> None:
        """Truncate one committed array of ``digest`` (fault injection only)."""
        candidates = [
            self._sidecar(digest, suffix) for suffix in _SIDECAR_SUFFIXES
        ]
        candidates = [path for path in candidates if os.path.exists(path)]
        target = max(candidates, key=os.path.getsize, default=self._json_path(digest))
        try:
            size = os.path.getsize(target)
            with open(target, "r+b") as handle:
                handle.truncate(max(1, size // 2))
        except OSError:  # pragma: no cover - nothing to damage
            pass

    def verify_entry(self, digest: str) -> Tuple[bool, List[str]]:
        """Deep-check one committed entry; return ``(ok, problems)``.

        Stronger than the load path: besides restoring the structure (which
        runs the structural validation — shapes, the edge-range scan), the
        recorded per-array SHA-256 checksums are compared against the bytes
        on disk, catching bit-flips that still parse.  Never quarantines;
        the caller decides (``repro cache verify --repair`` does).
        """
        problems: List[str] = []
        meta = self._read_meta(self._json_path(digest), digest)
        if meta is None:
            return False, ["metadata unreadable, format-skewed or digest-mismatched"]
        for name, expected in (meta.get("checksums") or {}).items():
            path = self._sidecar(digest, ".%s.npy" % name)
            try:
                actual = _file_sha256(path)
            except OSError as exc:
                problems.append("array %s unreadable: %s" % (name, exc))
                continue
            if actual != expected:
                problems.append("array %s checksum mismatch" % name)
        try:
            linearized, _, _ = self._read_linearized(meta, digest, False)
            self._restore(meta, linearized)
        except Exception as exc:
            problems.append("restore failed: %r" % exc)
        return not problems, problems

    def verify_all(self, *, repair: bool = False) -> List[Tuple[str, bool, List[str]]]:
        """Verify every committed entry; quarantine the bad with ``repair``.

        Returns one ``(digest, ok, problems)`` row per entry (corrupt
        markers that no longer list as entries are still checked).  With
        ``repair=True`` every failing entry is quarantined and counted,
        exactly like the load path would.
        """
        digests = []
        if os.path.isdir(self.root):
            for shard in sorted(os.listdir(self.root)):
                if shard in (self.QUARANTINE_DIR, self.NATIVE_DIR):
                    continue
                shard_dir = os.path.join(self.root, shard)
                if not os.path.isdir(shard_dir):
                    continue
                for name in sorted(os.listdir(shard_dir)):
                    if name.endswith(".json"):
                        digests.append(name[: -len(".json")])
        out = []
        for digest in digests:
            ok, problems = self.verify_entry(digest)
            if not ok:
                self._count("fault.store_corrupt")
                if repair and self.quarantine_entry(digest):
                    self._count("fault.store_quarantined")
            out.append((digest, ok, problems))
        return out

    # ------------------------------------------------------------------ #
    # Inspection and maintenance (the ``repro cache`` CLI)
    # ------------------------------------------------------------------ #

    def _entry_bytes(self, digest: str) -> int:
        nbytes = os.path.getsize(self._json_path(digest))
        for suffix in _SIDECAR_SUFFIXES:
            path = self._sidecar(digest, suffix)
            if os.path.exists(path):
                nbytes += os.path.getsize(path)
        return nbytes

    def entries(self) -> List[StoreEntry]:
        """List every committed entry (corrupt entries are skipped)."""
        out: List[StoreEntry] = []
        if not os.path.isdir(self.root):
            return out
        for shard in sorted(os.listdir(self.root)):
            if shard in (self.QUARANTINE_DIR, self.NATIVE_DIR):
                continue
            shard_dir = os.path.join(self.root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".json"):
                    continue
                digest = name[: -len(".json")]
                meta = self._read_meta(self._json_path(digest), digest)
                if meta is None:
                    continue
                try:
                    nbytes = self._entry_bytes(digest)
                except OSError:  # entry removed while listing
                    continue
                out.append(
                    StoreEntry(
                        digest=digest,
                        nbytes=nbytes,
                        created=float(meta.get("created", 0.0)),
                        truncation=int(meta["structure"]["truncation"]),
                        ordering_key=tuple(meta["structure"]["ordering_key"]),
                        romdd_size=int(meta["diagnostics"]["romdd_size"]),
                        node_count=int(meta["linearized"]["num_slots"]) - 2,
                    )
                )
        return out

    def meta_of(self, digest_prefix: str) -> Optional[Dict]:
        """Return the raw metadata of the entry matching the digest prefix.

        Raises :class:`StoreError` when the prefix is ambiguous.
        """
        matches = [
            entry for entry in self.entries() if entry.digest.startswith(digest_prefix)
        ]
        if not matches:
            return None
        if len(matches) > 1:
            raise StoreError(
                "digest prefix %r matches %d entries" % (digest_prefix, len(matches))
            )
        return self._read_meta(self._json_path(matches[0].digest), matches[0].digest)

    def remove(self, digest_prefix: str) -> int:
        """Remove entries matching the digest prefix; return how many."""
        removed = 0
        for entry in self.entries():
            if not entry.digest.startswith(digest_prefix):
                continue
            paths = [self._json_path(entry.digest)] + [
                self._sidecar(entry.digest, suffix) for suffix in _SIDECAR_SUFFIXES
            ]
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            removed += 1
        return removed

    def clear(self) -> int:
        """Remove every entry; return how many were removed."""
        return self.remove("")

    def total_bytes(self) -> int:
        """Total on-disk size of the committed entries."""
        return sum(entry.nbytes for entry in self.entries())

"""Dynamic variable reordering by Rudell-style sifting.

The managers provide the primitive — ``swap_adjacent_levels`` exchanges two
adjacent levels in place while every handle keeps denoting the same function
— and this module provides the strategy on top of it:

* :func:`sift` moves each variable through every allowed position and parks
  it where the shared node count was smallest (the classical sifting loop of
  Rudell, DAC'93), with the usual ``max_growth`` abort that stops an
  excursion once the diagram grows past a factor of the best size seen;
* :func:`sift_grouped` is the variant the coded-ROBDD pipeline needs: the
  binary variables that encode one multiple-valued variable must stay
  contiguous, so bits are sifted *within* their group and the groups are
  sifted as atomic blocks.  It returns the new grouped order so the
  ROBDD-to-ROMDD conversion can follow the reordered diagram.  Pass
  ``converge=True`` to repeat passes until the node count stops improving
  and ``window=2``/``3`` to add a group-aware window permutation (every
  ``window`` adjacent blocks are exhaustively permuted, best arrangement
  kept) after each block-sifting pass;
* :func:`sift_to_convergence` repeats plain :func:`sift` passes until a
  pass no longer shrinks the diagram (Rudell's "sift until convergence").

Both functions work on any manager implementing the small reordering
protocol (``num_variables``, ``num_live_nodes``, ``nodes_at_level``,
``level_of``, ``variable_at_level``, ``swap_adjacent_levels``,
``begin_reorder`` / ``end_reorder``) — i.e. on both the ROBDD and the ROMDD
manager.  Every diagram the caller still needs must be protected with
``manager.ref`` before sifting: the session starts with a garbage
collection, and unreferenced nodes are reclaimed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..obs import trace as _obs_trace


@dataclass(frozen=True)
class ReorderStats:
    """Outcome of one reordering pass."""

    #: Shared live node count when the pass started (after the initial GC).
    initial_size: int
    #: Shared live node count when the pass finished.
    final_size: int
    #: Number of adjacent-level swaps performed.
    swaps: int
    #: Number of sifting passes executed (1 unless converging).
    passes: int = 1

    @property
    def reduction(self) -> float:
        """Relative size reduction in ``[0, 1)`` (0 when nothing improved)."""
        if self.initial_size <= 0:
            return 0.0
        return max(0.0, 1.0 - self.final_size / self.initial_size)


def _name_at_level(manager, level: int) -> str:
    """Return the name of the variable at ``level`` for either manager kind."""
    variable = manager.variable_at_level(level)
    return variable if isinstance(variable, str) else variable.name


class _SwapCounter:
    """Wraps the swap primitive to count invocations."""

    __slots__ = ("manager", "count")

    def __init__(self, manager) -> None:
        self.manager = manager
        self.count = 0

    def swap(self, level: int) -> None:
        self.manager.swap_adjacent_levels(level)
        self.count += 1


def _sift_one(
    counter: _SwapCounter,
    position: int,
    lower: int,
    upper: int,
    max_growth: float,
) -> int:
    """Sift the variable at ``position`` within ``[lower, upper]``.

    Returns the position the variable was parked at.  The variable first
    moves toward the nearer boundary, then sweeps to the other one, then
    returns to the best position seen (ties resolved toward the position
    visited first).
    """
    manager = counter.manager
    best_size = manager.num_live_nodes
    best_pos = position
    limit = max_growth * best_size
    pos = position

    # head for the nearer boundary first: a bad excursion is aborted sooner
    first_down = upper - position <= position - lower

    for phase in (0, 1):
        going_down = first_down if phase == 0 else not first_down
        while (pos < upper) if going_down else (pos > lower):
            if going_down:
                counter.swap(pos)
                pos += 1
            else:
                pos -= 1
                counter.swap(pos)
            size = manager.num_live_nodes
            if size < best_size:
                best_size = size
                best_pos = pos
                limit = max_growth * best_size
            elif size > limit:
                break

    while pos < best_pos:
        counter.swap(pos)
        pos += 1
    while pos > best_pos:
        pos -= 1
        counter.swap(pos)
    return best_pos


def sift(
    manager,
    *,
    max_growth: float = 1.2,
    lower: int = 0,
    upper: Optional[int] = None,
    variables: Optional[Sequence[str]] = None,
) -> ReorderStats:
    """Run one sifting pass over ``manager`` and return the stats.

    Parameters
    ----------
    manager:
        A decision-diagram manager implementing the reordering protocol.
    max_growth:
        Abort an excursion once the diagram exceeds this factor of the best
        size seen for the current variable.
    lower / upper:
        Inclusive bounds on the positions the sifted variables may take
        (used by :func:`sift_grouped` to keep bits inside their group).
    variables:
        Names to sift (default: every variable in the allowed range).
        Variables are processed from the most populated level to the least,
        which tackles the biggest size contributors first.
    """
    if max_growth < 1.0:
        raise ValueError("max_growth must be >= 1.0")
    if upper is None:
        upper = manager.num_variables - 1
    if not 0 <= lower <= upper < manager.num_variables:
        raise ValueError("invalid sift range [%d, %d]" % (lower, upper))

    owns_session = not manager.in_reorder
    if owns_session:
        manager.begin_reorder()
    try:
        initial = manager.num_live_nodes
        counter = _SwapCounter(manager)
        if variables is None:
            names = [
                _name_at_level(manager, level) for level in range(lower, upper + 1)
            ]
        else:
            names = list(variables)
        names.sort(key=lambda n: -manager.nodes_at_level(manager.level_of(n)))
        for name in names:
            pos = manager.level_of(name)
            if not lower <= pos <= upper:
                raise ValueError(
                    "variable %r (level %d) outside sift range [%d, %d]"
                    % (name, pos, lower, upper)
                )
            _sift_one(counter, pos, lower, upper, max_growth)
        return ReorderStats(
            initial_size=initial,
            final_size=manager.num_live_nodes,
            swaps=counter.count,
        )
    finally:
        if owns_session:
            manager.end_reorder()


def sift_to_convergence(
    manager,
    *,
    max_passes: int = 8,
    max_growth: float = 1.2,
    lower: int = 0,
    upper: Optional[int] = None,
    variables: Optional[Sequence[str]] = None,
) -> ReorderStats:
    """Repeat :func:`sift` passes until the node count stops improving.

    A single sifting pass parks every variable greedily given the positions
    of the others, so a second pass over the already-moved order frequently
    finds further reductions.  The loop stops after ``max_passes`` or as
    soon as a pass fails to shrink the shared node count.
    """
    if max_passes < 1:
        raise ValueError("max_passes must be at least 1")
    owns_session = not manager.in_reorder
    if owns_session:
        manager.begin_reorder()
    span = _obs_trace.span("reorder.sift_to_convergence")
    span.__enter__()
    try:
        initial: Optional[int] = None
        swaps = 0
        passes = 0
        while passes < max_passes:
            stats = sift(
                manager,
                max_growth=max_growth,
                lower=lower,
                upper=upper,
                variables=variables,
            )
            passes += 1
            swaps += stats.swaps
            if initial is None:
                initial = stats.initial_size
            if stats.final_size >= stats.initial_size:
                break
        span.set(swaps=swaps, passes=passes, final=manager.num_live_nodes)
        return ReorderStats(
            initial_size=initial if initial is not None else manager.num_live_nodes,
            final_size=manager.num_live_nodes,
            swaps=swaps,
            passes=passes,
        )
    finally:
        span.__exit__(None, None, None)
        if owns_session:
            manager.end_reorder()


def _swap_adjacent_blocks(counter: _SwapCounter, start: int, width_a: int, width_b: int) -> None:
    """Exchange the block at ``start`` (width ``width_a``) with the next one.

    Implemented as ``width_a * width_b`` adjacent swaps: each level of the
    second block bubbles up through the first block in turn.
    """
    for k in range(width_b):
        src = start + width_a + k
        for p in range(src - 1, start + k - 1, -1):
            counter.swap(p)


def _block_starts(widths: Sequence[int]) -> List[int]:
    starts = []
    acc = 0
    for w in widths:
        starts.append(acc)
        acc += w
    return starts


def _swap_blocks_at(counter: _SwapCounter, widths: List[int], order: List[int], k: int) -> None:
    """Exchange the adjacent blocks at positions ``k`` and ``k + 1``.

    Keeps ``widths`` and ``order`` (position -> original block index) in
    sync with the diagram.
    """
    start = sum(widths[:k])
    _swap_adjacent_blocks(counter, start, widths[k], widths[k + 1])
    widths[k], widths[k + 1] = widths[k + 1], widths[k]
    order[k], order[k + 1] = order[k + 1], order[k]


def _sift_blocks(
    counter: _SwapCounter, widths: List[int], order: List[int], max_growth: float
) -> None:
    """Sift whole blocks; mutates ``widths`` and ``order`` in place.

    ``widths[k]`` is the width of the block currently ``k``-th from the top
    and ``order[k]`` its original index.
    """
    manager = counter.manager
    # process the widest diagrams' owners first: approximate each block's
    # contribution by the nodes currently inside its span
    def block_population(k: int) -> int:
        start = _block_starts(widths)[k]
        return sum(
            manager.nodes_at_level(level) for level in range(start, start + widths[k])
        )

    for block_id in sorted(list(order), key=lambda b: -block_population(order.index(b))):
        k = order.index(block_id)
        best_size = manager.num_live_nodes
        best_k = k
        limit = max_growth * best_size
        last = len(order) - 1

        def move_down(k: int) -> int:
            _swap_blocks_at(counter, widths, order, k)
            return k + 1

        def move_up(k: int) -> int:
            _swap_blocks_at(counter, widths, order, k - 1)
            return k - 1

        if last - k <= k:
            phases = ("down", "up")
        else:
            phases = ("up", "down")
        for phase in phases:
            while (k < last) if phase == "down" else (k > 0):
                k = move_down(k) if phase == "down" else move_up(k)
                size = manager.num_live_nodes
                if size < best_size:
                    best_size = size
                    best_k = k
                    limit = max_growth * best_size
                elif size > limit:
                    break
        while k < best_k:
            k = move_down(k)
        while k > best_k:
            k = move_up(k)


def _window_pass(
    counter: _SwapCounter, widths: List[int], order: List[int], window: int
) -> bool:
    """Permute every ``window`` adjacent blocks exhaustively, keeping the best.

    The group-aware analogue of Rudell's window permutation: a window of 2
    tries the swapped arrangement, a window of 3 walks all six permutations
    through a fixed adjacent-swap sequence; the arrangement with the
    smallest shared node count wins (walking back through the remaining
    transpositions restores it).  Returns whether anything improved.
    """
    manager = counter.manager
    improved = False
    for k in range(len(widths) - window + 1):
        best_size = manager.num_live_nodes
        # the transposition sequences visiting every permutation of the window
        sequence = (k,) if window == 2 else (k, k + 1, k, k + 1, k)
        best_depth = 0
        applied: List[int] = []
        for position in sequence:
            _swap_blocks_at(counter, widths, order, position)
            applied.append(position)
            size = manager.num_live_nodes
            if size < best_size:
                best_size = size
                best_depth = len(applied)
                improved = True
        while len(applied) > best_depth:
            # adjacent block swaps are involutions: replaying the suffix in
            # reverse returns the diagram to the best arrangement seen
            _swap_blocks_at(counter, widths, order, applied.pop())
    return improved


def sift_grouped(
    manager,
    groups,
    *,
    max_growth: float = 1.2,
    sift_bits: bool = True,
    sift_blocks: bool = True,
    converge: bool = False,
    window: int = 0,
    max_passes: int = 8,
) -> Tuple[list, ReorderStats]:
    """Sift a coded ROBDD while keeping each group's bits contiguous.

    Parameters
    ----------
    manager:
        The ROBDD manager holding the coded diagram.  Its variable order
        must currently be the concatenation of the groups' bit names.
    groups:
        Sequence of ``(variable, bit_names)`` pairs, top group first (the
        ``groups`` attribute of
        :class:`repro.ordering.grouped.GroupedVariableOrder`).
    max_growth:
        Excursion abort factor, as in :func:`sift`.
    sift_bits / sift_blocks:
        Enable the within-group pass and the whole-group pass.
    converge:
        Repeat full passes (bits, blocks, window) until a pass no longer
        shrinks the shared node count, up to ``max_passes``.
    window:
        ``2`` or ``3`` adds a group-aware window permutation after each
        block-sifting pass (every ``window`` adjacent groups are permuted
        exhaustively, the best arrangement kept); ``0`` disables it.
    max_passes:
        Upper bound on convergence iterations.

    Returns
    -------
    (new_groups, stats):
        ``new_groups`` is a list of ``(variable, bit_names)`` pairs
        describing the reordered diagram (suitable for rebuilding a
        :class:`~repro.ordering.grouped.GroupedVariableOrder`), and
        ``stats`` is a :class:`ReorderStats`.
    """
    if window not in (0, 2, 3):
        raise ValueError("window must be 0 (disabled), 2 or 3")
    if max_passes < 1:
        raise ValueError("max_passes must be at least 1")
    groups = list(groups)
    widths = [len(bits) for _, bits in groups]
    expected = [bit for _, bits in groups for bit in bits]
    current = list(manager.variable_order)
    if current != expected:
        raise ValueError(
            "manager variable order does not match the grouped order: %r vs %r"
            % (current[:6], expected[:6])
        )

    owns_session = not manager.in_reorder
    if owns_session:
        manager.begin_reorder()
    # manual enter/exit: the span must close inside the existing finally,
    # after the reorder session state has been read for the stats
    span = _obs_trace.span("reorder.sift_grouped", groups=len(groups))
    span.__enter__()
    try:
        initial = manager.num_live_nodes
        counter = _SwapCounter(manager)
        order = list(range(len(groups)))
        passes = 0

        while True:
            size_before = manager.num_live_nodes

            if sift_bits:
                starts = _block_starts(widths)
                span_names = list(manager.variable_order)
                for start, width in zip(starts, widths):
                    if width > 1:
                        inner = sift(
                            manager,
                            max_growth=max_growth,
                            lower=start,
                            upper=start + width - 1,
                            variables=span_names[start : start + width],
                        )
                        counter.count += inner.swaps

            if sift_blocks and len(groups) > 1:
                _sift_blocks(counter, widths, order, max_growth)

            if window >= 2 and len(groups) >= window:
                _window_pass(counter, widths, order, window)

            passes += 1
            if (
                not converge
                or passes >= max_passes
                or manager.num_live_nodes >= size_before
            ):
                break

        final_names = manager.variable_order
        new_groups = []
        position = 0
        for block_id in order:
            variable, bits = groups[block_id]
            width = len(bits)
            new_groups.append((variable, tuple(final_names[position : position + width])))
            position += width

        stats = ReorderStats(
            initial_size=initial,
            final_size=manager.num_live_nodes,
            swaps=counter.count,
            passes=passes,
        )
        span.set(
            swaps=stats.swaps,
            initial=stats.initial_size,
            final=stats.final_size,
            passes=stats.passes,
        )
        return new_groups, stats
    finally:
        span.__exit__(None, None, None)
        if owns_session:
            manager.end_reorder()

/* Native fused-kernel backend for repro.engine.batch.
 *
 * Compiled on demand by repro/engine/native.py with the system C compiler
 * and loaded via ctypes.  The functions here walk the *same* FusedSchedule
 * arrays the numpy fused kernel walks (concatenated child-position-major
 * `kids` array plus the (level, s0, s1, e0, e1, card) layer bounds table)
 * and perform the *same* IEEE-754 operations in the *same* order, so the
 * results are bit-for-bit identical to the fused kernel:
 *
 *  - per-node child-ordered accumulation:  out = c0*v0; out += c1*v1; ...
 *  - model-uniform level collapse: a layer whose probability columns are
 *    bitwise identical across all K models and whose children all carry
 *    model-uniform values is evaluated once at width 1 and broadcast;
 *  - reverse sweep: gather the layer adjoint, scatter to children in node
 *    order (numpy's unbuffered np.add.at), then reduce the gradient rows
 *    with numpy's accumulation order — a plain first-element-initialised
 *    row sum for K >= 2, and numpy's pairwise summation (blocksize 128,
 *    8-way unrolled) for K == 1, where the (n, 1) product matrix is
 *    contiguous along the reduced axis and numpy switches algorithms.
 *
 * Must be compiled with -ffp-contract=off (no FMA contraction) and without
 * -ffast-math: both would change rounding and break the bit-for-bit pin
 * that tests/property/test_fused_equivalence.py enforces.
 */

#include <stdint.h>
#include <string.h>

#define REPRO_NATIVE_ABI 1

/* numpy-compatible pairwise summation over a contiguous double vector.
 * Mirrors numpy's pairwise_sum (numpy/_core/src/umath/loops.c.src):
 * sequential below 8 elements, 8 accumulators up to the 128-element block
 * size, and an 8-aligned recursive halving above it. */
static double
pairwise_sum(const double *a, int64_t n)
{
    if (n < 8) {
        double res = 0.0;
        for (int64_t i = 0; i < n; i++) {
            res += a[i];
        }
        return res;
    }
    if (n <= 128) {
        double r0 = a[0], r1 = a[1], r2 = a[2], r3 = a[3];
        double r4 = a[4], r5 = a[5], r6 = a[6], r7 = a[7];
        int64_t i = 8;
        for (; i < n - (n % 8); i += 8) {
            r0 += a[i + 0];
            r1 += a[i + 1];
            r2 += a[i + 2];
            r3 += a[i + 3];
            r4 += a[i + 4];
            r5 += a[i + 5];
            r6 += a[i + 6];
            r7 += a[i + 7];
        }
        double res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7));
        for (; i < n; i++) {
            res += a[i];
        }
        return res;
    }
    int64_t n2 = n / 2;
    n2 -= n2 % 8;
    return pairwise_sum(a, n2) + pairwise_sum(a + n2, n - n2);
}

int
repro_native_abi(void)
{
    return REPRO_NATIVE_ABI;
}

/* Bottom-up value pass over the fused schedule.
 *
 * kids          edge array, child-position major per layer
 * bounds        nlayers x 6 rows of (level, s0, s1, e0, e1, card)
 * cols          per-layer pointer to its contiguous (card x K) column matrix
 * values        (num_slots x K) value table; only wide layers and the root
 *               row are materialized (see below)
 * narrow_values (num_slots) width-1 companion table for the collapse
 * narrow        (num_slots) per-slot model-uniformity flags
 * collapsed_out number of layers evaluated through the collapse path
 *
 * The fused numpy kernel broadcasts every collapsed layer's width-1 row
 * into the wide value table.  Here the broadcast is *lazy*: a collapsed
 * slot keeps only its scalar in narrow_values, and wide layers (and the
 * gradient reductions) read that scalar directly wherever the fused
 * kernel would have read K bitwise-identical copies of it.  The floats
 * consumed are exactly the floats the broadcast would have produced, so
 * results stay bit-for-bit identical — but a mostly-collapsed diagram
 * (every density sweep) skips the dominant num_slots x K memory traffic.
 * Rows of `values` whose narrow flag is set are therefore *garbage* and
 * must never be read; the root row is materialized before returning.
 */
int
repro_native_forward(
    const int64_t *kids,
    const int64_t *bounds,
    int64_t nlayers,
    const double *const *cols,
    int64_t num_models,
    int64_t root_slot,
    double *values,
    double *narrow_values,
    uint8_t *narrow,
    int64_t *collapsed_out)
{
    const int64_t K = num_models;
    int64_t collapsed = 0;

    for (int64_t k = 0; k < K; k++) {
        values[k] = 0.0;
        values[K + k] = 1.0;
    }
    narrow_values[0] = 0.0;
    narrow_values[1] = 1.0;
    narrow[0] = 1;
    narrow[1] = 1;

    for (int64_t l = 0; l < nlayers; l++) {
        const int64_t *b = bounds + 6 * l;
        const int64_t s0 = b[1], s1 = b[2], e0 = b[3], card = b[5];
        const int64_t n = s1 - s0;
        const double *col = cols[l];

        /* model-uniform columns: every entry equals its row's first entry */
        int uniform = 1;
        if (K > 1) {
            for (int64_t j = 0; j < card && uniform; j++) {
                const double first = col[j * K];
                for (int64_t k = 1; k < K; k++) {
                    if (col[j * K + k] != first) {
                        uniform = 0;
                        break;
                    }
                }
            }
        }
        int collapse = uniform;
        if (collapse) {
            const int64_t *edges = kids + e0;
            const int64_t total = n * card;
            for (int64_t t = 0; t < total; t++) {
                if (!narrow[edges[t]]) {
                    collapse = 0;
                    break;
                }
            }
        }

        if (collapse) {
            /* width-1 evaluation; the wide broadcast is deferred */
            const int64_t *k0 = kids + e0;
            for (int64_t i = 0; i < n; i++) {
                double acc = narrow_values[k0[i]] * col[0];
                for (int64_t j = 1; j < card; j++) {
                    acc += narrow_values[kids[e0 + j * n + i]] * col[j * K];
                }
                narrow_values[s0 + i] = acc;
                narrow[s0 + i] = 1;
            }
            collapsed++;
            continue;
        }

        /* wide evaluation: child-ordered accumulation per node; children
         * sit strictly deeper than the layer, so reading child rows while
         * writing the layer's rows never aliases.  Narrow children read
         * their scalar instead of a broadcast row — same floats. */
        for (int64_t i = 0; i < n; i++) {
            double *out = values + (s0 + i) * K;
            const int64_t kid0 = kids[e0 + i];
            if (narrow[kid0]) {
                const double v = narrow_values[kid0];
                for (int64_t k = 0; k < K; k++) {
                    out[k] = v * col[k];
                }
            } else {
                const double *v0 = values + kid0 * K;
                for (int64_t k = 0; k < K; k++) {
                    out[k] = v0[k] * col[k];
                }
            }
            for (int64_t j = 1; j < card; j++) {
                const int64_t kid = kids[e0 + j * n + i];
                const double *cj = col + j * K;
                if (narrow[kid]) {
                    const double v = narrow_values[kid];
                    for (int64_t k = 0; k < K; k++) {
                        out[k] += v * cj[k];
                    }
                } else {
                    const double *vj = values + kid * K;
                    for (int64_t k = 0; k < K; k++) {
                        out[k] += vj[k] * cj[k];
                    }
                }
            }
            narrow[s0 + i] = 0;
        }
    }

    /* the caller reads the root row from the wide table */
    if (narrow[root_slot]) {
        const double v = narrow_values[root_slot];
        double *out = values + root_slot * K;
        for (int64_t k = 0; k < K; k++) {
            out[k] = v;
        }
    }

    *collapsed_out = collapsed;
    return 0;
}

/* Forward pass plus the reverse adjoint sweep.
 *
 * adjoint  (num_slots x K) workspace, zeroed and seeded here
 * grads    flat output: for each layer in bounds order, card x K gradient
 *          rows (layer offsets are the running card*K prefix sums)
 * scratch  (max layer width) workspace for the K == 1 pairwise reduction
 */
int
repro_native_backward(
    const int64_t *kids,
    const int64_t *bounds,
    int64_t nlayers,
    const double *const *cols,
    int64_t num_models,
    int64_t num_slots,
    int64_t root_slot,
    double *values,
    double *narrow_values,
    uint8_t *narrow,
    double *adjoint,
    double *grads,
    double *scratch,
    int64_t *collapsed_out)
{
    const int64_t K = num_models;
    int rc = repro_native_forward(
        kids, bounds, nlayers, cols, K, root_slot, values, narrow_values,
        narrow, collapsed_out);
    if (rc != 0) {
        return rc;
    }

    memset(adjoint, 0, (size_t)num_slots * (size_t)K * sizeof(double));
    double *root_row = adjoint + root_slot * K;
    for (int64_t k = 0; k < K; k++) {
        root_row[k] = 1.0;
    }

    int64_t off = 0;
    for (int64_t l = 0; l < nlayers; l++) {
        off += bounds[6 * l + 5] * K;
    }

    /* reverse topological schedule: shallowest layer first */
    for (int64_t l = nlayers - 1; l >= 0; l--) {
        const int64_t *b = bounds + 6 * l;
        const int64_t s0 = b[1], s1 = b[2], e0 = b[3], card = b[5];
        const int64_t n = s1 - s0;
        const double *cl = cols[l];
        off -= card * K;

        for (int64_t j = 0; j < card; j++) {
            const int64_t *kj = kids + e0 + j * n;
            const double *cj = cl + j * K;

            /* adjoint scatter in node order (np.add.at); children sit
             * strictly deeper, so the layer's own adjoint rows are never
             * touched by the scatter */
            for (int64_t i = 0; i < n; i++) {
                const double *ai = adjoint + (s0 + i) * K;
                double *ak = adjoint + kj[i] * K;
                for (int64_t k = 0; k < K; k++) {
                    ak[k] += cj[k] * ai[k];
                }
            }

            /* gradient row: sum over the layer's nodes of value * adjoint;
             * narrow children read their width-1 scalar (bitwise equal to
             * the broadcast row the fused kernel reads) */
            double *gj = grads + off + j * K;
            if (K == 1) {
                for (int64_t i = 0; i < n; i++) {
                    const int64_t kid = kj[i];
                    const double v =
                        narrow[kid] ? narrow_values[kid] : values[kid];
                    scratch[i] = v * adjoint[s0 + i];
                }
                gj[0] = pairwise_sum(scratch, n);
            } else {
                const int64_t kid0 = kj[0];
                const double *a0 = adjoint + s0 * K;
                if (narrow[kid0]) {
                    const double v = narrow_values[kid0];
                    for (int64_t k = 0; k < K; k++) {
                        gj[k] = v * a0[k];
                    }
                } else {
                    const double *v0 = values + kid0 * K;
                    for (int64_t k = 0; k < K; k++) {
                        gj[k] = v0[k] * a0[k];
                    }
                }
                for (int64_t i = 1; i < n; i++) {
                    const int64_t kid = kj[i];
                    const double *ai = adjoint + (s0 + i) * K;
                    if (narrow[kid]) {
                        const double v = narrow_values[kid];
                        for (int64_t k = 0; k < K; k++) {
                            gj[k] += v * ai[k];
                        }
                    } else {
                        const double *vi = values + kid * K;
                        for (int64_t k = 0; k < K; k++) {
                            gj[k] += vi[k] * ai[k];
                        }
                    }
                }
            }
        }
    }
    return 0;
}

"""Shared decision-diagram engine.

The subpackage factors everything that is common to the ROBDD and ROMDD
managers — and everything that turns them from one-shot builders into a
reusable analysis engine — out of :mod:`repro.bdd` and :mod:`repro.mdd`:

* :mod:`repro.engine.kernel` — the node-table kernel: dense handle
  allocation with a free list, reference-counted garbage collection,
  size-bounded computed tables with hit/miss statistics, and automatic
  table-resize / collection checkpoints;
* :mod:`repro.engine.reorder` — dynamic variable reordering by Rudell-style
  sifting on top of the managers' ``swap_adjacent_levels`` primitive,
  including the group-preserving variant needed by the coded-ROBDD
  pipeline;
* :mod:`repro.engine.service` — the batch evaluation service: build a
  decision diagram once per (structure, truncation, ordering) and re-run
  the cheap probability traversal for every point of a sweep, with an
  optional ``multiprocessing`` fan-out and a keyed result cache.
"""

from .kernel import BoundedComputedTable, CacheStats, DDKernel, KernelStats
from .reorder import ReorderStats, sift, sift_grouped
from .service import SweepPoint, SweepService, SweepServiceStats

__all__ = [
    "BoundedComputedTable",
    "CacheStats",
    "DDKernel",
    "KernelStats",
    "ReorderStats",
    "sift",
    "sift_grouped",
    "SweepPoint",
    "SweepService",
    "SweepServiceStats",
]

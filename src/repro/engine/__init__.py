"""Shared decision-diagram engine.

The subpackage factors everything that is common to the ROBDD and ROMDD
managers — and everything that turns them from one-shot builders into a
reusable analysis engine — out of :mod:`repro.bdd` and :mod:`repro.mdd`:

* :mod:`repro.engine.kernel` — the node-table kernel: dense handle
  allocation with a free list, reference-counted garbage collection,
  size-bounded computed tables with hit/miss statistics, and automatic
  table-resize / collection checkpoints;
* :mod:`repro.engine.reorder` — dynamic variable reordering by Rudell-style
  sifting on top of the managers' ``swap_adjacent_levels`` primitive,
  including the group-preserving variant needed by the coded-ROBDD
  pipeline;
* :mod:`repro.engine.batch` — the batched probability engine: linearize a
  ROMDD once into flat topological arrays and evaluate every defect model
  of a sweep in a single bottom-up pass.  Four bit-for-bit identical
  kernels: pure Python, the layered numpy oracle, the fused CSR kernel
  (blocked workspace accumulation plus model-uniform level collapse),
  and the native compiled backend (:mod:`repro.engine.native`) that
  large production passes run on;
* :mod:`repro.engine.native` — the C backend behind ``kernel="native"``:
  the in-repo kernel source is compiled on demand with the system ``cc``,
  cached content-addressed under the store, loaded via ``ctypes`` and fed
  the FusedSchedule arrays zero-copy; hosts without a working compiler
  fall back to the fused kernel with identical results;
* :mod:`repro.engine.service` — the batch evaluation service: build a
  decision diagram once per (structure, truncation, ordering), evaluate all
  of its defect models in one batched pass, shard the points of large
  groups across an optional ``multiprocessing`` fan-out (store-backed
  shards move their column matrices and result vectors through zero-copy
  ``multiprocessing.shared_memory`` blocks), and keep keyed result caches;
* :mod:`repro.engine.store` — the persistent structure store: compiled
  structures serialized to a versioned on-disk format (content-addressed
  per-array ``.npy`` files plus JSON metadata, memory-mappable; v1 npz
  entries stay readable) so cold processes and worker shards warm-start
  from disk instead of rebuilding the diagrams.  Corrupt entries are
  detected, quarantined and rebuilt (``verify_all`` / ``repro cache
  verify``);
* :mod:`repro.engine.supervise` — fault-tolerant dispatch: per-shard
  deadlines scaled from measured latency, a worker death watch with pool
  respawn, bounded retries with deterministic backoff, and the
  shm → pickled → in-parent degradation cascade;
* :mod:`repro.engine.faults` — the deterministic fault-injection harness
  (``REPRO_FAULT_PLAN`` / ``SweepService(fault_plan=...)``) that the
  supervision layer is tested against;
* :mod:`repro.engine.fabric` — the remote shard fabric: long-lived HTTP
  shard workers (``repro worker``) resolving digest-addressed structures
  from the shared store, and a parent-side scheduler with heartbeats,
  EWMA deadlines, work stealing and the same bounded-retry guarantees as
  the local supervisor.
"""

from .batch import (
    HAVE_NUMPY,
    KERNELS,
    NATIVE_AUTO_CELLS,
    NUMPY_AUTO_CELLS,
    BatchEvalError,
    DeadlineExceeded,
    FusedSchedule,
    LinearizedDiagram,
    shard_deadline,
)
from .faults import FaultPlan, InjectedFault
from .kernel import (
    BoundedComputedTable,
    CacheStats,
    DDKernel,
    KernelStats,
    recursion_guard,
)
from .reorder import ReorderStats, sift, sift_grouped, sift_to_convergence
from .service import SweepPoint, SweepService, SweepServiceStats
from .store import StoreEntry, StoreError, StructureStore
from .supervise import (
    Backoff,
    DegradationLadder,
    ShardJob,
    ShardSupervisor,
    ShmJanitor,
    janitor,
)

__all__ = [
    "Backoff",
    "BatchEvalError",
    "BoundedComputedTable",
    "CacheStats",
    "DDKernel",
    "DeadlineExceeded",
    "DegradationLadder",
    "FaultPlan",
    "FusedSchedule",
    "HAVE_NUMPY",
    "InjectedFault",
    "KERNELS",
    "KernelStats",
    "LinearizedDiagram",
    "NATIVE_AUTO_CELLS",
    "NUMPY_AUTO_CELLS",
    "ReorderStats",
    "ShardJob",
    "ShardSupervisor",
    "ShmJanitor",
    "janitor",
    "recursion_guard",
    "shard_deadline",
    "sift",
    "sift_grouped",
    "sift_to_convergence",
    "StoreEntry",
    "StoreError",
    "StructureStore",
    "SweepPoint",
    "SweepService",
    "SweepServiceStats",
    "FabricError",
    "FabricScheduler",
    "FabricShard",
    "ShardWorker",
    "WorkerHandle",
    "worker_in_thread",
]

#: Fabric names resolve lazily: importing :mod:`repro.engine.fabric`
#: pulls in :mod:`repro.server.http` (whose package init imports the app,
#: which imports this package), so an eager import here would cycle.
_FABRIC_EXPORTS = frozenset(
    (
        "FabricError",
        "FabricScheduler",
        "FabricShard",
        "ShardWorker",
        "WorkerHandle",
        "worker_in_thread",
    )
)


def __getattr__(name):
    if name in _FABRIC_EXPORTS:
        from . import fabric

        return getattr(fabric, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
